//! Canonical metric names — the registry every runtime-emitted counter
//! and histogram name must appear in.
//!
//! The observability vocabulary spans five crates — the simulator, the
//! MAC layer, the attack pipeline, the experiment binaries and the
//! harness — so names are pinned here once and asserted at runtime by
//! `tests/metric_names.rs`: any counter or histogram a scenario emits
//! must satisfy [`is_registered`], or the test names the stray. That
//! keeps `trace_query`, the Prometheus exporter and CI greps working
//! against a closed vocabulary instead of ad-hoc strings.
//!
//! Naming scheme: `sim.*` for event-loop outcomes, `mac.*` for MAC
//! decisions, `power.*` for radio power accounting, `frame.fate.*` for
//! the per-frame medium-fate taxonomy (DESIGN.md §10), `fault.*` for
//! injected impairments, `retry.*` for the attacker-side recovery loop,
//! `wardrive.*`/`sensing.*` for experiment-level tallies, `hub.*` for
//! the batched sensing hub's link/batch accounting, `harness.*` for
//! trial bookkeeping, and `daemon.*` for the `polite-wifi-d` serving
//! layer (admission, cache, job outcomes, drain).

/// Counter: frames that would have decoded but were corrupted by
/// injected burst loss (Gilbert–Elliott).
pub const FAULT_MEDIUM_FRAMES_DROPPED: &str = "fault.medium.frames_dropped";

/// Counter: fault-injected device stalls that fired.
pub const FAULT_DEVICE_STALLS: &str = "fault.device.stalls";

/// Histogram: duration of each injected stall, µs.
pub const FAULT_DEVICE_STALL_US: &str = "fault.device.stall_us";

/// Counter: stalls that ended in a cold boot.
pub const FAULT_DEVICE_REBOOTS: &str = "fault.device.reboots";

/// Counter: SIFS-timed responses (ACK/CTS) a stalled device never sent.
pub const FAULT_DEVICE_RESPONSES_SUPPRESSED: &str = "fault.device.responses_suppressed";

/// Counter: frames that arrived while the receiver was stalled.
pub const FAULT_DEVICE_RX_DROPPED_STALLED: &str = "fault.device.rx_dropped_stalled";

/// Counter: attacker-side retry injections beyond the first attempt.
pub const RETRY_ATTEMPTS: &str = "retry.attempts";

/// Histogram: deterministic jittered backoff delays applied between
/// retries, µs.
pub const RETRY_BACKOFF_US: &str = "retry.backoff_us";

/// Counter: targets quarantined after exhausting the retry budget or
/// the per-target verify timeout.
pub const RETRY_QUARANTINED: &str = "retry.quarantined";

/// Counter: trials that panicked or aborted and were recorded as
/// structured failures instead of killing the run.
pub const HARNESS_TRIAL_FAILURES: &str = "harness.trial_failures";

/// Counter: addressed frames that decoded cleanly at their receiver.
pub const FRAME_FATE_DELIVERED: &str = "frame.fate.delivered";

/// Counter: addressed frames lost to a frame-error drop — the channel's
/// intrinsic FER draw or the injected burst-loss fault.
pub const FRAME_FATE_FER_DROPPED: &str = "frame.fate.fer_dropped";

/// Counter: addressed frames corrupted by an overlapping transmission
/// (including the receiver's own half-duplex transmission).
pub const FRAME_FATE_COLLIDED: &str = "frame.fate.collided";

/// Counter: addressed frames that arrived while the receiver's firmware
/// was stalled (deaf).
pub const FRAME_FATE_STALL_SWALLOWED: &str = "frame.fate.stall_swallowed";

/// Counter: SIFS responses a stall swallowed before they aired.
pub const FRAME_FATE_FAULT_SUPPRESSED: &str = "frame.fate.fault_suppressed";

/// Counter: addressed frames below the receiver's detection threshold.
pub const FRAME_FATE_UNDETECTED: &str = "frame.fate.undetected";

/// Counter: addressed frames missed because the receiver's power-save
/// radio was dozing.
pub const FRAME_FATE_DOZING: &str = "frame.fate.dozing";

/// Histogram: MAC-level retries a frame needed before its exchange
/// completed or it was dropped (0 = first attempt succeeded).
pub const SIM_RETRY_CHAIN_DEPTH: &str = "sim.retry_chain_depth";

/// Counter: events popped and dispatched by the simulator's scheduler —
/// the denominator of the events/s throughput figure the city-scale
/// benchmarks report.
pub const SIM_EVENTS_DISPATCHED: &str = "sim.events_dispatched";

/// Counter: interference-grid cells holding at least one static node,
/// sampled once per wardrive segment (0 under all-pairs propagation).
pub const SIM_CELLS_OCCUPIED: &str = "sim.cells_occupied";

/// Counter: CSI samples rendered by a sensing scenario.
pub const SENSING_CSI_SAMPLES: &str = "sensing.csi_samples";

/// Counter: motion windows a sensing scenario detected.
pub const SENSING_MOTION_WINDOWS: &str = "sensing.motion_windows";

/// Counter: links the batched sensing hub multiplexed.
pub const HUB_LINKS: &str = "hub.links";

/// Counter: kernel batches (one `SeriesBatch` pass each) the batched
/// sensing hub processed.
pub const HUB_BATCHES: &str = "hub.batches";

/// Counter: scenario submissions the daemon accepted for execution
/// (cache hits and coalesced duplicates are counted separately).
pub const DAEMON_SUBMIT_TOTAL: &str = "daemon.submit.total";

/// Counter: submissions that coalesced onto an identical in-flight job
/// instead of spawning a second run.
pub const DAEMON_SUBMIT_COALESCED: &str = "daemon.submit.coalesced";

/// Counter: submissions bounced by admission control (full queue or
/// drain in progress) with a 429/503-style response.
pub const DAEMON_ADMISSION_REJECTED: &str = "daemon.admission.rejected";

/// Counter: submissions answered straight from the content-addressed
/// result store, no re-simulation.
pub const DAEMON_CACHE_HIT: &str = "daemon.cache.hit";

/// Counter: cacheable submissions that had to simulate.
pub const DAEMON_CACHE_MISS: &str = "daemon.cache.miss";

/// Counter: cache entries that failed integrity verification on read
/// and were recomputed and overwritten.
pub const DAEMON_CACHE_CORRUPT: &str = "daemon.cache.corrupt";

/// Counter: jobs that ran to completion with exit status 0.
pub const DAEMON_JOBS_COMPLETED: &str = "daemon.jobs.completed";

/// Counter: jobs that exhausted their retry budget and were recorded
/// as failed (panic, nonzero exit, unreadable envelope).
pub const DAEMON_JOBS_FAILED: &str = "daemon.jobs.failed";

/// Counter: jobs cancelled by the per-job wall-clock deadline.
pub const DAEMON_JOBS_TIMED_OUT: &str = "daemon.jobs.timed_out";

/// Counter: failed job attempts re-enqueued under the bounded
/// `RetryPolicy`-style budget.
pub const DAEMON_JOBS_RETRIED: &str = "daemon.jobs.retried";

/// Histogram: admission-queue depth observed at each enqueue.
pub const DAEMON_QUEUE_DEPTH: &str = "daemon.queue.depth";

/// Histogram: wall-clock milliseconds a graceful drain took. Wall time
/// is fine here: daemon metrics are operational and never enter a
/// canonical result envelope.
pub const DAEMON_DRAIN_WALL_MS: &str = "daemon.drain.wall_ms";

/// Counter: progress events published into a job's flight recorder
/// (lifecycle, trial boundaries, samples). Operational-plane only.
pub const PROGRESS_EVENTS: &str = "progress.events";

/// Counter: progress events shed by flight-recorder ring overflow —
/// the journal is bounded, so a long job keeps only its newest events.
pub const PROGRESS_EVENTS_SHED: &str = "progress.events_shed";

/// Counter: `/watch/<id>` subscriptions accepted (initial + resumed).
pub const DAEMON_WATCH_SUBSCRIBED: &str = "daemon.watch.subscribed";

/// Counter: `/watch/<id>` subscriptions that resumed from a non-zero
/// `Last-Event-ID` / `?from=` position.
pub const DAEMON_WATCH_RESUMED: &str = "daemon.watch.resumed";

/// Counter: SSE events written to `/watch` subscribers.
pub const DAEMON_WATCH_EVENTS_STREAMED: &str = "daemon.watch.events_streamed";

/// Counter: events a `/watch` subscriber missed because the journal
/// ring shed them before the subscriber caught up (slow-subscriber
/// shedding — the job never waits for the stream).
pub const DAEMON_WATCH_EVENTS_SHED: &str = "daemon.watch.events_shed";

/// Counter: `/watch` subscribers that hung up (or errored) before the
/// stream reached its terminal `job_finished` event.
pub const DAEMON_WATCH_DISCONNECTED: &str = "daemon.watch.disconnected";

/// Counter: per-job flight-recorder journals persisted to the state
/// dir during a graceful drain.
pub const DAEMON_JOURNAL_PERSISTED: &str = "daemon.journal.persisted";

/// Counter: time-series windows sampled into the `/metrics/history`
/// ring by the supervisor.
pub const DAEMON_HISTORY_SAMPLES: &str = "daemon.history.samples";

/// Every exact runtime-emitted counter/histogram name.
pub const REGISTERED: &[&str] = &[
    // sim.* — event-loop outcomes.
    "sim.frames_injected",
    "sim.frames_txed",
    "sim.ack_timeouts",
    "sim.tx_retries",
    "sim.tx_drops",
    "sim.acks_received",
    "sim.cts_received",
    "sim.exchange_rtt_us",
    SIM_RETRY_CHAIN_DEPTH,
    SIM_EVENTS_DISPATCHED,
    SIM_CELLS_OCCUPIED,
    // mac.* — MAC decisions.
    "mac.csma_defer_us",
    "mac.csma_busy_backoffs",
    "mac.csma_backoff_us",
    "mac.acks_scheduled",
    "mac.cts_scheduled",
    "mac.responses_scheduled",
    "mac.ack_turnaround_us",
    "mac.cts_turnaround_us",
    "mac.response_turnaround_us",
    "mac.sifs_deadline_met",
    "mac.sifs_deadline_missed",
    "mac.enqueued",
    "mac.delivered",
    // power.* — radio power accounting.
    "power.dwell_sleep_us",
    "power.dwell_awake_us",
    "power.transitions",
    // frame.fate.* — per-frame medium-fate taxonomy.
    FRAME_FATE_DELIVERED,
    FRAME_FATE_FER_DROPPED,
    FRAME_FATE_COLLIDED,
    FRAME_FATE_STALL_SWALLOWED,
    FRAME_FATE_FAULT_SUPPRESSED,
    FRAME_FATE_UNDETECTED,
    FRAME_FATE_DOZING,
    // fault.* / retry.* / harness.* — fault layer and bookkeeping.
    FAULT_MEDIUM_FRAMES_DROPPED,
    FAULT_DEVICE_STALLS,
    FAULT_DEVICE_STALL_US,
    FAULT_DEVICE_REBOOTS,
    FAULT_DEVICE_RESPONSES_SUPPRESSED,
    FAULT_DEVICE_RX_DROPPED_STALLED,
    RETRY_ATTEMPTS,
    RETRY_BACKOFF_US,
    RETRY_QUARANTINED,
    HARNESS_TRIAL_FAILURES,
    // wardrive.* / sensing.* / hub.* — experiment-level tallies.
    "wardrive.discovered",
    "wardrive.verified",
    "wardrive.clients",
    "wardrive.aps",
    SENSING_CSI_SAMPLES,
    SENSING_MOTION_WINDOWS,
    "sensing.windows_scored",
    HUB_LINKS,
    HUB_BATCHES,
    // daemon.* — the polite-wifi-d serving layer.
    DAEMON_SUBMIT_TOTAL,
    DAEMON_SUBMIT_COALESCED,
    DAEMON_ADMISSION_REJECTED,
    DAEMON_CACHE_HIT,
    DAEMON_CACHE_MISS,
    DAEMON_CACHE_CORRUPT,
    DAEMON_JOBS_COMPLETED,
    DAEMON_JOBS_FAILED,
    DAEMON_JOBS_TIMED_OUT,
    DAEMON_JOBS_RETRIED,
    DAEMON_QUEUE_DEPTH,
    DAEMON_DRAIN_WALL_MS,
    // progress.* / daemon.watch.* — the live telemetry plane.
    PROGRESS_EVENTS,
    PROGRESS_EVENTS_SHED,
    DAEMON_WATCH_SUBSCRIBED,
    DAEMON_WATCH_RESUMED,
    DAEMON_WATCH_EVENTS_STREAMED,
    DAEMON_WATCH_EVENTS_SHED,
    DAEMON_WATCH_DISCONNECTED,
    DAEMON_JOURNAL_PERSISTED,
    DAEMON_HISTORY_SAMPLES,
];

/// Registered name families with a dynamic final segment: per-reason
/// discard counters and per-device-class turnaround histograms.
pub const REGISTERED_PREFIXES: &[&str] = &[
    "mac.discard.",
    "mac.ack_turnaround_us.",
    "mac.cts_turnaround_us.",
    "mac.response_turnaround_us.",
];

/// True when a runtime-emitted metric name is part of the registry —
/// either an exact [`REGISTERED`] entry or a member of a
/// [`REGISTERED_PREFIXES`] family.
pub fn is_registered(name: &str) -> bool {
    REGISTERED.contains(&name)
        || REGISTERED_PREFIXES
            .iter()
            .any(|p| name.len() > p.len() && name.starts_with(p))
}

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct() {
        let set: std::collections::HashSet<_> = super::REGISTERED.iter().collect();
        assert_eq!(set.len(), super::REGISTERED.len());
    }

    #[test]
    fn registry_lookup_covers_exact_and_prefixed_names() {
        assert!(super::is_registered("sim.frames_injected"));
        assert!(super::is_registered(super::RETRY_BACKOFF_US));
        assert!(super::is_registered("mac.discard.not_associated"));
        assert!(super::is_registered("mac.ack_turnaround_us.ghz2"));
        assert!(!super::is_registered("mac.discard."));
        assert!(!super::is_registered("sim.made_up"));
        assert!(!super::is_registered("totally.unknown"));
    }
}
