//! Property tests pinning the batched kernels to the scalar reference —
//! the `BatchPolicy` contract: `Exact` is value-identical (`==`, no
//! tolerance) and `Reassociated` stays within the documented bound.

use polite_wifi_sensing::batch::{self, BatchPolicy, SeriesBatch};
use polite_wifi_sensing::features;
use polite_wifi_sensing::filter;
use polite_wifi_sensing::segment::{segment, segment_from_features, SegmenterConfig};
use proptest::prelude::*;

/// Amplitude-like series: positive baseline, bounded noise, occasional
/// large spikes so the Hampel branch actually fires.
fn arb_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    // The vendored prop_oneof! picks uniformly, so the common case is
    // listed several times: mostly baseline, some impulsive outliers
    // (firing the Hampel branch), some exact ties in the sort windows.
    proptest::collection::vec(
        prop_oneof![
            1.0f64..10.0,
            1.0f64..10.0,
            1.0f64..10.0,
            1.0f64..10.0,
            50.0f64..100.0,
            Just(5.0),
        ],
        0..max_len,
    )
}

proptest! {
    #[test]
    fn hampel_exact_is_bit_identical(series in arb_series(200), hw in 0usize..8) {
        prop_assert_eq!(
            batch::hampel_exact(&series, hw, 3.0),
            filter::hampel(&series, hw, 3.0)
        );
    }

    #[test]
    fn median_select_is_value_identical(series in arb_series(150)) {
        prop_assert_eq!(batch::median_select(&series), filter::median(&series));
    }

    #[test]
    fn conditioning_exact_matches_scalar(series in arb_series(300)) {
        prop_assert_eq!(
            batch::condition_with_policy(&series, BatchPolicy::Exact),
            batch::condition_with_policy(&series, BatchPolicy::Scalar)
        );
    }

    #[test]
    fn conditioning_reassociated_within_tolerance(series in arb_series(300)) {
        // The documented Reassociated bound: prefix-sum moving averages
        // accumulate rounding across the running sum; relative error
        // stays far below 1e-9 for amplitude-scale inputs.
        let exact = batch::condition_with_policy(&series, BatchPolicy::Exact);
        let reassoc = batch::condition_with_policy(&series, BatchPolicy::Reassociated);
        prop_assert_eq!(exact.len(), reassoc.len());
        for (a, b) in exact.iter().zip(&reassoc) {
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "exact {} vs reassociated {}", a, b
            );
        }
    }

    #[test]
    fn feature_extraction_fast_is_bit_identical(series in arb_series(120)) {
        let mut scratch = Vec::new();
        prop_assert_eq!(
            batch::extract_fast(&series, &mut scratch),
            features::extract(&series)
        );
    }

    #[test]
    fn sliding_features_fast_matches_scalar(series in arb_series(250),
                                            window in 1usize..40,
                                            hop in 1usize..20) {
        prop_assert_eq!(
            batch::sliding_features_fast(&series, window, hop),
            features::sliding_features_scalar(&series, window, hop)
        );
    }

    #[test]
    fn segmentation_from_features_matches_direct(series in arb_series(400)) {
        let cfg = SegmenterConfig::default();
        let feats = features::sliding_features_scalar(&series, cfg.window_len, cfg.hop);
        prop_assert_eq!(
            segment_from_features(&feats, series.len(), &cfg),
            segment(&series, &cfg)
        );
    }

    #[test]
    fn batch_rows_match_per_row_pipeline(rows in proptest::collection::vec(arb_series(180), 1..6)) {
        // Pad to equal length (SeriesBatch rows are rectangular).
        let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut sb = SeriesBatch::new(cols);
        let padded: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut p = r.clone();
                p.resize(cols, 5.0);
                p
            })
            .collect();
        for p in &padded {
            sb.push_row(p);
        }
        let conditioned = batch::condition_batch(&sb);
        let cfg = SegmenterConfig::default();
        let segs = batch::segment_batch(&conditioned, &cfg);
        for (r, p) in padded.iter().enumerate() {
            let reference = filter::condition(p);
            prop_assert_eq!(conditioned.row(r), reference.as_slice());
            prop_assert_eq!(&segs[r], &segment(&reference, &cfg));
        }
    }
}
