//! The harness's single stderr sink.
//!
//! Every diagnostic line the harness emits — degraded-trial notices,
//! partial-result warnings, progress heartbeats — goes through here
//! instead of ad-hoc `eprintln!` calls, so one `--quiet` flag silences
//! them all and concurrent workers never interleave partial lines.
//!
//! Two severities:
//!
//! * [`diag`] — advisory diagnostics, suppressed by `--quiet`;
//! * [`alert`] — always printed (usage errors, budget violations):
//!   exiting non-zero with no explanation is worse than noise.
//!
//! The [`Heartbeat`] rate-limits `--progress` output (wall-clock based,
//! stderr only — nothing here ever reaches a result envelope, so the
//! byte-identical-across-workers guarantee is untouched).

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static QUIET: AtomicBool = AtomicBool::new(false);
static LINE_LOCK: Mutex<()> = Mutex::new(());

/// Sets whether [`diag`] lines are suppressed (`--quiet`).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// True when `--quiet` suppressed advisory diagnostics.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

fn raw_line(msg: &str) {
    let _guard = LINE_LOCK.lock().unwrap();
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{msg}");
}

/// Writes an advisory diagnostic line to stderr unless `--quiet`.
pub fn diag(msg: &str) {
    if !is_quiet() {
        raw_line(msg);
    }
}

/// Writes a line to stderr unconditionally (errors the operator must
/// see even under `--quiet`).
pub fn alert(msg: &str) {
    raw_line(msg);
}

/// A rate-limited progress reporter for `--progress`.
///
/// [`tick`](Self::tick) prints at most once per interval; the message is
/// rendered lazily so a suppressed tick costs nothing. `--progress` is
/// an explicit opt-in, so heartbeat lines print even under `--quiet`.
pub struct Heartbeat {
    enabled: bool,
    every: Duration,
    last: Mutex<Option<Instant>>,
}

impl Heartbeat {
    /// A heartbeat printing at most twice a second when enabled.
    pub fn new(enabled: bool) -> Heartbeat {
        Heartbeat::with_interval(enabled, Duration::from_millis(500))
    }

    /// A heartbeat with an explicit rate limit (tests use zero).
    pub fn with_interval(enabled: bool, every: Duration) -> Heartbeat {
        Heartbeat {
            enabled,
            every,
            last: Mutex::new(None),
        }
    }

    /// Whether ticks will ever print.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Prints `render()` if enabled and the rate limit allows.
    pub fn tick<F: FnOnce() -> String>(&self, render: F) {
        if !self.enabled {
            return;
        }
        {
            let mut last = self.last.lock().unwrap();
            let now = Instant::now();
            if last.is_some_and(|t| now.duration_since(t) < self.every) {
                return;
            }
            *last = Some(now);
        }
        raw_line(&render());
    }

    /// Prints `render()` if enabled, ignoring the rate limit (the final
    /// status line of a run should never be swallowed).
    pub fn flush<F: FnOnce() -> String>(&self, render: F) {
        if self.enabled {
            raw_line(&render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_rate_limits_and_flushes() {
        let hb = Heartbeat::with_interval(true, Duration::from_secs(3600));
        let mut rendered = 0;
        hb.tick(|| {
            rendered += 1;
            String::new()
        });
        // Within the interval the second tick must not render.
        hb.tick(|| {
            rendered += 1;
            String::new()
        });
        assert_eq!(rendered, 1);
        hb.flush(|| {
            rendered += 1;
            String::new()
        });
        assert_eq!(rendered, 2);
    }

    #[test]
    fn disabled_heartbeat_never_renders() {
        let hb = Heartbeat::new(false);
        hb.tick(|| panic!("must not render"));
        hb.flush(|| panic!("must not render"));
        assert!(!hb.enabled());
    }
}
