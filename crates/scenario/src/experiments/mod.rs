//! The ported paper experiments, one module per historical `exp_*`
//! binary. Each exposes `run(spec, args)` with the exact pre-port
//! stdout and envelope bytes; the spec supplies identity (name,
//! paper_ref, slug) and run defaults, the module the logic.

pub mod ablation_validate;
pub mod battery_life;
pub mod city_wardrive;
pub mod ext_classifier;
pub mod ext_driveby;
pub mod ext_nav_dos;
pub mod ext_randomization;
pub mod ext_ranging;
pub mod ext_vitals;
pub mod fig2_trace;
pub mod fig3_deauth;
pub mod fig5_keystroke;
pub mod fig6_power;
pub mod sensing_hub;
pub mod sifs_timing;
pub mod table1_devices;
pub mod table2_wardrive;
