//! Vendored `serde_json` subset: serialization only.
//!
//! Pretty-printing follows upstream `serde_json` conventions (2-space
//! indent, `": "` separators, floats always carry a decimal point or
//! exponent, non-finite floats print as `null`). Output is fully
//! deterministic — derived structs keep declaration order and the
//! vendored serde sorts `HashMap` entries by key.

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

pub use serde::Value;

use serde::Serialize;
use std::fmt;

/// Serialization error (the write-only subset cannot actually fail; the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // `{}` prints 1.0 as "1"; upstream serde_json prints "1.0".
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_shape_matches_serde_json() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("ack".into())),
            ("count".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(1.0)),
            (
                "tags".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"name\": \"ack\",\n  \"count\": 3,\n  \"ratio\": 1.0,\n  \"tags\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn compact_and_escapes() {
        let v = Value::Array(vec![
            Value::String("a\"b\\c\n".into()),
            Value::Null,
            Value::Bool(true),
        ]);
        assert_eq!(to_string(&v).unwrap(), "[\"a\\\"b\\\\c\\n\",null,true]");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
