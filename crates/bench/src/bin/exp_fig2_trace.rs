//! E1 — Figure 2: the frames exchanged between attacker and victim.
//!
//! One fake null-function frame from `aa:bb:bb:bb:bb:bb` to the victim;
//! the victim answers with an ACK addressed back to the forged MAC.
//! Prints the Wireshark-style rows and writes the pcap.

use polite_wifi_bench::{compare, ensure_results_dir, Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_core::{AckVerifier, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_frame::MacAddr;
use polite_wifi_pcap::{trace, LinkType};
use polite_wifi_phy::rate::BitRate;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Result {
    fakes_sent: u64,
    acks_elicited: usize,
    ack_latency_us: Vec<u64>,
    trace_rows: Vec<[String; 4]>,
}

fn main() -> std::io::Result<()> {
    let mut exp = Experiment::start_defaults(
        "E1: attacker/victim trace (fake null frame → ACK)",
        "Figure 2 of 'WiFi Says Hi! Back to Strangers!' (HotNets '20)",
        RunArgs {
            seed: 2,
            ..RunArgs::default()
        },
    );

    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();

    let mut sb = ScenarioBuilder::new()
        .duration_us(1_500_000)
        .faults(exp.args().faults);
    let ap = sb.access_point(ap_mac, "PrivateNet", (2.0, 0.0));
    let victim = sb.client(victim_mac, (0.0, 0.0));
    let attacker = sb.monitor(MacAddr::FAKE, (6.0, 0.0));
    sb.link(victim, ap);
    let mut scenario = sb.build_with_seed(exp.seed());

    let plan = InjectionPlan {
        victim: victim_mac,
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::NullData,
        rate_pps: 5,
        start_us: 20_000,
        duration_us: 1_000_000,
        bitrate: BitRate::Mbps1,
    };
    let fakes = FakeFrameInjector::new(attacker).execute(&mut scenario.sim, &plan);
    let sim = scenario.run();

    // Print the attack exchange only (beacons elided, like the figure).
    let rows: Vec<_> = trace::rows(&sim.node(attacker).capture)
        .into_iter()
        .filter(|r| !r.info.starts_with("Beacon"))
        .collect();
    println!("\nSource             Destination        Info");
    for r in &rows {
        println!("{:<18} {:<18} {}", r.source, r.destination, r.info);
    }

    let exchanges = AckVerifier::new(MacAddr::FAKE).verify(&sim.node(attacker).capture);
    let latencies: Vec<u64> = exchanges
        .iter()
        .map(|e| e.ack_ts_us - e.fake_ts_us)
        .collect();
    exp.metrics.record("fakes_sent", fakes as f64);
    exp.metrics.record("acks_elicited", exchanges.len() as f64);
    for l in &latencies {
        exp.metrics.record("ack_latency_us", *l as f64);
    }

    println!();
    compare(
        "victim ACKs every fake frame",
        "yes",
        if exchanges.len() as u64 == fakes {
            "yes"
        } else {
            "NO"
        },
    );
    compare(
        "ACK destination is the forged MAC",
        "aa:bb:bb:bb:bb:bb",
        &rows
            .iter()
            .find(|r| r.info.starts_with("Acknowledgement"))
            .map(|r| r.destination.clone())
            .unwrap_or_default(),
    );
    compare(
        "ACK latency after frame end (SIFS + ACK airtime)",
        "10 µs SIFS",
        &format!("{} µs total", latencies.first().copied().unwrap_or(0)),
    );

    let path = ensure_results_dir()?.join("fig2_trace.pcap");
    sim.node(attacker)
        .capture
        .write_pcap_file(&path, LinkType::Ieee80211Radiotap)?;
    println!("\npcap written to {}", path.display());

    scenario.observe_activity(victim, "power.victim");
    let snapshot = scenario.sim.take_obs();
    exp.absorb_obs(snapshot);

    if exp.args().faults.is_clean() {
        assert_eq!(exchanges.len() as u64, fakes, "every fake must be ACKed");
    }
    exp.finish(
        "fig2_trace",
        &Fig2Result {
            fakes_sent: fakes,
            acks_elicited: exchanges.len(),
            ack_latency_us: latencies,
            trace_rows: rows
                .iter()
                .map(|r| {
                    [
                        r.time.clone(),
                        r.source.clone(),
                        r.destination.clone(),
                        r.info.clone(),
                    ]
                })
                .collect(),
        },
    )
}
