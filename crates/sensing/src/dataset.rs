//! Labelled CSI dataset generation and classifier evaluation.
//!
//! The paper stops at "the patterns are very distinct" (Figure 5); this
//! module carries the demonstration to its logical end: generate many
//! independent sessions per activity class on fresh channel realisations,
//! extract window features, and score a classifier with proper
//! train/test session separation (no window from a test session ever
//! appears in training).

use crate::batch::{condition_batch, sliding_features_batch, BatchPolicy, SeriesBatch};
use crate::classify::{ActivityClass, ConfusionMatrix, KnnClassifier};
use crate::features::{sliding_features, FeatureVector};
use crate::filter;
use polite_wifi_phy::csi::CsiChannel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One labelled feature window.
#[derive(Debug, Clone, Copy)]
pub struct LabelledWindow {
    /// Ground-truth class.
    pub class: ActivityClass,
    /// The extracted features.
    pub features: FeatureVector,
}

/// Generates one session's amplitude series (~150 Hz) for a class, on a
/// fresh channel realisation.
pub fn generate_session(
    class: ActivityClass,
    len_samples: usize,
    seed: u64,
    subcarrier: usize,
) -> Vec<f64> {
    filter::condition(&generate_session_raw(class, len_samples, seed, subcarrier))
}

/// The unconditioned series behind [`generate_session`] — the batched
/// dataset path conditions whole [`SeriesBatch`]es at once instead of one
/// session at a time.
fn generate_session_raw(
    class: ActivityClass,
    len_samples: usize,
    seed: u64,
    subcarrier: usize,
) -> Vec<f64> {
    let mut channel = CsiChannel::new(seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4441_5441); // "DATA"
    let mut out = Vec::with_capacity(len_samples);
    // Typing burst state: keystrokes every ~30-60 samples, 10-14 long.
    let mut burst_left = 0usize;
    let mut until_burst = rng.gen_range(20..50usize);
    for _ in 0..len_samples {
        let intensity: f64 = match class {
            ActivityClass::Idle => 0.0,
            ActivityClass::Hold => 0.10 + rng.gen_range(-0.02..0.02),
            ActivityClass::Typing => {
                if burst_left > 0 {
                    burst_left -= 1;
                    0.72
                } else if until_burst == 0 {
                    burst_left = rng.gen_range(10..14);
                    until_burst = rng.gen_range(25..55);
                    0.72
                } else {
                    until_burst -= 1;
                    0.08
                }
            }
            ActivityClass::Motion => 0.75 + rng.gen_range(-0.2..0.25),
        };
        out.push(
            channel
                .sample(intensity.clamp(0.0, 1.0))
                .amplitude(subcarrier),
        );
    }
    out
}

/// Generates `sessions_per_class` sessions for every class and slices
/// them into labelled feature windows.
pub fn generate_dataset(
    sessions_per_class: usize,
    session_len: usize,
    window_len: usize,
    hop: usize,
    seed: u64,
    subcarrier: usize,
) -> Vec<Vec<LabelledWindow>> {
    // Outer vec: one entry per session (so callers can split by session).
    let specs: Vec<(ActivityClass, u64)> = ActivityClass::ALL
        .iter()
        .enumerate()
        .flat_map(|(ci, &class)| {
            (0..sessions_per_class)
                .map(move |s| (class, seed ^ ((ci as u64) << 32) ^ (s as u64 + 1)))
        })
        .collect();

    if BatchPolicy::active() == BatchPolicy::Scalar {
        // Scalar reference path: one session at a time, verbatim.
        return specs
            .iter()
            .map(|&(class, session_seed)| {
                let series = generate_session(class, session_len, session_seed, subcarrier);
                sliding_features(&series, window_len, hop)
                    .into_iter()
                    .map(|(_, features)| LabelledWindow { class, features })
                    .collect()
            })
            .collect();
    }

    // Batched path: every session is a row of one SoA matrix, so
    // conditioning and feature extraction walk contiguous memory.
    let mut raw = SeriesBatch::with_capacity(session_len, specs.len());
    for &(class, session_seed) in &specs {
        raw.push_row(&generate_session_raw(
            class,
            session_len,
            session_seed,
            subcarrier,
        ));
    }
    let conditioned = condition_batch(&raw);
    sliding_features_batch(&conditioned, window_len, hop)
        .into_iter()
        .zip(&specs)
        .map(|(windows, &(class, _))| {
            windows
                .into_iter()
                .map(|(_, features)| LabelledWindow { class, features })
                .collect()
        })
        .collect()
}

/// Leave-sessions-out evaluation: trains a k-NN on `train_sessions` and
/// scores it on `test_sessions`.
pub fn evaluate_knn(
    train_sessions: &[Vec<LabelledWindow>],
    test_sessions: &[Vec<LabelledWindow>],
    k: usize,
) -> ConfusionMatrix {
    let mut knn = KnnClassifier::new();
    for session in train_sessions {
        for w in session {
            knn.add_example(w.class, w.features);
        }
    }
    let mut matrix = ConfusionMatrix::default();
    for session in test_sessions {
        for w in session {
            if let Some(predicted) = knn.classify(&w.features, k) {
                matrix.record(w.class, predicted);
            }
        }
    }
    matrix
}

/// Convenience: generates a dataset, splits sessions alternately into
/// train/test, and returns the test confusion matrix.
pub fn cross_session_accuracy(
    sessions_per_class: usize,
    session_len: usize,
    seed: u64,
) -> ConfusionMatrix {
    let sessions = generate_dataset(sessions_per_class, session_len, 45, 15, seed, 17);
    let (train, test): (Vec<_>, Vec<_>) = sessions
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let train: Vec<Vec<LabelledWindow>> = train.into_iter().map(|(_, s)| s).collect();
    let test: Vec<Vec<LabelledWindow>> = test.into_iter().map(|(_, s)| s).collect();
    evaluate_knn(&train, &test, 5)
}

/// Mean feature check used by tests: the per-class window std ordering
/// that Figure 5 shows must hold on generated data too.
pub fn mean_std_of_class(sessions: &[Vec<LabelledWindow>], class: ActivityClass) -> f64 {
    let values: Vec<f64> = sessions
        .iter()
        .flatten()
        .filter(|w| w.class == class)
        .map(|w| w.features.std_dev)
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_variability_ordering_holds_on_generated_data() {
        let sessions = generate_dataset(3, 900, 45, 15, 7, 17);
        let idle = mean_std_of_class(&sessions, ActivityClass::Idle);
        let hold = mean_std_of_class(&sessions, ActivityClass::Hold);
        let typing = mean_std_of_class(&sessions, ActivityClass::Typing);
        let motion = mean_std_of_class(&sessions, ActivityClass::Motion);
        assert!(idle < hold, "{idle} < {hold}");
        assert!(hold < typing, "{hold} < {typing}");
        assert!(typing < motion, "{typing} < {motion}");
    }

    #[test]
    fn cross_session_knn_beats_chance_by_far() {
        let matrix = cross_session_accuracy(4, 900, 11);
        assert!(matrix.total() > 300, "total {}", matrix.total());
        let acc = matrix.accuracy();
        // Chance is 25%; the signal should carry this well past 80%.
        assert!(acc > 0.8, "accuracy {acc} ({matrix:?})");
    }

    #[test]
    fn sessions_are_independent_realisations() {
        let a = generate_session(ActivityClass::Typing, 300, 1, 17);
        let b = generate_session(ActivityClass::Typing, 300, 2, 17);
        assert_ne!(a, b);
        // Same seed reproduces.
        let c = generate_session(ActivityClass::Typing, 300, 1, 17);
        assert_eq!(a, c);
    }

    #[test]
    fn batched_dataset_is_bit_identical_to_per_session_reference() {
        // The batched path must not change a single bit versus running
        // generate_session + sliding_features one session at a time
        // (which is what the Scalar policy branch does).
        let (spc, len, win, hop, seed, sc) = (3, 600, 45, 15, 9, 17);
        let got = generate_dataset(spc, len, win, hop, seed, sc);
        let mut want = Vec::new();
        for (ci, &class) in ActivityClass::ALL.iter().enumerate() {
            for s in 0..spc {
                let session_seed = seed ^ ((ci as u64) << 32) ^ (s as u64 + 1);
                let series = generate_session(class, len, session_seed, sc);
                let windows: Vec<LabelledWindow> = sliding_features(&series, win, hop)
                    .into_iter()
                    .map(|(_, features)| LabelledWindow { class, features })
                    .collect();
                want.push(windows);
            }
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.len(), w.len());
            for (a, b) in g.iter().zip(w) {
                assert_eq!(a.class, b.class);
                assert_eq!(a.features, b.features);
            }
        }
    }

    #[test]
    fn dataset_shape() {
        let sessions = generate_dataset(2, 300, 45, 15, 3, 17);
        assert_eq!(sessions.len(), 2 * ActivityClass::ALL.len());
        // (300 - 45) / 15 + 1 = 18 windows per session.
        assert!(sessions.iter().all(|s| s.len() == 18));
    }
}
