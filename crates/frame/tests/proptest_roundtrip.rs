//! Property tests: every frame this codec can build must round-trip
//! losslessly through its on-air byte representation, and the FCS must
//! reject corruption.

use polite_wifi_frame::control::ControlFrame;
use polite_wifi_frame::control::FrameControl;
use polite_wifi_frame::data::DataFrame;
use polite_wifi_frame::ie::InformationElement;
use polite_wifi_frame::mgmt::{ManagementBody, ManagementFrame};
use polite_wifi_frame::reason::ReasonCode;
use polite_wifi_frame::{fcs, Frame, MacAddr};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ie() -> impl Strategy<Value = InformationElement> {
    (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(id, data)| InformationElement::new(id, data))
}

fn arb_mgmt_body() -> impl Strategy<Value = ManagementBody> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(arb_ie(), 0..4)
        )
            .prop_map(|(timestamp, interval_tu, capabilities, elements)| {
                ManagementBody::Beacon {
                    timestamp,
                    interval_tu,
                    capabilities,
                    elements,
                }
            }),
        proptest::collection::vec(arb_ie(), 0..4)
            .prop_map(|elements| ManagementBody::ProbeRequest { elements }),
        any::<u16>().prop_map(|r| ManagementBody::Deauthentication {
            reason: ReasonCode::from_u16(r),
        }),
        any::<u16>().prop_map(|r| ManagementBody::Disassociation {
            reason: ReasonCode::from_u16(r),
        }),
        (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(algorithm, transaction, status)| {
            ManagementBody::Authentication {
                algorithm,
                transaction,
                status,
            }
        }),
        proptest::collection::vec(any::<u8>(), 0..32)
            .prop_map(|payload| ManagementBody::Action { payload }),
    ]
}

fn arb_ctrl() -> impl Strategy<Value = ControlFrame> {
    prop_oneof![
        (any::<u16>(), arb_mac(), arb_mac()).prop_map(|(duration_us, ra, ta)| {
            ControlFrame::Rts {
                duration_us,
                ra,
                ta,
            }
        }),
        (any::<u16>(), arb_mac())
            .prop_map(|(duration_us, ra)| ControlFrame::Cts { duration_us, ra }),
        arb_mac().prop_map(|ra| ControlFrame::Ack { ra }),
        (0u16..0x4000, arb_mac(), arb_mac()).prop_map(|(aid, bssid, ta)| ControlFrame::PsPoll {
            aid,
            bssid,
            ta
        }),
        (
            any::<u16>(),
            arb_mac(),
            arb_mac(),
            any::<u16>(),
            any::<u16>(),
            any::<u64>()
        )
            .prop_map(|(duration_us, ra, ta, control, start_seq, bitmap)| {
                ControlFrame::BlockAck {
                    duration_us,
                    ra,
                    ta,
                    control,
                    start_seq,
                    bitmap,
                }
            }),
    ]
}

fn arb_data() -> impl Strategy<Value = DataFrame> {
    (
        arb_mac(),
        arb_mac(),
        arb_mac(),
        0u16..4096,
        prop_oneof![
            Just(None),
            proptest::collection::vec(any::<u8>(), 0..256).prop_map(Some)
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a1, a2, a3, seq, payload, retry, protected)| {
            let mut f = match payload {
                None => DataFrame::null(a1, a2, seq),
                Some(p) => DataFrame::new(a1, a2, a3, seq, p),
            };
            f.fc.retry = retry;
            // Only payload frames may be protected in our model.
            if !f.is_null() {
                f.fc.protected = protected;
            }
            f
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (arb_mac(), arb_mac(), arb_mac(), 0u16..4096, arb_mgmt_body()).prop_map(
            |(ra, ta, bssid, seq, body)| Frame::Mgmt(ManagementFrame::new(
                ra, ta, bssid, seq, body
            ))
        ),
        arb_ctrl().prop_map(Frame::Ctrl),
        arb_data().prop_map(Frame::Data),
    ]
}

proptest! {
    #[test]
    fn frame_round_trips_with_fcs(frame in arb_frame()) {
        let bytes = frame.encode(true);
        let parsed = Frame::parse(&bytes, true).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn frame_round_trips_without_fcs(frame in arb_frame()) {
        let bytes = frame.encode(false);
        let parsed = Frame::parse(&bytes, false).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn air_len_is_encoded_len_plus_fcs(frame in arb_frame()) {
        prop_assert_eq!(frame.air_len(), frame.encode(true).len());
    }

    #[test]
    fn single_byte_corruption_never_parses_as_valid(
        frame in arb_frame(),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = frame.encode(true);
        let idx = at.index(bytes.len());
        bytes[idx] ^= xor;
        // Either the FCS rejects it, or (for corruption that still parses)
        // the result must differ from the original; it must never silently
        // equal the original frame.
        match Frame::parse(&bytes, true) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, frame),
        }
    }

    #[test]
    fn fcs_detects_any_single_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..128),
                                       byte in any::<prop::sample::Index>(),
                                       bit in 0u8..8) {
        let mut buf = data.clone();
        fcs::append_fcs(&mut buf);
        let idx = byte.index(data.len());
        buf[idx] ^= 1 << bit;
        prop_assert!(!fcs::check_fcs(&buf).unwrap().is_valid());
    }

    #[test]
    fn frame_control_round_trips(b0 in (0u8..64).prop_map(|v| v << 2), b1 in any::<u8>()) {
        let fc = FrameControl::parse(&[b0, b1]).unwrap();
        prop_assert_eq!(fc.encode(), [b0, b1]);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::parse(&bytes, true);
        let _ = Frame::parse(&bytes, false);
    }
}
