//! Per-device profiles, including the Table 1 test matrix.

use polite_wifi_mac::{Behavior, Role};
use polite_wifi_phy::band::Band;
use serde::{Deserialize, Serialize};

/// The 802.11 amendment a device speaks (as Table 1 lists it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WifiStandard {
    /// 802.11n.
    N,
    /// 802.11ac.
    Ac,
}

impl WifiStandard {
    /// The label the paper's table uses.
    pub fn label(self) -> &'static str {
        match self {
            WifiStandard::N => "11n",
            WifiStandard::Ac => "11ac",
        }
    }
}

/// A concrete device profile: what the survey knows about one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing/device name.
    pub device: String,
    /// WiFi chipset/module.
    pub chipset: String,
    /// Vendor name (for Table 2 attribution).
    pub vendor: String,
    /// 802.11 standard.
    pub standard: WifiStandard,
    /// Operating band.
    pub band: Band,
    /// Client or AP.
    pub role: Role,
    /// MAC behaviour quirks.
    pub behavior: Behavior,
}

/// The five devices of Table 1 (plus the tablet victim of Section 2's
/// first experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Table1Device {
    /// MSI GE62 laptop — Intel AC 3160, 11ac.
    MsiGe62Laptop,
    /// Ecobee3 thermostat — Atheros, 11n.
    Ecobee3Thermostat,
    /// Surface Pro 2017 — Marvell 88W8897, 11ac.
    SurfacePro2017,
    /// Samsung Galaxy S8 — Murata KM5D18098, 11ac.
    GalaxyS8,
    /// Google Wifi AP — Qualcomm IPQ 4019, 11ac.
    GoogleWifiAp,
}

impl Table1Device {
    /// All five rows of Table 1, in the paper's order.
    pub const ALL: [Table1Device; 5] = [
        Table1Device::MsiGe62Laptop,
        Table1Device::Ecobee3Thermostat,
        Table1Device::SurfacePro2017,
        Table1Device::GalaxyS8,
        Table1Device::GoogleWifiAp,
    ];

    /// The full profile for this row.
    pub fn profile(self) -> DeviceProfile {
        match self {
            Table1Device::MsiGe62Laptop => DeviceProfile {
                device: "MSI GE62 laptop".into(),
                chipset: "Intel AC 3160".into(),
                vendor: "Intel".into(),
                standard: WifiStandard::Ac,
                band: Band::Ghz5,
                role: Role::Client,
                behavior: Behavior::client(),
            },
            Table1Device::Ecobee3Thermostat => DeviceProfile {
                device: "Ecobee3 thermostat".into(),
                chipset: "Atheros".into(),
                vendor: "ecobee".into(),
                standard: WifiStandard::N,
                band: Band::Ghz2,
                role: Role::Client,
                behavior: Behavior::iot_power_save(),
            },
            Table1Device::SurfacePro2017 => DeviceProfile {
                device: "Surface Pro 2017".into(),
                chipset: "Marvell 88W8897".into(),
                vendor: "Microsoft".into(),
                standard: WifiStandard::Ac,
                band: Band::Ghz5,
                role: Role::Client,
                behavior: Behavior::client(),
            },
            Table1Device::GalaxyS8 => DeviceProfile {
                device: "Samsung Galaxy S8".into(),
                chipset: "Murata KM5D18098".into(),
                vendor: "Samsung".into(),
                standard: WifiStandard::Ac,
                band: Band::Ghz5,
                role: Role::Client,
                behavior: Behavior::client(),
            },
            Table1Device::GoogleWifiAp => DeviceProfile {
                device: "Google Wifi AP".into(),
                chipset: "Qualcomm IPQ 4019".into(),
                vendor: "Google".into(),
                standard: WifiStandard::Ac,
                band: Band::Ghz5,
                role: Role::AccessPoint,
                behavior: Behavior::deauthing_ap(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_rows() {
        let rows: Vec<(String, String, &str)> = Table1Device::ALL
            .iter()
            .map(|d| {
                let p = d.profile();
                (p.device.clone(), p.chipset.clone(), p.standard.label())
            })
            .collect();
        assert_eq!(
            rows[0],
            (
                "MSI GE62 laptop".to_string(),
                "Intel AC 3160".to_string(),
                "11ac"
            )
        );
        assert_eq!(
            rows[1],
            (
                "Ecobee3 thermostat".to_string(),
                "Atheros".to_string(),
                "11n"
            )
        );
        assert_eq!(
            rows[2],
            (
                "Surface Pro 2017".to_string(),
                "Marvell 88W8897".to_string(),
                "11ac"
            )
        );
        assert_eq!(
            rows[3],
            (
                "Samsung Galaxy S8".to_string(),
                "Murata KM5D18098".to_string(),
                "11ac"
            )
        );
        assert_eq!(
            rows[4],
            (
                "Google Wifi AP".to_string(),
                "Qualcomm IPQ 4019".to_string(),
                "11ac"
            )
        );
    }

    #[test]
    fn only_the_google_wifi_is_an_ap() {
        for d in Table1Device::ALL {
            let p = d.profile();
            if d == Table1Device::GoogleWifiAp {
                assert_eq!(p.role, Role::AccessPoint);
            } else {
                assert_eq!(p.role, Role::Client);
            }
        }
    }

    #[test]
    fn thermostat_is_a_power_save_iot_device() {
        let p = Table1Device::Ecobee3Thermostat.profile();
        assert!(p.behavior.power_save.is_some());
        assert_eq!(p.band, Band::Ghz2);
    }

    #[test]
    fn standard_labels() {
        assert_eq!(WifiStandard::N.label(), "11n");
        assert_eq!(WifiStandard::Ac.label(), "11ac");
    }
}
