//! Ground-truth motion timelines.
//!
//! A [`MotionScript`] maps time to a motion intensity in `[0, 1]`, which
//! the PHY's `CsiChannel` turns into channel dynamics. Scripts also expose
//! their labelled phases so classifiers can be scored against truth.

use serde::{Deserialize, Serialize};

/// A labelled activity phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Start time in microseconds.
    pub start_us: u64,
    /// End time in microseconds.
    pub end_us: u64,
    /// Human-readable label ("idle", "pickup", "hold", "typing"...).
    pub label: String,
    /// Base motion intensity during the phase.
    pub intensity: f64,
}

/// A piecewise motion timeline plus optional keystroke impulses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionScript {
    /// The labelled phases, in time order, non-overlapping.
    pub phases: Vec<Phase>,
    /// Times of individual keystrokes (each adds a short intensity burst).
    pub keystrokes_us: Vec<u64>,
    /// Extra intensity during a keystroke burst.
    pub keystroke_boost: f64,
    /// Duration of each keystroke burst in microseconds.
    pub keystroke_len_us: u64,
}

impl MotionScript {
    /// An empty (always idle) script.
    pub fn idle(duration_us: u64) -> MotionScript {
        MotionScript {
            phases: vec![Phase {
                start_us: 0,
                end_us: duration_us,
                label: "idle".into(),
                intensity: 0.0,
            }],
            keystrokes_us: Vec::new(),
            keystroke_boost: 0.0,
            keystroke_len_us: 0,
        }
    }

    /// The Figure 5 scenario: tablet on the ground (0–7 s), user
    /// approaches and picks it up (7–9 s), holds it (9–19 s), types
    /// (19–29 s, ~4 keystrokes/s), puts it down (29–31 s), idle again.
    /// The sharp transitions at ≈9 s and ≈29–32 s are the "movements near
    /// the target device" the Figure 5 caption points at.
    pub fn figure5() -> MotionScript {
        let s = |sec: u64| sec * 1_000_000;
        let phases = vec![
            Phase {
                start_us: 0,
                end_us: s(7),
                label: "idle".into(),
                intensity: 0.0,
            },
            Phase {
                start_us: s(7),
                end_us: s(9),
                label: "pickup".into(),
                intensity: 1.0,
            },
            Phase {
                start_us: s(9),
                end_us: s(19),
                label: "hold".into(),
                intensity: 0.12,
            },
            Phase {
                start_us: s(19),
                end_us: s(29),
                label: "typing".into(),
                intensity: 0.10,
            },
            Phase {
                start_us: s(29),
                end_us: s(31),
                label: "putdown".into(),
                intensity: 1.0,
            },
            Phase {
                start_us: s(31),
                end_us: s(45),
                label: "idle".into(),
                intensity: 0.0,
            },
        ];
        // 4 keystrokes per second through the typing phase.
        let mut keystrokes_us = Vec::new();
        let mut t = s(19) + 120_000;
        while t < s(29) {
            keystrokes_us.push(t);
            t += 250_000;
        }
        MotionScript {
            phases,
            keystrokes_us,
            keystroke_boost: 0.65,
            keystroke_len_us: 80_000,
        }
    }

    /// A breathing subject near the device: gentle sinusoidal intensity at
    /// `rate_bpm` breaths per minute (the vital-signs threat of §4.1).
    pub fn breathing(duration_us: u64, rate_bpm: f64) -> MotionScript {
        // Encoded as many small phases approximating the sinusoid, so the
        // script stays a plain piecewise structure.
        let step_us = 100_000u64;
        let omega = 2.0 * std::f64::consts::PI * rate_bpm / 60.0;
        let mut phases = Vec::new();
        let mut t = 0u64;
        while t < duration_us {
            let sec = t as f64 / 1e6;
            let intensity = 0.06 + 0.05 * (omega * sec).sin();
            phases.push(Phase {
                start_us: t,
                end_us: (t + step_us).min(duration_us),
                label: "breathing".into(),
                intensity,
            });
            t += step_us;
        }
        MotionScript {
            phases,
            keystrokes_us: Vec::new(),
            keystroke_boost: 0.0,
            keystroke_len_us: 0,
        }
    }

    /// A person walking past the device between `from_us` and `to_us`.
    pub fn walk_by(duration_us: u64, from_us: u64, to_us: u64) -> MotionScript {
        let mut phases = Vec::new();
        if from_us > 0 {
            phases.push(Phase {
                start_us: 0,
                end_us: from_us,
                label: "idle".into(),
                intensity: 0.0,
            });
        }
        phases.push(Phase {
            start_us: from_us,
            end_us: to_us,
            label: "walk".into(),
            intensity: 0.8,
        });
        if to_us < duration_us {
            phases.push(Phase {
                start_us: to_us,
                end_us: duration_us,
                label: "idle".into(),
                intensity: 0.0,
            });
        }
        MotionScript {
            phases,
            keystrokes_us: Vec::new(),
            keystroke_boost: 0.0,
            keystroke_len_us: 0,
        }
    }

    /// Total duration of the script.
    pub fn duration_us(&self) -> u64 {
        self.phases.last().map(|p| p.end_us).unwrap_or(0)
    }

    /// The motion intensity at `t_us`: the phase's base level plus any
    /// active keystroke burst, clamped to `[0, 1]`.
    pub fn intensity_at(&self, t_us: u64) -> f64 {
        let base = self
            .phases
            .iter()
            .find(|p| p.start_us <= t_us && t_us < p.end_us)
            .map(|p| p.intensity)
            .unwrap_or(0.0);
        let burst = self
            .keystrokes_us
            .iter()
            .any(|&k| k <= t_us && t_us < k + self.keystroke_len_us);
        let v = if burst {
            base + self.keystroke_boost
        } else {
            base
        };
        v.clamp(0.0, 1.0)
    }

    /// The label of the phase containing `t_us`.
    pub fn label_at(&self, t_us: u64) -> &str {
        self.phases
            .iter()
            .find(|p| p.start_us <= t_us && t_us < p.end_us)
            .map(|p| p.label.as_str())
            .unwrap_or("idle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_phases_cover_45_seconds() {
        let s = MotionScript::figure5();
        assert_eq!(s.duration_us(), 45_000_000);
        // Phases are contiguous and ordered.
        for w in s.phases.windows(2) {
            assert_eq!(w[0].end_us, w[1].start_us);
        }
    }

    #[test]
    fn figure5_intensities_ordered_as_the_paper_shows() {
        let s = MotionScript::figure5();
        let idle = s.intensity_at(3_000_000);
        let pickup = s.intensity_at(8_000_000);
        let hold = s.intensity_at(12_000_000);
        assert_eq!(idle, 0.0);
        assert_eq!(pickup, 1.0);
        assert!(hold > idle && hold < pickup);
    }

    #[test]
    fn typing_phase_has_keystroke_bursts() {
        let s = MotionScript::figure5();
        assert!(!s.keystrokes_us.is_empty());
        assert!(s
            .keystrokes_us
            .iter()
            .all(|&k| (19_000_000..29_000_000).contains(&k)));
        // During a burst, intensity jumps.
        let k = s.keystrokes_us[0];
        assert!(s.intensity_at(k + 1_000) > s.intensity_at(k - 1_000));
        // ~40 keystrokes over 10 s at 4/s.
        assert!((35..=45).contains(&s.keystrokes_us.len()));
    }

    #[test]
    fn labels_match_time() {
        let s = MotionScript::figure5();
        assert_eq!(s.label_at(0), "idle");
        assert_eq!(s.label_at(8_000_000), "pickup");
        assert_eq!(s.label_at(25_000_000), "typing");
        assert_eq!(s.label_at(44_000_000), "idle");
        assert_eq!(s.label_at(99_000_000), "idle"); // past the end
    }

    #[test]
    fn breathing_oscillates() {
        let s = MotionScript::breathing(60_000_000, 15.0);
        // 15 bpm → 4 s period; intensity differs between peak and trough.
        let peak = s.intensity_at(1_000_000); // sin(2π·0.25·1)= sin(π/2)=1
        let trough = s.intensity_at(3_000_000);
        assert!(peak > trough);
        assert!(s.phases.iter().all(|p| (0.0..=0.2).contains(&p.intensity)));
    }

    #[test]
    fn walk_by_windows() {
        let s = MotionScript::walk_by(10_000_000, 4_000_000, 6_000_000);
        assert_eq!(s.intensity_at(1_000_000), 0.0);
        assert!(s.intensity_at(5_000_000) > 0.5);
        assert_eq!(s.intensity_at(9_000_000), 0.0);
    }

    #[test]
    fn intensity_clamped() {
        let mut s = MotionScript::figure5();
        s.keystroke_boost = 5.0;
        let k = s.keystrokes_us[0];
        assert_eq!(s.intensity_at(k + 1), 1.0);
    }
}
