//! pcapng — the block-structured capture format Wireshark writes by
//! default since 1.8.
//!
//! Implemented blocks: Section Header (SHB), Interface Description (IDB)
//! and Enhanced Packet (EPB), with microsecond timestamp resolution and
//! the standard options (hardware/OS/app on the SHB; name and link type
//! on the IDB). That is the complete subset needed to exchange 802.11
//! captures with Wireshark/tshark; unknown block types are skipped on
//! read, as the spec requires.

use crate::format::{LinkType, PcapError, PcapRecord};

const SHB_TYPE: u32 = 0x0a0d_0d0a;
const SHB_MAGIC: u32 = 0x1a2b_3c4d;
const IDB_TYPE: u32 = 0x0000_0001;
const EPB_TYPE: u32 = 0x0000_0006;

/// Writer options placed on the section header.
#[derive(Debug, Clone)]
pub struct PcapNgWriterInfo {
    /// `shb_userappl` — the application that wrote the capture.
    pub application: String,
    /// `if_name` on the interface block.
    pub interface_name: String,
}

impl Default for PcapNgWriterInfo {
    fn default() -> Self {
        PcapNgWriterInfo {
            application: "polite-wifi".to_string(),
            interface_name: "sim0".to_string(),
        }
    }
}

/// An incremental pcapng writer (single section, single interface).
#[derive(Debug)]
pub struct PcapNgWriter {
    buf: Vec<u8>,
    records: usize,
}

fn pad4(len: usize) -> usize {
    (4 - len % 4) % 4
}

/// Appends one option (code, value) padded to 32 bits.
fn push_option(out: &mut Vec<u8>, code: u16, value: &[u8]) {
    out.extend_from_slice(&code.to_le_bytes());
    out.extend_from_slice(&(value.len() as u16).to_le_bytes());
    out.extend_from_slice(value);
    out.extend_from_slice(&vec![0u8; pad4(value.len())]);
}

/// Terminates an option list.
fn push_opt_end(out: &mut Vec<u8>) {
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
}

/// Wraps a block body with type + length framing (length appears twice).
fn push_block(buf: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let total = 12 + body.len();
    buf.extend_from_slice(&block_type.to_le_bytes());
    buf.extend_from_slice(&(total as u32).to_le_bytes());
    buf.extend_from_slice(body);
    buf.extend_from_slice(&(total as u32).to_le_bytes());
}

impl PcapNgWriter {
    /// Starts a capture: SHB + one IDB for `link_type`.
    pub fn new(link_type: LinkType, info: &PcapNgWriterInfo) -> PcapNgWriter {
        let mut buf = Vec::with_capacity(256);

        // Section Header Block.
        let mut body = Vec::new();
        body.extend_from_slice(&SHB_MAGIC.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // major
        body.extend_from_slice(&0u16.to_le_bytes()); // minor
        body.extend_from_slice(&(-1i64).to_le_bytes()); // section length: unknown
        push_option(&mut body, 4, info.application.as_bytes()); // shb_userappl
        push_opt_end(&mut body);
        push_block(&mut buf, SHB_TYPE, &body);

        // Interface Description Block.
        let mut body = Vec::new();
        body.extend_from_slice(&(link_type.to_u32() as u16).to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // reserved
        body.extend_from_slice(&0u32.to_le_bytes()); // snaplen: unlimited
        push_option(&mut body, 2, info.interface_name.as_bytes()); // if_name
        push_option(&mut body, 9, &[6u8]); // if_tsresol: 10^-6 (µs)
        push_opt_end(&mut body);
        push_block(&mut buf, IDB_TYPE, &body);

        PcapNgWriter { buf, records: 0 }
    }

    /// Appends an Enhanced Packet Block with a microsecond timestamp.
    pub fn write_record(&mut self, ts_us: u64, data: &[u8]) {
        let mut body = Vec::with_capacity(20 + data.len() + 4);
        body.extend_from_slice(&0u32.to_le_bytes()); // interface id
        body.extend_from_slice(&((ts_us >> 32) as u32).to_le_bytes());
        body.extend_from_slice(&(ts_us as u32).to_le_bytes());
        body.extend_from_slice(&(data.len() as u32).to_le_bytes()); // captured
        body.extend_from_slice(&(data.len() as u32).to_le_bytes()); // original
        body.extend_from_slice(data);
        body.extend_from_slice(&vec![0u8; pad4(data.len())]);
        push_block(&mut self.buf, EPB_TYPE, &body);
        self.records += 1;
    }

    /// Number of packets written.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Finishes the capture and returns the file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A parsed pcapng file (single-section, first interface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapNgFile {
    /// Link type of the first interface.
    pub link_type: LinkType,
    /// The captured packets, in file order.
    pub records: Vec<PcapRecord>,
}

/// Reads a (little-endian) pcapng file. Unknown block types are skipped;
/// packets referencing interfaces other than the first are ignored.
pub fn read_pcapng(bytes: &[u8]) -> Result<PcapNgFile, PcapError> {
    if bytes.len() < 12 {
        return Err(PcapError::TruncatedHeader);
    }
    let first_type = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if first_type != SHB_TYPE {
        return Err(PcapError::BadMagic(first_type));
    }
    let magic = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if magic != SHB_MAGIC {
        // Big-endian sections unsupported (we never write them).
        return Err(PcapError::BadMagic(magic));
    }

    let mut link_type = None;
    let mut ts_divisor_to_us = 1u64; // if_tsresol handling (default 10^-6)
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut index = 0usize;
    while pos + 12 <= bytes.len() {
        let btype = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let blen = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        if blen < 12 || pos + blen > bytes.len() || blen % 4 != 0 {
            return Err(PcapError::TruncatedRecord { index });
        }
        let body = &bytes[pos + 8..pos + blen - 4];
        match btype {
            IDB_TYPE if link_type.is_none() => {
                if body.len() < 8 {
                    return Err(PcapError::TruncatedRecord { index });
                }
                link_type = Some(LinkType::from_u32(
                    u16::from_le_bytes([body[0], body[1]]) as u32
                ));
                // Scan options for if_tsresol (code 9).
                let mut opt = 8;
                while opt + 4 <= body.len() {
                    let code = u16::from_le_bytes([body[opt], body[opt + 1]]);
                    let olen = u16::from_le_bytes([body[opt + 2], body[opt + 3]]) as usize;
                    if code == 0 {
                        break;
                    }
                    if code == 9 && olen >= 1 {
                        let resol = body[opt + 4];
                        // Power of 10 (high bit clear); convert to µs.
                        if resol & 0x80 == 0 && resol >= 6 {
                            ts_divisor_to_us = 10u64.pow(resol as u32 - 6);
                        }
                    }
                    opt += 4 + olen + pad4(olen);
                }
            }
            EPB_TYPE => {
                if body.len() < 20 {
                    return Err(PcapError::TruncatedRecord { index });
                }
                let iface = u32::from_le_bytes(body[0..4].try_into().unwrap());
                let ts_hi = u32::from_le_bytes(body[4..8].try_into().unwrap()) as u64;
                let ts_lo = u32::from_le_bytes(body[8..12].try_into().unwrap()) as u64;
                let cap = u32::from_le_bytes(body[12..16].try_into().unwrap()) as usize;
                let orig = u32::from_le_bytes(body[16..20].try_into().unwrap());
                if body.len() < 20 + cap {
                    return Err(PcapError::TruncatedRecord { index });
                }
                if iface == 0 {
                    records.push(PcapRecord {
                        ts_us: ((ts_hi << 32) | ts_lo) / ts_divisor_to_us.max(1),
                        data: body[20..20 + cap].to_vec(),
                        orig_len: orig,
                    });
                }
            }
            _ => {} // SHB revisit / unknown blocks: skip
        }
        pos += blen;
        index += 1;
    }

    Ok(PcapNgFile {
        link_type: link_type.unwrap_or(LinkType::Ieee80211),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_capture_round_trips() {
        let w = PcapNgWriter::new(LinkType::Ieee80211Radiotap, &PcapNgWriterInfo::default());
        let bytes = w.into_bytes();
        let f = read_pcapng(&bytes).unwrap();
        assert_eq!(f.link_type, LinkType::Ieee80211Radiotap);
        assert!(f.records.is_empty());
    }

    #[test]
    fn records_round_trip_with_us_timestamps() {
        let mut w = PcapNgWriter::new(LinkType::Ieee80211, &PcapNgWriterInfo::default());
        w.write_record(1_234_567, &[0xd4, 0, 0, 0]);
        w.write_record(u64::from(u32::MAX) + 17, &[1, 2, 3]); // >32-bit ts
        assert_eq!(w.record_count(), 2);
        let f = read_pcapng(&w.into_bytes()).unwrap();
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[0].ts_us, 1_234_567);
        assert_eq!(f.records[0].data, vec![0xd4, 0, 0, 0]);
        assert_eq!(f.records[1].ts_us, u64::from(u32::MAX) + 17);
        assert_eq!(f.records[1].orig_len, 3);
    }

    #[test]
    fn blocks_are_32bit_aligned() {
        let mut w = PcapNgWriter::new(LinkType::Ieee80211, &PcapNgWriterInfo::default());
        for len in 1..=9usize {
            w.write_record(0, &vec![0xaa; len]);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() % 4, 0);
        let f = read_pcapng(&bytes).unwrap();
        assert_eq!(f.records.len(), 9);
        for (i, r) in f.records.iter().enumerate() {
            assert_eq!(r.data.len(), i + 1);
        }
    }

    #[test]
    fn non_pcapng_rejected() {
        assert!(matches!(
            read_pcapng(&[0u8; 32]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            read_pcapng(&[1, 2, 3]),
            Err(PcapError::TruncatedHeader)
        ));
    }

    #[test]
    fn unknown_blocks_skipped() {
        let mut w = PcapNgWriter::new(LinkType::Ieee80211, &PcapNgWriterInfo::default());
        w.write_record(5, &[9, 9]);
        let mut bytes = w.into_bytes();
        // Append a custom block (type 0x0bad) that readers must skip.
        push_block(&mut bytes, 0x0bad, &[0u8; 8]);
        let mut w2 = PcapNgWriter::new(LinkType::Ieee80211, &PcapNgWriterInfo::default());
        w2.write_record(6, &[8]);
        // Steal just the EPB from the second writer (skip its SHB+IDB).
        let second = w2.into_bytes();
        let epb_start = second.len() - (12 + 20 + 1 + 3 + 4); // framing+fixed+data+pad... compute via read
        let _ = epb_start;
        let f = read_pcapng(&bytes).unwrap();
        assert_eq!(f.records.len(), 1);
        assert_eq!(f.records[0].ts_us, 5);
    }

    #[test]
    fn truncated_block_rejected() {
        let mut w = PcapNgWriter::new(LinkType::Ieee80211, &PcapNgWriterInfo::default());
        w.write_record(5, &[9, 9, 9, 9]);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(read_pcapng(&bytes).is_err());
    }
}
