//! The 16-bit Frame Control field.

use crate::error::FrameError;
use serde::{Deserialize, Serialize};

/// The 2-bit frame type from the Frame Control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Management frames (beacons, deauthentication, probes, ...). These can
    /// be protected by 802.11w.
    Management,
    /// Control frames (RTS/CTS/ACK/...). These *cannot* be encrypted — every
    /// nearby device must be able to decode them, which is why the paper
    /// argues Polite WiFi is fundamentally unpreventable.
    Control,
    /// Data frames, including the null-function frames the paper injects.
    Data,
    /// 802.11ad/ah extension frames (modelled but not elaborated).
    Extension,
}

impl FrameType {
    /// Decodes the raw 2-bit type field.
    pub fn from_bits(bits: u8) -> FrameType {
        match bits & 0b11 {
            0 => FrameType::Management,
            1 => FrameType::Control,
            2 => FrameType::Data,
            _ => FrameType::Extension,
        }
    }

    /// Encodes to the raw 2-bit type field.
    pub fn bits(self) -> u8 {
        match self {
            FrameType::Management => 0,
            FrameType::Control => 1,
            FrameType::Data => 2,
            FrameType::Extension => 3,
        }
    }
}

/// Management frame subtypes (type = 0).
pub mod mgmt_subtype {
    pub const ASSOC_REQ: u8 = 0;
    pub const ASSOC_RESP: u8 = 1;
    pub const REASSOC_REQ: u8 = 2;
    pub const REASSOC_RESP: u8 = 3;
    pub const PROBE_REQ: u8 = 4;
    pub const PROBE_RESP: u8 = 5;
    pub const BEACON: u8 = 8;
    pub const ATIM: u8 = 9;
    pub const DISASSOC: u8 = 10;
    pub const AUTH: u8 = 11;
    pub const DEAUTH: u8 = 12;
    pub const ACTION: u8 = 13;
}

/// Control frame subtypes (type = 1).
pub mod ctrl_subtype {
    pub const BLOCK_ACK_REQ: u8 = 8;
    pub const BLOCK_ACK: u8 = 9;
    pub const PS_POLL: u8 = 10;
    pub const RTS: u8 = 11;
    pub const CTS: u8 = 12;
    pub const ACK: u8 = 13;
    pub const CF_END: u8 = 14;
}

/// Data frame subtypes (type = 2).
pub mod data_subtype {
    pub const DATA: u8 = 0;
    /// "Null function (No data)" — the fake frame used throughout the paper.
    pub const NULL: u8 = 4;
    pub const QOS_DATA: u8 = 8;
    pub const QOS_NULL: u8 = 12;
}

/// The decoded Frame Control field: protocol version, type/subtype and the
/// eight flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameControl {
    /// 2-bit protocol version; always 0 on the air today.
    pub version: u8,
    /// Frame type.
    pub ftype: FrameType,
    /// 4-bit subtype (see the `*_subtype` modules).
    pub subtype: u8,
    /// Frame is headed to the distribution system (to an AP).
    pub to_ds: bool,
    /// Frame exits the distribution system (from an AP).
    pub from_ds: bool,
    /// More fragments follow.
    pub more_frag: bool,
    /// This is a retransmission.
    pub retry: bool,
    /// Sender will enter power-save after this exchange; flipped by
    /// battery-powered victims and observed by the drain attack.
    pub power_mgmt: bool,
    /// AP buffers more frames for a dozing station.
    pub more_data: bool,
    /// Frame body is encrypted. The paper's fake frames leave this clear —
    /// and the victim ACKs anyway.
    pub protected: bool,
    /// Order/+HTC bit.
    pub order: bool,
}

impl FrameControl {
    /// A Frame Control with all flags clear.
    pub fn new(ftype: FrameType, subtype: u8) -> FrameControl {
        FrameControl {
            version: 0,
            ftype,
            subtype: subtype & 0x0f,
            to_ds: false,
            from_ds: false,
            more_frag: false,
            retry: false,
            power_mgmt: false,
            more_data: false,
            protected: false,
            order: false,
        }
    }

    /// Decodes from the two on-air bytes (transmitted least significant
    /// byte first).
    pub fn parse(buf: &[u8]) -> Result<FrameControl, FrameError> {
        if buf.len() < 2 {
            return Err(FrameError::Truncated {
                context: "frame control",
                needed: 2,
                available: buf.len(),
            });
        }
        let b0 = buf[0];
        let b1 = buf[1];
        let version = b0 & 0b11;
        if version != 0 {
            return Err(FrameError::BadProtocolVersion(version));
        }
        Ok(FrameControl {
            version,
            ftype: FrameType::from_bits((b0 >> 2) & 0b11),
            subtype: (b0 >> 4) & 0x0f,
            to_ds: b1 & 0x01 != 0,
            from_ds: b1 & 0x02 != 0,
            more_frag: b1 & 0x04 != 0,
            retry: b1 & 0x08 != 0,
            power_mgmt: b1 & 0x10 != 0,
            more_data: b1 & 0x20 != 0,
            protected: b1 & 0x40 != 0,
            order: b1 & 0x80 != 0,
        })
    }

    /// Encodes to the two on-air bytes.
    pub fn encode(&self) -> [u8; 2] {
        let b0 = (self.version & 0b11) | (self.ftype.bits() << 2) | (self.subtype << 4);
        let mut b1 = 0u8;
        if self.to_ds {
            b1 |= 0x01;
        }
        if self.from_ds {
            b1 |= 0x02;
        }
        if self.more_frag {
            b1 |= 0x04;
        }
        if self.retry {
            b1 |= 0x08;
        }
        if self.power_mgmt {
            b1 |= 0x10;
        }
        if self.more_data {
            b1 |= 0x20;
        }
        if self.protected {
            b1 |= 0x40;
        }
        if self.order {
            b1 |= 0x80;
        }
        [b0, b1]
    }

    /// True for null-function and QoS-null data frames — the payload-free
    /// "fake frames" the paper's attacker injects.
    pub fn is_null_data(&self) -> bool {
        self.ftype == FrameType::Data
            && (self.subtype == data_subtype::NULL || self.subtype == data_subtype::QOS_NULL)
    }

    /// Builder-style setter for the retry flag.
    pub fn with_retry(mut self, retry: bool) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style setter for the power-management flag.
    pub fn with_power_mgmt(mut self, pm: bool) -> Self {
        self.power_mgmt = pm;
        self
    }

    /// Builder-style setter for the protected flag.
    pub fn with_protected(mut self, protected: bool) -> Self {
        self.protected = protected;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_frame_control_encodes_to_d4() {
        // An ACK is type=control(01), subtype=1101, no flags:
        // b0 = 00 | 01<<2 | 1101<<4 = 0xd4. The classic Wireshark byte.
        let fc = FrameControl::new(FrameType::Control, ctrl_subtype::ACK);
        assert_eq!(fc.encode(), [0xd4, 0x00]);
    }

    #[test]
    fn null_data_frame_control_encodes_to_48() {
        let fc = FrameControl::new(FrameType::Data, data_subtype::NULL);
        assert_eq!(fc.encode(), [0x48, 0x00]);
        assert!(fc.is_null_data());
    }

    #[test]
    fn beacon_frame_control_encodes_to_80() {
        let fc = FrameControl::new(FrameType::Management, mgmt_subtype::BEACON);
        assert_eq!(fc.encode(), [0x80, 0x00]);
    }

    #[test]
    fn rts_frame_control_encodes_to_b4() {
        let fc = FrameControl::new(FrameType::Control, ctrl_subtype::RTS);
        assert_eq!(fc.encode(), [0xb4, 0x00]);
    }

    #[test]
    fn all_flags_round_trip() {
        for bits in 0u16..256 {
            let raw = [0x48u8, bits as u8];
            let fc = FrameControl::parse(&raw).unwrap();
            assert_eq!(fc.encode(), raw);
        }
    }

    #[test]
    fn every_type_subtype_round_trips() {
        for b0 in (0u8..=255).step_by(4) {
            // version bits fixed at 0 by stepping in 4s
            let fc = FrameControl::parse(&[b0, 0]).unwrap();
            assert_eq!(fc.encode()[0], b0);
        }
    }

    #[test]
    fn nonzero_version_rejected() {
        assert!(matches!(
            FrameControl::parse(&[0x01, 0x00]),
            Err(FrameError::BadProtocolVersion(1))
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(FrameControl::parse(&[0x48]).is_err());
    }

    #[test]
    fn qos_null_is_null_data() {
        let fc = FrameControl::new(FrameType::Data, data_subtype::QOS_NULL);
        assert!(fc.is_null_data());
        let fc = FrameControl::new(FrameType::Data, data_subtype::QOS_DATA);
        assert!(!fc.is_null_data());
    }
}
