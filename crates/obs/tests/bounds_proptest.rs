//! Property tests for the bounded observability stores.
//!
//! `RingLog` wraparound and `SpanLog` overflow carry an accounting
//! contract the envelope's `events_evicted` / `spans_dropped` fields
//! rest on: capacity is never exceeded, every record past the bound is
//! counted exactly once (`stored + dropped == recorded`), and splitting
//! a record stream across trial logs never changes the totals a merge
//! reports — the worker-invariance property in miniature.

use polite_wifi_obs::{RingLog, SpanLog, SpanRecord};
use proptest::prelude::*;

fn span(name: u8, start_us: u64) -> SpanRecord {
    SpanRecord {
        name: format!("span.{name}"),
        track: u64::from(name) % 4,
        group: 0,
        start_us,
        dur_us: 5,
    }
}

proptest! {
    #[test]
    fn ring_capacity_never_exceeded_and_evictions_exact(
        capacity in 0usize..32,
        stamps in proptest::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut ring = RingLog::new(capacity);
        for &ts in &stamps {
            ring.record(ts, 0, "tick");
        }
        prop_assert!(ring.len() <= capacity);
        prop_assert_eq!(ring.len() as u64 + ring.evicted, stamps.len() as u64);
        // The ring keeps exactly the most recent `len()` records, in order.
        let kept: Vec<u64> = ring.events().map(|e| e.ts_us).collect();
        let tail: Vec<u64> = stamps[stamps.len() - kept.len()..].to_vec();
        prop_assert_eq!(kept, tail);
    }

    #[test]
    fn span_log_overflow_is_counted_exactly(
        max_spans in 0usize..32,
        names in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut log = SpanLog::new(max_spans);
        for (i, &n) in names.iter().enumerate() {
            log.push(span(n, i as u64));
        }
        prop_assert!(log.len() <= max_spans);
        prop_assert_eq!(log.len() as u64 + log.dropped, names.len() as u64);
        // Overflow drops the newest records; the stored prefix is exact.
        for (i, s) in log.spans().iter().enumerate() {
            prop_assert_eq!(s.start_us, i as u64);
        }
    }

    #[test]
    fn span_absorb_totals_are_split_invariant(
        names in proptest::collection::vec(any::<u8>(), 0..120),
        split in 0usize..121,
        max_spans in 0usize..48,
    ) {
        let split = split.min(names.len());
        // One trial recording everything vs. the same stream split
        // across two trials: the merged stored+dropped totals agree.
        let mut whole = SpanLog::new(max_spans);
        for (i, &n) in names.iter().enumerate() {
            whole.push(span(n, i as u64));
        }

        let mut t0 = SpanLog::new(max_spans);
        for (i, &n) in names[..split].iter().enumerate() {
            t0.push(span(n, i as u64));
        }
        let mut t1 = SpanLog::new(max_spans);
        for (i, &n) in names[split..].iter().enumerate() {
            t1.push(span(n, (split + i) as u64));
        }
        let mut merged = SpanLog::new(max_spans);
        merged.absorb(&t0, 0);
        merged.absorb(&t1, 1);

        prop_assert!(merged.len() <= max_spans);
        prop_assert_eq!(
            merged.len() as u64 + merged.dropped,
            whole.len() as u64 + whole.dropped
        );
    }

    #[test]
    fn ring_merge_totals_are_split_invariant(
        stamps in proptest::collection::vec(0u64..10_000, 0..120),
        split in 0usize..121,
        capacity in 0usize..48,
    ) {
        let split = split.min(stamps.len());
        // Absorb-style merge (the Obs::absorb loop): replay the second
        // ring into the first and add its eviction count.
        let mut merged = RingLog::new(capacity);
        for &ts in &stamps[..split] {
            merged.record(ts, 0, "tick");
        }
        let mut t1 = RingLog::new(capacity);
        for &ts in &stamps[split..] {
            t1.record(ts, 0, "tick");
        }
        let t1_events: Vec<_> = t1.events().cloned().collect();
        for e in &t1_events {
            merged.record(e.ts_us, e.track, &e.label);
        }
        merged.evicted += t1.evicted;

        prop_assert!(merged.len() <= capacity);
        prop_assert_eq!(
            merged.len() as u64 + merged.evicted,
            stamps.len() as u64
        );
    }
}
