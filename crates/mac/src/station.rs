//! The station state machine and its Polite-WiFi receive path.

use crate::actions::{DiscardReason, MacAction, RadioState};
use crate::behavior::Behavior;
use crate::dedup::DedupCache;
use crate::fragment::Reassembler;
use polite_wifi_frame::seq::SequenceCounter;
use polite_wifi_frame::{
    builder, ControlFrame, Frame, MacAddr, ManagementBody, ReasonCode, SequenceControl,
};
use polite_wifi_phy::airtime;
use polite_wifi_phy::band::Band;
use polite_wifi_phy::rate::BitRate;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Whether a station is a client or an access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// A client device (tablet, phone, IoT module, laptop).
    Client,
    /// An access point.
    AccessPoint,
}

/// A client's progress through the 802.11 join sequence
/// (authentication → association). The security handshake (4-way) is
/// abstracted into the final `Joined` state — Polite WiFi is orthogonal
/// to it, which is rather the point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinState {
    /// Not joining anything.
    Idle,
    /// Open-system authentication request sent.
    Authenticating {
        /// The AP being joined.
        ap: MacAddr,
    },
    /// Association request sent.
    Associating {
        /// The AP being joined.
        ap: MacAddr,
    },
    /// Fully joined.
    Joined {
        /// The AP joined.
        ap: MacAddr,
        /// Association id assigned by the AP.
        aid: u16,
    },
}

/// Static configuration of a station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationConfig {
    /// The station's MAC address.
    pub mac: MacAddr,
    /// Client or AP.
    pub role: Role,
    /// Operating band (sets SIFS).
    pub band: Band,
    /// Channel number within the band.
    pub channel: u8,
    /// Behavioural quirks.
    pub behavior: Behavior,
    /// SSID (APs beacon it; clients remember the network they joined).
    pub ssid: String,
    /// Beacon interval for APs, in microseconds. `None` disables beacons.
    pub beacon_interval_us: Option<u64>,
}

impl StationConfig {
    /// A client on 2.4 GHz channel 6 with default behaviour.
    pub fn client(mac: MacAddr) -> StationConfig {
        StationConfig {
            mac,
            role: Role::Client,
            band: Band::Ghz2,
            channel: 6,
            behavior: Behavior::client(),
            ssid: String::new(),
            beacon_interval_us: None,
        }
    }

    /// An AP on 2.4 GHz channel 6, beaconing every 100 TU.
    pub fn access_point(mac: MacAddr, ssid: &str) -> StationConfig {
        StationConfig {
            mac,
            role: Role::AccessPoint,
            band: Band::Ghz2,
            channel: 6,
            behavior: Behavior::quiet_ap(),
            ssid: ssid.to_string(),
            beacon_interval_us: Some(102_400),
        }
    }
}

/// Counters exposed for the experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationStats {
    /// ACKs transmitted (the paper's headline measurement).
    pub acks_sent: u64,
    /// CTS responses transmitted.
    pub cts_sent: u64,
    /// Frames dropped at the PHY for bad FCS.
    pub fcs_failures: u64,
    /// Frames ignored because they were addressed elsewhere.
    pub not_for_us: u64,
    /// Frames the higher layers discarded *after* the ACK went out.
    pub discarded_after_ack: u64,
    /// Deauthentication frames queued.
    pub deauths_sent: u64,
    /// Frames delivered to the higher layer.
    pub delivered: u64,
    /// Duplicates suppressed.
    pub duplicates: u64,
    /// Beacons transmitted.
    pub beacons_sent: u64,
    /// Data frames dropped for falling behind the Block-Ack window floor.
    pub ba_stale_dropped: u64,
}

/// An 802.11 station (client or AP) as an event-driven state machine.
///
/// Drive it with [`Station::on_receive`] for every frame the radio hears
/// and [`Station::poll`] for timer work; both return the [`MacAction`]s
/// the surrounding radio should carry out.
#[derive(Debug, Clone)]
pub struct Station {
    cfg: StationConfig,
    seq: SequenceCounter,
    dedup: DedupCache,
    reassembler: Reassembler,
    /// Peers this station trusts (association + keys).
    associated: HashSet<MacAddr>,
    /// Client-side join progress.
    join_state: JoinState,
    /// AP-side: stations that completed open-system authentication.
    authenticated: HashSet<MacAddr>,
    /// AP-side: association ids, per station.
    aid_of: HashMap<MacAddr, u16>,
    /// AP-side: next association id to hand out.
    next_aid: u16,
    /// AP-side: stations currently in power-save mode (told us via the
    /// PM bit).
    ps_mode: HashSet<MacAddr>,
    /// AP-side: frames buffered for dozing stations, per station.
    ps_buffer: HashMap<MacAddr, Vec<(Frame, BitRate)>>,
    /// Administrator blocklist (the one that cannot stop ACKs).
    blocklist: HashSet<MacAddr>,
    /// Last deauth-burst time per offender, for cooldown.
    last_deauth: HashMap<MacAddr, u64>,
    /// Per-transmitter Block-Ack reordering window floor (WinStart, in
    /// sequence numbers). Slid forward by BlockAckReq — including forged
    /// ones, the Bl0ck paralysis primitive (arXiv 2302.05899).
    ba_window: HashMap<MacAddr, u16>,
    /// Power-save: is the radio up?
    awake: bool,
    /// Power-save: whether the AP has already been told we are dozing
    /// (the PM=1 null goes out once per active→doze transition, not on
    /// every beacon-window doze).
    ps_announced: bool,
    /// Last time traffic touched this station (for the doze timer).
    last_activity_us: u64,
    /// Power-save: the radio stays up at least until this time after a
    /// scheduled beacon wake (TBTT), even with no unicast traffic.
    beacon_window_until_us: u64,
    /// Power-save: next target beacon transmission time to wake for.
    next_tbtt_us: u64,
    /// Next beacon time for APs.
    next_beacon_us: u64,
    /// Counters.
    pub stats: StationStats,
}

impl Station {
    /// Builds a station. Power-save stations start awake at t = 0; APs
    /// beacon immediately.
    pub fn new(cfg: StationConfig) -> Station {
        let next_tbtt_us = cfg
            .behavior
            .power_save
            .map(|ps| ps.beacon_interval_us)
            .unwrap_or(0);
        Station {
            cfg,
            seq: SequenceCounter::new(),
            dedup: DedupCache::default(),
            reassembler: Reassembler::new(),
            associated: HashSet::new(),
            join_state: JoinState::Idle,
            authenticated: HashSet::new(),
            aid_of: HashMap::new(),
            next_aid: 1,
            ps_mode: HashSet::new(),
            ps_buffer: HashMap::new(),
            blocklist: HashSet::new(),
            last_deauth: HashMap::new(),
            ba_window: HashMap::new(),
            awake: true,
            ps_announced: false,
            last_activity_us: 0,
            beacon_window_until_us: 0,
            next_tbtt_us,
            next_beacon_us: 0,
            stats: StationStats::default(),
        }
    }

    /// The station's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// The static configuration.
    pub fn config(&self) -> &StationConfig {
        &self.cfg
    }

    /// Whether the radio is currently awake.
    pub fn is_awake(&self) -> bool {
        self.awake
    }

    /// Sequence numbers remembered by the duplicate-detection cache.
    /// Only FCS-valid data frames may populate it.
    pub fn dedup_entries(&self) -> usize {
        self.dedup.len()
    }

    /// Partial payloads held by the fragment reassembler. Only FCS-valid
    /// fragments may populate it.
    pub fn fragments_pending(&self) -> usize {
        self.reassembler.pending()
    }

    /// Marks `peer` as associated/trusted directly, skipping the on-air
    /// handshake (test/bootstrap shortcut; [`Station::start_join`] runs
    /// the real sequence).
    pub fn associate(&mut self, peer: MacAddr) {
        self.associated.insert(peer);
        if self.cfg.role == Role::Client && self.join_state == JoinState::Idle {
            self.join_state = JoinState::Joined { ap: peer, aid: 0 };
        }
    }

    /// Client-side join progress.
    pub fn join_state(&self) -> JoinState {
        self.join_state
    }

    /// AP-side: the association id assigned to `sta`, if associated.
    pub fn aid_of(&self, sta: MacAddr) -> Option<u16> {
        self.aid_of.get(&sta).copied()
    }

    /// True when `peer` is in the associated/trusted set.
    pub fn is_associated_with(&self, peer: MacAddr) -> bool {
        self.associated.contains(&peer)
    }

    /// Begins the 802.11 join sequence with `ap`: open-system
    /// authentication, then association. Returns the actions (the
    /// authentication frame to transmit).
    pub fn start_join(&mut self, ap: MacAddr) -> Vec<MacAction> {
        assert_eq!(self.cfg.role, Role::Client, "APs do not join");
        self.join_state = JoinState::Authenticating { ap };
        let frame = Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
            ap,
            self.cfg.mac,
            ap,
            self.seq.take(),
            ManagementBody::Authentication {
                algorithm: 0, // open system
                transaction: 1,
                status: 0,
            },
        ));
        vec![MacAction::Enqueue {
            frame,
            rate: BitRate::Mbps1,
        }]
    }

    /// Adds `addr` to the administrator blocklist — the countermeasure the
    /// paper shows is futile against Polite WiFi.
    pub fn block_mac(&mut self, addr: MacAddr) {
        self.blocklist.insert(addr);
    }

    /// True if `addr` is blocklisted.
    pub fn is_blocked(&self, addr: MacAddr) -> bool {
        self.blocklist.contains(&addr)
    }

    /// Handles one frame heard by the radio.
    ///
    /// * `now_us` — time the frame *ended* on the air;
    /// * `fcs_ok` — result of the PHY's FCS check;
    /// * `rate` — rate the frame was received at (sets the response rate).
    pub fn on_receive(
        &mut self,
        now_us: u64,
        frame: &Frame,
        fcs_ok: bool,
        rate: BitRate,
    ) -> Vec<MacAction> {
        let mut actions = Vec::new();

        // PHY: frames failing FCS never reach the MAC and get no response.
        if !fcs_ok {
            self.stats.fcs_failures += 1;
            actions.push(MacAction::Discard {
                reason: DiscardReason::FcsFailed,
            });
            return actions;
        }

        let ra = match frame.receiver() {
            Some(ra) => ra,
            None => return actions,
        };

        // Receiving anything addressed to us counts as activity and keeps
        // a power-save radio awake — the lever of the drain attack.
        let for_us = ra == self.cfg.mac;
        if for_us {
            self.touch(now_us, &mut actions);
        }

        if !for_us && !ra.is_multicast() {
            self.stats.not_for_us += 1;
            actions.push(MacAction::Discard {
                reason: DiscardReason::NotForUs,
            });
            return actions;
        }

        // ===== The Polite WiFi moment =====
        // Responses are generated *here*, before any validation, because
        // SIFS expires long before decryption could finish.
        let sifs = self.cfg.band.sifs_us();
        if for_us {
            match frame {
                Frame::Ctrl(ControlFrame::Rts {
                    duration_us, ta, ..
                }) if self.cfg.behavior.cts_to_stranger_rts => {
                    let cts_dur = airtime::cts_duration_us(rate, false);
                    let remaining = duration_us.saturating_sub(sifs as u16 + cts_dur as u16);
                    actions.push(MacAction::Respond {
                        frame: builder::cts(*ta, remaining),
                        delay_us: sifs,
                        rate: rate.response_rate(),
                    });
                    self.stats.cts_sent += 1;
                }
                _ if frame.solicits_ack() => {
                    let to = frame
                        .transmitter()
                        .expect("ack-soliciting frames carry a TA");
                    // Ablation: a hypothetical validating MAC delays the
                    // ACK by its decode time. Real hardware always uses
                    // SIFS — it has no other choice.
                    let delay_us = match self.cfg.behavior.validate_first_us {
                        Some(decode_us) => decode_us.max(sifs),
                        None => sifs,
                    };
                    actions.push(MacAction::Respond {
                        frame: builder::ack(to),
                        delay_us,
                        rate: rate.response_rate(),
                    });
                    self.stats.acks_sent += 1;
                }
                _ => {}
            }
        }

        // ===== Higher layers (too late to recall the ACK) =====
        self.higher_layers(now_us, frame, for_us, &mut actions);
        actions
    }

    /// Everything above the low MAC: dedup, association and key checks,
    /// PMF, blocklists, and the Figure-3 deauth reflex.
    fn higher_layers(
        &mut self,
        now_us: u64,
        frame: &Frame,
        for_us: bool,
        actions: &mut Vec<MacAction>,
    ) {
        match frame {
            Frame::Data(d) => {
                if !for_us {
                    return;
                }
                if self.dedup.check_and_update(d.addr2, d.seq, d.fc.retry) {
                    self.stats.duplicates += 1;
                    actions.push(MacAction::Discard {
                        reason: DiscardReason::Duplicate,
                    });
                    return;
                }
                // Block-Ack reordering: anything older than the window
                // floor is stale. The ACK already left — this is where the
                // Bl0ck paralysis bites, one layer above it.
                if let Some(&floor) = self.ba_window.get(&d.addr2) {
                    let behind = floor.wrapping_sub(d.seq.sequence) & 0x0fff;
                    if behind != 0 && behind < 2048 {
                        self.stats.ba_stale_dropped += 1;
                        actions.push(MacAction::Discard {
                            reason: DiscardReason::BlockAckWindowStale,
                        });
                        return;
                    }
                }
                let sender_known = self.associated.contains(&d.addr2);
                // The PM bit in any data frame updates the sender's
                // power-save mode at its AP.
                if sender_known && self.cfg.role == Role::AccessPoint {
                    if d.fc.power_mgmt {
                        self.ps_mode.insert(d.addr2);
                    } else {
                        self.ps_mode.remove(&d.addr2);
                        // The station is awake: flush anything buffered.
                        if let Some(buffered) = self.ps_buffer.remove(&d.addr2) {
                            for (frame, rate) in buffered {
                                actions.push(MacAction::Enqueue { frame, rate });
                            }
                        }
                    }
                }
                if !sender_known {
                    let reason = if self.cfg.behavior.use_blocklist && self.is_blocked(d.addr2) {
                        DiscardReason::Blocklisted
                    } else {
                        DiscardReason::NotAssociated
                    };
                    self.stats.discarded_after_ack += 1;
                    actions.push(MacAction::Discard { reason });
                    self.maybe_deauth(now_us, d.addr2, actions);
                    return;
                }
                if d.fc.protected || d.is_null() {
                    if d.fc.more_frag || d.seq.fragment > 0 {
                        // A fragment: reassemble before delivery. Every
                        // fragment was already ACKed above — fragmenting
                        // an MSDU hands the attacker *more* responses.
                        self.reassembler.evict_stale(now_us);
                        if let Some(payload) = self.reassembler.push(now_us, d) {
                            let mut full = d.clone();
                            full.body = polite_wifi_frame::data::DataBody::Payload(payload);
                            full.fc.more_frag = false;
                            full.seq = SequenceControl::new(d.seq.sequence, 0);
                            self.stats.delivered += 1;
                            actions.push(MacAction::Deliver(Frame::Data(full)));
                        }
                    } else {
                        self.stats.delivered += 1;
                        actions.push(MacAction::Deliver(frame.clone()));
                    }
                } else {
                    // Plaintext data on a WPA2 link fails decryption.
                    self.stats.discarded_after_ack += 1;
                    actions.push(MacAction::Discard {
                        reason: DiscardReason::DecryptFailed,
                    });
                }
            }
            Frame::Mgmt(m) => {
                match &m.body {
                    ManagementBody::Deauthentication { .. }
                    | ManagementBody::Disassociation { .. } => {
                        if !for_us {
                            return;
                        }
                        if self.cfg.behavior.pmf && !m.fc.protected {
                            // 802.11w rejects the spoofed deauth — but the
                            // ACK for it already left the antenna.
                            self.stats.discarded_after_ack += 1;
                            actions.push(MacAction::Discard {
                                reason: DiscardReason::PmfViolation,
                            });
                        } else {
                            self.associated.remove(&m.ta);
                            self.aid_of.remove(&m.ta);
                            self.authenticated.remove(&m.ta);
                            // A client kicked by its AP falls out of the
                            // joined state — the classic deauth attack.
                            match self.join_state {
                                JoinState::Joined { ap, .. }
                                | JoinState::Associating { ap }
                                | JoinState::Authenticating { ap }
                                    if ap == m.ta =>
                                {
                                    self.join_state = JoinState::Idle;
                                }
                                _ => {}
                            }
                            self.stats.delivered += 1;
                            actions.push(MacAction::Deliver(frame.clone()));
                        }
                    }
                    ManagementBody::Beacon { elements, .. } => {
                        // Broadcast. A power-save station that hears a
                        // beacon extends its wake window slightly, but a
                        // beacon is NOT unicast activity — it must not
                        // reset the doze timer, or the station would never
                        // sleep on a beaconing network.
                        if let Some(ps) = self.cfg.behavior.power_save {
                            self.beacon_window_until_us =
                                self.beacon_window_until_us.max(now_us + ps.beacon_rx_us);
                        }
                        // A dozing client checks its own AID in the TIM
                        // and polls the AP for buffered traffic.
                        if let JoinState::Joined { ap, aid } = self.join_state {
                            if ap == m.ta && aid > 0 && tim_bit_set(elements, aid) {
                                actions.push(MacAction::Enqueue {
                                    frame: Frame::Ctrl(polite_wifi_frame::ControlFrame::PsPoll {
                                        aid,
                                        bssid: ap,
                                        ta: self.cfg.mac,
                                    }),
                                    rate: BitRate::Mbps1,
                                });
                            }
                        }
                        self.stats.delivered += 1;
                        actions.push(MacAction::Deliver(frame.clone()));
                    }
                    ManagementBody::ProbeRequest { .. } => {
                        if self.cfg.role == Role::AccessPoint {
                            let resp = Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
                                m.ta,
                                self.cfg.mac,
                                self.cfg.mac,
                                self.seq.take(),
                                ManagementBody::ProbeResponse {
                                    timestamp: now_us,
                                    interval_tu: 100,
                                    capabilities: 0x0411,
                                    elements: vec![
                                        polite_wifi_frame::ie::InformationElement::ssid(
                                            &self.cfg.ssid,
                                        ),
                                    ],
                                },
                            ));
                            actions.push(MacAction::Enqueue {
                                frame: resp,
                                rate: BitRate::Mbps1,
                            });
                        }
                    }
                    ManagementBody::Authentication {
                        transaction,
                        status,
                        ..
                    } => {
                        if !for_us {
                            return;
                        }
                        match (self.cfg.role, transaction) {
                            (Role::AccessPoint, 1) => {
                                // Open-system: accept and answer.
                                self.authenticated.insert(m.ta);
                                let resp = Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
                                    m.ta,
                                    self.cfg.mac,
                                    self.cfg.mac,
                                    self.seq.take(),
                                    ManagementBody::Authentication {
                                        algorithm: 0,
                                        transaction: 2,
                                        status: 0,
                                    },
                                ));
                                actions.push(MacAction::Enqueue {
                                    frame: resp,
                                    rate: BitRate::Mbps1,
                                });
                            }
                            (Role::Client, 2) => {
                                if let JoinState::Authenticating { ap } = self.join_state {
                                    if ap == m.ta && *status == 0 {
                                        self.join_state = JoinState::Associating { ap };
                                        let req =
                                            Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
                                                ap,
                                                self.cfg.mac,
                                                ap,
                                                self.seq.take(),
                                                ManagementBody::AssociationRequest {
                                                    capabilities: 0x0431,
                                                    listen_interval: 10,
                                                    elements: vec![
                                                        polite_wifi_frame::ie::InformationElement::ssid(
                                                            &self.cfg.ssid,
                                                        ),
                                                    ],
                                                },
                                            ));
                                        actions.push(MacAction::Enqueue {
                                            frame: req,
                                            rate: BitRate::Mbps1,
                                        });
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    ManagementBody::AssociationRequest { .. } => {
                        if !for_us || self.cfg.role != Role::AccessPoint {
                            return;
                        }
                        let (status, aid) = if self.authenticated.contains(&m.ta) {
                            let aid = *self.aid_of.entry(m.ta).or_insert_with(|| {
                                let a = self.next_aid;
                                self.next_aid += 1;
                                a
                            });
                            self.associated.insert(m.ta);
                            (0u16, aid)
                        } else {
                            // Class-2 violation: associating before
                            // authenticating.
                            (1u16, 0)
                        };
                        let resp = Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
                            m.ta,
                            self.cfg.mac,
                            self.cfg.mac,
                            self.seq.take(),
                            ManagementBody::AssociationResponse {
                                capabilities: 0x0431,
                                status,
                                aid,
                                elements: vec![],
                            },
                        ));
                        actions.push(MacAction::Enqueue {
                            frame: resp,
                            rate: BitRate::Mbps1,
                        });
                    }
                    ManagementBody::AssociationResponse { status, aid, .. } => {
                        if !for_us || self.cfg.role != Role::Client {
                            return;
                        }
                        if let JoinState::Associating { ap } = self.join_state {
                            if ap == m.ta && *status == 0 {
                                self.join_state = JoinState::Joined { ap, aid: *aid };
                                self.associated.insert(ap);
                                self.stats.delivered += 1;
                                actions.push(MacAction::Deliver(frame.clone()));
                            }
                        }
                    }
                    _ => {
                        if for_us {
                            self.stats.delivered += 1;
                            actions.push(MacAction::Deliver(frame.clone()));
                        }
                    }
                }
            }
            Frame::Ctrl(ControlFrame::PsPoll { bssid, ta, .. }) => {
                // A dozing station polling its AP for buffered traffic.
                if self.cfg.role == Role::AccessPoint
                    && *bssid == self.cfg.mac
                    && self.associated.contains(ta)
                {
                    let sifs = self.cfg.band.sifs_us();
                    let buffered = self.ps_buffer.get_mut(ta);
                    match buffered.and_then(|b| {
                        if b.is_empty() {
                            None
                        } else {
                            Some(b.remove(0))
                        }
                    }) {
                        Some((mut frame, rate)) => {
                            let more = self.buffered_for(*ta) > 0;
                            match &mut frame {
                                Frame::Data(d) => d.fc.more_data = more,
                                Frame::Mgmt(m) => m.fc.more_data = more,
                                Frame::Ctrl(_) => {}
                            }
                            // Immediate-data response to the PS-Poll.
                            actions.push(MacAction::Respond {
                                frame,
                                delay_us: sifs,
                                rate,
                            });
                        }
                        None => {
                            // Nothing buffered: just acknowledge the poll.
                            actions.push(MacAction::Respond {
                                frame: builder::ack(*ta),
                                delay_us: sifs,
                                rate: BitRate::Mbps1,
                            });
                        }
                    }
                }
            }
            Frame::Ctrl(ControlFrame::BlockAckReq { ta, start_seq, .. }) => {
                // A BAR slides the per-transmitter reordering window to its
                // starting sequence number. BARs are unprotected control
                // frames, so the TA is trusted on face value — a forged one
                // from a stranger claiming an associated peer's address
                // moves the floor just the same (Bl0ck, arXiv 2302.05899).
                if for_us && self.associated.contains(ta) {
                    self.ba_window.insert(*ta, start_seq >> 4);
                }
            }
            Frame::Ctrl(_) => {
                // CTS/ACK consumption is the transmitter side's business;
                // handled by the simulator's transmit tracking.
            }
        }
    }

    /// The Figure 3 reflex: some APs answer fake frames with
    /// deauthentication bursts (three MAC retries sharing one sequence
    /// number), rate-limited by a cooldown.
    fn maybe_deauth(&mut self, now_us: u64, offender: MacAddr, actions: &mut Vec<MacAction>) {
        if !(self.cfg.behavior.deauth_on_fake && self.cfg.role == Role::AccessPoint) {
            return;
        }
        let cooldown = self.cfg.behavior.deauth_cooldown_us;
        if let Some(&t) = self.last_deauth.get(&offender) {
            if now_us.saturating_sub(t) < cooldown {
                return;
            }
        }
        self.last_deauth.insert(offender, now_us);
        let sn = self.seq.take();
        for attempt in 0..self.cfg.behavior.deauth_burst {
            let mut f = builder::deauth(
                offender,
                self.cfg.mac,
                self.cfg.mac,
                sn,
                ReasonCode::ClassThreeFrameFromNonassociatedSta,
            );
            if attempt > 0 {
                if let Frame::Mgmt(m) = &mut f {
                    m.fc.retry = true;
                    m.seq = SequenceControl::new(sn, 0);
                }
            }
            actions.push(MacAction::Enqueue {
                frame: f,
                rate: BitRate::Mbps1,
            });
            self.stats.deauths_sent += 1;
        }
    }

    /// Builds the beacon TIM element advertising stations with buffered
    /// power-save traffic, or `None` when nothing is buffered.
    fn build_tim(&self) -> Option<polite_wifi_frame::ie::InformationElement> {
        let aids: Vec<u16> = self
            .ps_buffer
            .iter()
            .filter(|(_, frames)| !frames.is_empty())
            .filter_map(|(sta, _)| self.aid_of.get(sta).copied())
            .collect();
        if aids.is_empty() {
            return None;
        }
        let max_aid = *aids.iter().max().expect("non-empty") as usize;
        let mut bitmap = vec![0u8; max_aid / 8 + 1];
        for aid in aids {
            bitmap[aid as usize / 8] |= 1 << (aid % 8);
        }
        Some(polite_wifi_frame::ie::InformationElement::tim(
            0, 3, 0, &bitmap,
        ))
    }

    /// Registers activity: wakes the radio and restarts the doze timer.
    /// Real traffic puts the station back in the active period, so the
    /// next doze re-announces PS mode.
    fn touch(&mut self, now_us: u64, actions: &mut Vec<MacAction>) {
        self.last_activity_us = now_us;
        self.ps_announced = false;
        if self.cfg.behavior.power_save.is_some() && !self.awake {
            self.awake = true;
            actions.push(MacAction::Radio(RadioState::Idle));
        }
    }

    /// Timer-driven work: beaconing (APs) and dozing (power-save clients).
    pub fn poll(&mut self, now_us: u64) -> Vec<MacAction> {
        let mut actions = Vec::new();

        if let Some(interval) = self.cfg.beacon_interval_us {
            while now_us >= self.next_beacon_us {
                let mut f = builder::beacon(
                    self.cfg.mac,
                    &self.cfg.ssid,
                    self.cfg.channel,
                    self.seq.take(),
                    self.next_beacon_us,
                    self.cfg.behavior.pmf,
                );
                // Advertise buffered power-save traffic in the TIM.
                if let Frame::Mgmt(m) = &mut f {
                    if let ManagementBody::Beacon { elements, .. } = &mut m.body {
                        if let Some(tim) = self.build_tim() {
                            if let Some(slot) = elements
                                .iter_mut()
                                .find(|e| e.id == polite_wifi_frame::ie::element_id::TIM)
                            {
                                *slot = tim;
                            } else {
                                elements.push(tim);
                            }
                        }
                    }
                }
                actions.push(MacAction::Enqueue {
                    frame: f,
                    rate: BitRate::Mbps1,
                });
                self.stats.beacons_sent += 1;
                self.next_beacon_us += interval;
            }
        }

        if let Some(ps) = self.cfg.behavior.power_save {
            // Scheduled beacon wake (TBTT): the radio powers up briefly to
            // catch the AP's beacon even with no traffic pending. This is
            // the only window in which a *dozing* victim can hear a fake
            // frame — which is how the drain attack gets its foot in the
            // door at low injection rates.
            while now_us >= self.next_tbtt_us {
                self.beacon_window_until_us = self.next_tbtt_us + ps.beacon_rx_us;
                self.next_tbtt_us += ps.beacon_interval_us;
                if !self.awake && now_us < self.beacon_window_until_us {
                    self.awake = true;
                    actions.push(MacAction::Radio(RadioState::Idle));
                }
            }
            let idle_expired = now_us.saturating_sub(self.last_activity_us) >= ps.idle_timeout_us;
            let window_over = now_us >= self.beacon_window_until_us;
            if self.awake && idle_expired && window_over {
                // Announce the doze to the AP (PM=1 null) so it buffers
                // our downlink traffic — once per active period, not on
                // every beacon-window doze — then power down.
                if !self.ps_announced {
                    if let JoinState::Joined { ap, .. } = self.join_state {
                        let mut null = polite_wifi_frame::data::DataFrame::null(
                            ap,
                            self.cfg.mac,
                            self.seq.take(),
                        );
                        null.fc.power_mgmt = true;
                        actions.push(MacAction::Enqueue {
                            frame: Frame::Data(null),
                            rate: BitRate::Mbps1,
                        });
                    }
                    self.ps_announced = true;
                }
                self.awake = false;
                actions.push(MacAction::Radio(RadioState::Sleep));
            }
        }

        actions
    }

    /// When [`Station::poll`] next needs to run (smoltcp-style scheduling
    /// hint). `None` means no timers are pending.
    pub fn next_poll_at(&self, now_us: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        if self.cfg.beacon_interval_us.is_some() {
            next = Some(self.next_beacon_us);
        }
        if let Some(ps) = self.cfg.behavior.power_save {
            if self.awake {
                let doze_at =
                    (self.last_activity_us + ps.idle_timeout_us).max(self.beacon_window_until_us);
                next = Some(next.map_or(doze_at, |n| n.min(doze_at)));
            }
            // Always wake for the next beacon.
            let tbtt = self.next_tbtt_us;
            next = Some(next.map_or(tbtt, |n| n.min(tbtt)));
        }
        next.map(|t| t.max(now_us))
    }

    /// Allocates the next transmit sequence number.
    pub fn next_seq(&mut self) -> u16 {
        self.seq.take()
    }

    /// AP-side downlink submission with power-save buffering: frames for
    /// stations that announced power save (PM bit) are held until the
    /// station polls for them (see the PS-Poll handling); the pending
    /// traffic is advertised in the beacon TIM. Frames for awake
    /// stations transmit immediately.
    pub fn submit_downlink(&mut self, frame: Frame, rate: BitRate) -> Vec<MacAction> {
        let ra = frame.receiver().unwrap_or(MacAddr::BROADCAST);
        if self.cfg.role == Role::AccessPoint && self.ps_mode.contains(&ra) {
            self.ps_buffer.entry(ra).or_default().push((frame, rate));
            Vec::new()
        } else {
            vec![MacAction::Enqueue { frame, rate }]
        }
    }

    /// AP-side: number of frames currently buffered for a dozing station.
    pub fn buffered_for(&self, sta: MacAddr) -> usize {
        self.ps_buffer.get(&sta).map_or(0, Vec::len)
    }

    /// AP-side: whether a station has announced power-save mode.
    pub fn in_ps_mode(&self, sta: MacAddr) -> bool {
        self.ps_mode.contains(&sta)
    }

    /// Retunes the radio to another band/channel (used by the wardriving
    /// scanner's channel hopping). Timing parameters (SIFS, slots) follow
    /// the new band automatically.
    pub fn retune(&mut self, band: Band, channel: u8) {
        self.cfg.band = band;
        self.cfg.channel = channel;
    }

    /// Notifies the MAC that it initiated a (non-response) transmission:
    /// a station sending a probe or data frame is awake and stays awake
    /// to hear the reply. SIFS responses (ACK/CTS) do not go through
    /// here — firing an ACK must not reset the doze timer — and neither
    /// does the PM=1 doze announcement (it is the *last* frame before
    /// sleep by definition).
    pub fn on_transmit(&mut self, now_us: u64, frame: &Frame) -> Vec<MacAction> {
        let mut actions = Vec::new();
        if !frame.frame_control().power_mgmt {
            self.touch(now_us, &mut actions);
        }
        actions
    }
}

/// Reads the TIM of a beacon's element list and reports whether `aid`'s
/// traffic-indication bit is set (offset-0 partial virtual bitmaps, which
/// is what [`Station::build_tim`] emits).
fn tim_bit_set(elements: &[polite_wifi_frame::ie::InformationElement], aid: u16) -> bool {
    use polite_wifi_frame::ie::element_id;
    let Some(tim) = elements.iter().find(|e| e.id == element_id::TIM) else {
        return false;
    };
    if tim.data.len() < 4 {
        return false;
    }
    let bitmap = &tim.data[3..];
    let byte = aid as usize / 8;
    bitmap.get(byte).is_some_and(|b| b & (1 << (aid % 8)) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::data::DataFrame;

    fn victim_mac() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    fn fake_frame() -> Frame {
        builder::fake_null_frame(victim_mac(), MacAddr::FAKE)
    }

    fn client() -> Station {
        Station::new(StationConfig::client(victim_mac()))
    }

    fn find_ack(actions: &[MacAction]) -> Option<(&Frame, u32)> {
        actions.iter().find_map(|a| match a {
            MacAction::Respond {
                frame, delay_us, ..
            } if a.is_ack() => Some((frame, *delay_us)),
            _ => None,
        })
    }

    #[test]
    fn fake_frame_is_acked_at_sifs() {
        let mut sta = client();
        let actions = sta.on_receive(1000, &fake_frame(), true, BitRate::Mbps1);
        let (ack, delay) = find_ack(&actions).expect("polite wifi demands an ACK");
        assert_eq!(delay, 10); // 2.4 GHz SIFS
        assert_eq!(ack.receiver(), Some(MacAddr::FAKE));
        assert_eq!(sta.stats.acks_sent, 1);
        // ...and the frame was still discarded above the MAC.
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::NotAssociated
            }
        )));
    }

    #[test]
    fn five_ghz_ack_at_16us() {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.band = Band::Ghz5;
        let mut sta = Station::new(cfg);
        let actions = sta.on_receive(0, &fake_frame(), true, BitRate::Mbps6);
        assert_eq!(find_ack(&actions).unwrap().1, 16);
    }

    #[test]
    fn bad_fcs_gets_nothing() {
        let mut sta = client();
        let actions = sta.on_receive(0, &fake_frame(), false, BitRate::Mbps1);
        assert!(find_ack(&actions).is_none());
        assert_eq!(sta.stats.acks_sent, 0);
        assert_eq!(sta.stats.fcs_failures, 1);
    }

    #[test]
    fn frames_for_others_ignored() {
        let mut sta = client();
        let other: MacAddr = "02:00:00:00:00:99".parse().unwrap();
        let f = builder::fake_null_frame(other, MacAddr::FAKE);
        let actions = sta.on_receive(0, &f, true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_none());
        assert_eq!(sta.stats.not_for_us, 1);
    }

    #[test]
    fn broadcast_not_acked() {
        let mut sta = client();
        let f = builder::fake_null_frame(MacAddr::BROADCAST, MacAddr::FAKE);
        let actions = sta.on_receive(0, &f, true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_none());
    }

    #[test]
    fn stranger_rts_gets_cts() {
        let mut sta = client();
        let rts = builder::fake_rts(victim_mac(), MacAddr::FAKE, 300);
        let actions = sta.on_receive(0, &rts, true, BitRate::Mbps11);
        let cts = actions.iter().find(|a| a.is_cts()).expect("CTS expected");
        if let MacAction::Respond {
            frame, delay_us, ..
        } = cts
        {
            assert_eq!(*delay_us, 10);
            assert_eq!(frame.receiver(), Some(MacAddr::FAKE));
        }
        assert_eq!(sta.stats.cts_sent, 1);
    }

    #[test]
    fn ack_rate_follows_response_rules() {
        let mut sta = client();
        let actions = sta.on_receive(0, &fake_frame(), true, BitRate::Mbps54);
        let rate = actions
            .iter()
            .find_map(|a| match a {
                MacAction::Respond { rate, .. } if a.is_ack() => Some(*rate),
                _ => None,
            })
            .unwrap();
        assert_eq!(rate, BitRate::Mbps24);
    }

    #[test]
    fn blocklist_cannot_stop_the_ack() {
        // The experiment that "destroyed the last hope": block the MAC at
        // the AP, and the ACK still goes out.
        let mut cfg = StationConfig::access_point(victim_mac(), "PrivateNet");
        cfg.behavior = Behavior::deauthing_ap();
        let mut ap = Station::new(cfg);
        ap.block_mac(MacAddr::FAKE);
        let actions = ap.on_receive(100_000, &fake_frame(), true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_some(), "AP must still ACK");
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::Blocklisted
            }
        )));
    }

    #[test]
    fn deauthing_ap_bursts_but_still_acks() {
        let mut cfg = StationConfig::access_point(victim_mac(), "PrivateNet");
        cfg.behavior = Behavior::deauthing_ap();
        let mut ap = Station::new(cfg);
        let actions = ap.on_receive(0, &fake_frame(), true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_some());
        let deauths: Vec<_> = actions
            .iter()
            .filter(|a| {
                matches!(a, MacAction::Enqueue { frame: Frame::Mgmt(m), .. }
                    if matches!(m.body, ManagementBody::Deauthentication { .. }))
            })
            .collect();
        assert_eq!(deauths.len(), 3, "Figure 3 shows a burst of 3");
        assert_eq!(ap.stats.deauths_sent, 3);
        // Burst shares one sequence number; retries flagged.
        let sns: Vec<u16> = actions
            .iter()
            .filter_map(|a| match a {
                MacAction::Enqueue {
                    frame: Frame::Mgmt(m),
                    ..
                } if matches!(m.body, ManagementBody::Deauthentication { .. }) => {
                    Some(m.seq.sequence)
                }
                _ => None,
            })
            .collect();
        assert!(sns.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn deauth_cooldown_limits_storms() {
        let mut cfg = StationConfig::access_point(victim_mac(), "X");
        cfg.behavior = Behavior::deauthing_ap();
        let mut ap = Station::new(cfg);
        let a1 = ap.on_receive(0, &fake_frame(), true, BitRate::Mbps1);
        let a2 = ap.on_receive(1_000, &fake_frame(), true, BitRate::Mbps1);
        let a3 = ap.on_receive(60_000, &fake_frame(), true, BitRate::Mbps1);
        let count_deauth = |acts: &[MacAction]| {
            acts.iter()
                .filter(|a| {
                    matches!(a, MacAction::Enqueue { frame: Frame::Mgmt(m), .. }
                    if matches!(m.body, ManagementBody::Deauthentication { .. }))
                })
                .count()
        };
        assert_eq!(count_deauth(&a1), 3);
        assert_eq!(count_deauth(&a2), 0, "inside cooldown");
        assert_eq!(count_deauth(&a3), 3, "cooldown expired");
        // Every fake got an ACK regardless.
        assert_eq!(ap.stats.acks_sent, 3);
    }

    #[test]
    fn pmf_rejects_spoofed_deauth_but_still_acks_it() {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::pmf_client();
        let mut sta = Station::new(cfg);
        let spoofed = builder::deauth(
            victim_mac(),
            MacAddr::FAKE,
            MacAddr::FAKE,
            7,
            ReasonCode::Unspecified,
        );
        let actions = sta.on_receive(0, &spoofed, true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_some(), "management frames are ACKed");
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::PmfViolation
            }
        )));
    }

    #[test]
    fn pmf_client_still_answers_rts() {
        // Footnote 2: control frames are unprotected even under 802.11w.
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::pmf_client();
        let mut sta = Station::new(cfg);
        let rts = builder::fake_rts(victim_mac(), MacAddr::FAKE, 200);
        let actions = sta.on_receive(0, &rts, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| a.is_cts()));
    }

    #[test]
    fn duplicate_fake_frames_each_get_an_ack() {
        let mut sta = client();
        let mut f = DataFrame::null(victim_mac(), MacAddr::FAKE, 0);
        let a1 = sta.on_receive(0, &Frame::Data(f.clone()), true, BitRate::Mbps1);
        f.fc.retry = true;
        let a2 = sta.on_receive(1_000, &Frame::Data(f), true, BitRate::Mbps1);
        assert!(find_ack(&a1).is_some());
        assert!(find_ack(&a2).is_some(), "duplicates are ACKed too");
        assert!(a2.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::Duplicate
            }
        )));
        assert_eq!(sta.stats.acks_sent, 2);
        assert_eq!(sta.stats.duplicates, 1);
    }

    #[test]
    fn associated_null_frames_delivered() {
        let mut sta = client();
        let peer: MacAddr = "02:00:00:00:00:55".parse().unwrap();
        sta.associate(peer);
        let f = Frame::Data(DataFrame::null(victim_mac(), peer, 1));
        let actions = sta.on_receive(0, &f, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(a, MacAction::Deliver(_))));
        assert_eq!(sta.stats.delivered, 1);
    }

    #[test]
    fn plaintext_payload_from_associated_fails_decrypt_yet_acks() {
        let mut sta = client();
        let peer: MacAddr = "02:00:00:00:00:55".parse().unwrap();
        sta.associate(peer);
        let f = Frame::Data(DataFrame::new(victim_mac(), peer, peer, 2, vec![1, 2, 3]));
        let actions = sta.on_receive(0, &f, true, BitRate::Mbps1);
        assert!(find_ack(&actions).is_some());
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::DecryptFailed
            }
        )));
    }

    #[test]
    fn power_save_dozes_after_idle_timeout() {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut sta = Station::new(cfg);
        assert!(sta.is_awake());
        // No traffic for 100 ms → doze.
        let actions = sta.poll(100_000);
        assert!(actions
            .iter()
            .any(|a| matches!(a, MacAction::Radio(RadioState::Sleep))));
        assert!(!sta.is_awake());
    }

    #[test]
    fn fake_frames_prevent_dozing() {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut sta = Station::new(cfg);
        // Fake frame every 50 ms (20 pps) — under the 100 ms timeout.
        let mut t = 0u64;
        for _ in 0..20 {
            t += 50_000;
            sta.on_receive(t, &fake_frame(), true, BitRate::Mbps1);
            let actions = sta.poll(t + 1);
            assert!(
                !actions
                    .iter()
                    .any(|a| matches!(a, MacAction::Radio(RadioState::Sleep))),
                "station dozed despite 20 pps of fakes"
            );
        }
        assert!(sta.is_awake());
    }

    #[test]
    fn slow_fakes_allow_sleep_between() {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut sta = Station::new(cfg);
        // 2 pps: 500 ms gaps — dozes 100 ms after each frame, wakes on next.
        sta.on_receive(500_000, &fake_frame(), true, BitRate::Mbps1);
        let a = sta.poll(600_000);
        assert!(a
            .iter()
            .any(|x| matches!(x, MacAction::Radio(RadioState::Sleep))));
        let a = sta.on_receive(1_000_000, &fake_frame(), true, BitRate::Mbps1);
        assert!(a
            .iter()
            .any(|x| matches!(x, MacAction::Radio(RadioState::Idle))));
        assert!(sta.is_awake());
    }

    #[test]
    fn ap_beacons_on_schedule() {
        let mut ap = Station::new(StationConfig::access_point(victim_mac(), "Net"));
        let a = ap.poll(0);
        assert_eq!(a.len(), 1, "first beacon at t=0");
        let a = ap.poll(102_400 * 3);
        assert_eq!(a.len(), 3, "catch-up beacons");
        assert_eq!(ap.stats.beacons_sent, 4);
    }

    #[test]
    fn next_poll_at_hints() {
        let ap = Station::new(StationConfig::access_point(victim_mac(), "Net"));
        assert_eq!(ap.next_poll_at(0), Some(0));

        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let sta = Station::new(cfg);
        assert_eq!(sta.next_poll_at(0), Some(100_000));

        let plain = Station::new(StationConfig::client(victim_mac()));
        assert_eq!(plain.next_poll_at(0), None);
    }

    #[test]
    fn probe_request_answered_by_ap() {
        let mut ap = Station::new(StationConfig::access_point(victim_mac(), "Net"));
        let probe = builder::probe_request(MacAddr::FAKE, 1);
        let actions = ap.on_receive(0, &probe, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Enqueue {
                frame: Frame::Mgmt(m),
                ..
            } if matches!(m.body, ManagementBody::ProbeResponse { .. })
        )));
    }

    fn step(
        from: &mut Station,
        to: &mut Station,
        actions: Vec<MacAction>,
        now: u64,
    ) -> Vec<MacAction> {
        // Carries Enqueue frames from one station to the other, ideal air.
        let mut out = Vec::new();
        for a in actions {
            if let MacAction::Enqueue { frame, rate } = a {
                let _ = from; // transmitter side bookkeeping not needed here
                out.extend(to.on_receive(now, &frame, true, rate));
            }
        }
        out
    }

    #[test]
    fn full_join_handshake() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "PrivateNet"));
        let mut client = Station::new(StationConfig::client(victim_mac()));

        assert_eq!(client.join_state(), JoinState::Idle);
        let auth_req = client.start_join(ap_mac);
        assert_eq!(
            client.join_state(),
            JoinState::Authenticating { ap: ap_mac }
        );

        let auth_resp = step(&mut client, &mut ap, auth_req, 1_000);
        let assoc_req = step(&mut ap, &mut client, auth_resp, 2_000);
        assert_eq!(client.join_state(), JoinState::Associating { ap: ap_mac });

        let assoc_resp = step(&mut client, &mut ap, assoc_req, 3_000);
        let _ = step(&mut ap, &mut client, assoc_resp, 4_000);

        assert_eq!(
            client.join_state(),
            JoinState::Joined { ap: ap_mac, aid: 1 }
        );
        assert!(client.is_associated_with(ap_mac));
        assert!(ap.is_associated_with(victim_mac()));
        assert_eq!(ap.aid_of(victim_mac()), Some(1));
    }

    #[test]
    fn association_without_authentication_refused() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let req = Frame::Mgmt(polite_wifi_frame::ManagementFrame::new(
            ap_mac,
            victim_mac(),
            ap_mac,
            1,
            ManagementBody::AssociationRequest {
                capabilities: 0,
                listen_interval: 10,
                elements: vec![],
            },
        ));
        let actions = ap.on_receive(0, &req, true, BitRate::Mbps1);
        // The frame is ACKed (Polite WiFi!) but the association fails.
        assert!(find_ack(&actions).is_some());
        let status = actions.iter().find_map(|a| match a {
            MacAction::Enqueue {
                frame: Frame::Mgmt(m),
                ..
            } => match m.body {
                ManagementBody::AssociationResponse { status, .. } => Some(status),
                _ => None,
            },
            _ => None,
        });
        assert_eq!(status, Some(1));
        assert!(!ap.is_associated_with(victim_mac()));
    }

    #[test]
    fn spoofed_deauth_kicks_non_pmf_client() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut client = Station::new(StationConfig::client(victim_mac()));
        client.associate(ap_mac);
        assert!(matches!(client.join_state(), JoinState::Joined { .. }));
        // Attacker spoofs a deauth "from" the AP.
        let spoofed = builder::deauth(victim_mac(), ap_mac, ap_mac, 99, ReasonCode::StaLeaving);
        client.on_receive(0, &spoofed, true, BitRate::Mbps1);
        assert_eq!(
            client.join_state(),
            JoinState::Idle,
            "classic deauth attack"
        );
        assert!(!client.is_associated_with(ap_mac));
    }

    #[test]
    fn pmf_client_survives_spoofed_deauth() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::pmf_client();
        let mut client = Station::new(cfg);
        client.associate(ap_mac);
        let spoofed = builder::deauth(victim_mac(), ap_mac, ap_mac, 99, ReasonCode::StaLeaving);
        client.on_receive(0, &spoofed, true, BitRate::Mbps1);
        assert!(
            matches!(client.join_state(), JoinState::Joined { .. }),
            "802.11w must block the spoof"
        );
        assert!(client.is_associated_with(ap_mac));
    }

    /// Joins a client to an AP via the real handshake (station level).
    fn join(ap: &mut Station, client: &mut Station) {
        let a = client.start_join(ap.mac());
        let b = step(client, ap, a, 1_000);
        let c = step(ap, client, b, 2_000);
        let d = step(client, ap, c, 3_000);
        let _ = step(ap, client, d, 4_000);
        assert!(matches!(client.join_state(), JoinState::Joined { .. }));
    }

    #[test]
    fn downlink_buffered_while_dozing_and_released_by_ps_poll() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut client = Station::new(cfg);
        join(&mut ap, &mut client);

        // Client dozes: announces PM=1 on its way down.
        let doze_actions = client.poll(200_000);
        let pm_null = doze_actions.iter().find_map(|a| match a {
            MacAction::Enqueue { frame, .. } if frame.frame_control().power_mgmt => {
                Some(frame.clone())
            }
            _ => None,
        });
        let pm_null = pm_null.expect("doze announcement");
        assert!(!client.is_awake());
        let _ = ap.on_receive(201_000, &pm_null, true, BitRate::Mbps1);
        assert!(ap.in_ps_mode(victim_mac()));

        // Downlink traffic for the dozing client is buffered, not sent.
        let data = Frame::Data(DataFrame::new(
            victim_mac(),
            ap_mac,
            ap_mac,
            7,
            vec![1, 2, 3],
        ));
        let actions = ap.submit_downlink(data.clone(), BitRate::Mbps11);
        assert!(actions.is_empty(), "must buffer, not transmit");
        assert_eq!(ap.buffered_for(victim_mac()), 1);

        // The next beacon advertises the buffered traffic in its TIM...
        let beacon_actions = ap.poll(300_000);
        let beacon = beacon_actions
            .iter()
            .find_map(|a| match a {
                MacAction::Enqueue {
                    frame: Frame::Mgmt(m),
                    ..
                } if matches!(m.body, ManagementBody::Beacon { .. }) => {
                    Some(Frame::Mgmt(m.clone()))
                }
                _ => None,
            })
            .expect("beacon");

        // ...the client wakes for the beacon, reads its AID and polls...
        client.poll(307_200); // TBTT wake
        assert!(client.is_awake());
        let client_actions = client.on_receive(308_000, &beacon, true, BitRate::Mbps1);
        let ps_poll = client_actions
            .iter()
            .find_map(|a| match a {
                MacAction::Enqueue {
                    frame: f @ Frame::Ctrl(polite_wifi_frame::ControlFrame::PsPoll { .. }),
                    ..
                } => Some(f.clone()),
                _ => None,
            })
            .expect("PS-Poll after TIM hit");

        // ...and the AP answers the poll with the buffered frame at SIFS.
        let ap_actions = ap.on_receive(309_000, &ps_poll, true, BitRate::Mbps1);
        let released = ap_actions
            .iter()
            .find_map(|a| match a {
                MacAction::Respond { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .expect("buffered frame released");
        assert_eq!(released.receiver(), Some(victim_mac()));
        assert!(!released.frame_control().more_data, "only one was queued");
        assert_eq!(ap.buffered_for(victim_mac()), 0);
    }

    #[test]
    fn ps_poll_with_empty_buffer_gets_plain_ack() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let mut client = Station::new(StationConfig::client(victim_mac()));
        join(&mut ap, &mut client);
        let poll = Frame::Ctrl(polite_wifi_frame::ControlFrame::PsPoll {
            aid: 1,
            bssid: ap_mac,
            ta: victim_mac(),
        });
        let actions = ap.on_receive(0, &poll, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| a.is_ack()));
    }

    #[test]
    fn more_data_flag_chains_multiple_buffered_frames() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut client = Station::new(cfg);
        join(&mut ap, &mut client);
        // Doze + inform AP.
        let doze = client.poll(200_000);
        let pm_null = doze
            .iter()
            .find_map(|a| match a {
                MacAction::Enqueue { frame, .. } if frame.frame_control().power_mgmt => {
                    Some(frame.clone())
                }
                _ => None,
            })
            .unwrap();
        ap.on_receive(201_000, &pm_null, true, BitRate::Mbps1);
        for seq in 0..3u16 {
            let f = Frame::Data(DataFrame::new(victim_mac(), ap_mac, ap_mac, seq, vec![0]));
            assert!(ap.submit_downlink(f, BitRate::Mbps11).is_empty());
        }
        assert_eq!(ap.buffered_for(victim_mac()), 3);
        let poll = Frame::Ctrl(polite_wifi_frame::ControlFrame::PsPoll {
            aid: 1,
            bssid: ap_mac,
            ta: victim_mac(),
        });
        let mut more_flags = Vec::new();
        for _ in 0..3 {
            let actions = ap.on_receive(0, &poll, true, BitRate::Mbps1);
            let released = actions
                .iter()
                .find_map(|a| match a {
                    MacAction::Respond { frame, .. } if !a.is_ack() => Some(frame.clone()),
                    _ => None,
                })
                .unwrap();
            more_flags.push(released.frame_control().more_data);
        }
        assert_eq!(more_flags, vec![true, true, false]);
        assert_eq!(ap.buffered_for(victim_mac()), 0);
    }

    #[test]
    fn waking_with_pm0_data_flushes_buffer() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut client = Station::new(cfg);
        join(&mut ap, &mut client);
        let doze = client.poll(200_000);
        let pm_null = doze
            .iter()
            .find_map(|a| match a {
                MacAction::Enqueue { frame, .. } if frame.frame_control().power_mgmt => {
                    Some(frame.clone())
                }
                _ => None,
            })
            .unwrap();
        ap.on_receive(201_000, &pm_null, true, BitRate::Mbps1);
        let f = Frame::Data(DataFrame::new(victim_mac(), ap_mac, ap_mac, 9, vec![0]));
        ap.submit_downlink(f, BitRate::Mbps11);
        assert_eq!(ap.buffered_for(victim_mac()), 1);

        // Client wakes and sends a PM=0 null: the AP flushes.
        let wake_null = Frame::Data(DataFrame::null(ap_mac, victim_mac(), 10));
        let actions = ap.on_receive(400_000, &wake_null, true, BitRate::Mbps1);
        assert!(actions
            .iter()
            .any(|a| matches!(a, MacAction::Enqueue { .. })));
        assert_eq!(ap.buffered_for(victim_mac()), 0);
        assert!(!ap.in_ps_mode(victim_mac()));
    }

    #[test]
    fn tim_roundtrip_via_beacon() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut ap = Station::new(StationConfig::access_point(ap_mac, "Net"));
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut client = Station::new(cfg);
        join(&mut ap, &mut client);
        // Without buffered traffic, the TIM bit is clear.
        let b0 = ap.poll(0);
        if let Some(MacAction::Enqueue {
            frame: Frame::Mgmt(m),
            ..
        }) = b0.first()
        {
            if let ManagementBody::Beacon { elements, .. } = &m.body {
                assert!(!tim_bit_set(elements, 1));
            }
        }
        // Buffer something, beacon again: bit set for AID 1.
        ap.on_receive(
            1_000,
            &{
                let mut n = DataFrame::null(ap_mac, victim_mac(), 1);
                n.fc.power_mgmt = true;
                Frame::Data(n)
            },
            true,
            BitRate::Mbps1,
        );
        ap.submit_downlink(
            Frame::Data(DataFrame::new(victim_mac(), ap_mac, ap_mac, 2, vec![9])),
            BitRate::Mbps11,
        );
        let b1 = ap.poll(102_400);
        let found = b1.iter().any(|a| match a {
            MacAction::Enqueue {
                frame: Frame::Mgmt(m),
                ..
            } => match &m.body {
                ManagementBody::Beacon { elements, .. } => tim_bit_set(elements, 1),
                _ => false,
            },
            _ => false,
        });
        assert!(found, "TIM must advertise AID 1");
    }

    #[test]
    fn every_behavior_profile_acks_fakes() {
        // Table 1 / Table 2 in miniature: no profile escapes Polite WiFi.
        for behavior in [
            Behavior::client(),
            Behavior::quiet_ap(),
            Behavior::deauthing_ap(),
            Behavior::iot_power_save(),
            Behavior::pmf_client(),
        ] {
            let mut cfg = StationConfig::client(victim_mac());
            cfg.behavior = behavior;
            let mut sta = Station::new(cfg);
            let actions = sta.on_receive(0, &fake_frame(), true, BitRate::Mbps1);
            assert!(find_ack(&actions).is_some(), "{behavior:?} failed to ACK");
        }
    }

    #[test]
    fn forged_bar_slides_ba_window_and_drops_stale_data() {
        let peer: MacAddr = "02:00:00:00:00:42".parse().unwrap();
        let mut sta = client();
        sta.associate(peer);
        // Legitimate traffic before the attack is delivered.
        let f = builder::protected_qos_data(victim_mac(), peer, peer, 1, 32);
        let actions = sta.on_receive(0, &f, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(a, MacAction::Deliver(_))));
        // The Bl0ck primitive: a BAR claiming the peer's TA jumps the
        // window floor to sequence 100.
        let bar = Frame::Ctrl(ControlFrame::BlockAckReq {
            duration_us: 0,
            ra: victim_mac(),
            ta: peer,
            control: 0x0004,
            start_seq: 100 << 4,
        });
        sta.on_receive(1_000, &bar, true, BitRate::Mbps1);
        // Everything the peer sends below the floor is now stale.
        let f = builder::protected_qos_data(victim_mac(), peer, peer, 2, 32);
        let actions = sta.on_receive(2_000, &f, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(
            a,
            MacAction::Discard {
                reason: DiscardReason::BlockAckWindowStale
            }
        )));
        assert!(!actions.iter().any(|a| matches!(a, MacAction::Deliver(_))));
        assert_eq!(sta.stats.ba_stale_dropped, 1);
        // Frames at or past the floor flow again.
        let f = builder::protected_qos_data(victim_mac(), peer, peer, 100, 32);
        let actions = sta.on_receive(3_000, &f, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(a, MacAction::Deliver(_))));
        // A stranger's BAR (TA not associated) must not move the floor.
        let rogue_bar = Frame::Ctrl(ControlFrame::BlockAckReq {
            duration_us: 0,
            ra: victim_mac(),
            ta: MacAddr::FAKE,
            control: 0x0004,
            start_seq: 4000 << 4,
        });
        sta.on_receive(4_000, &rogue_bar, true, BitRate::Mbps1);
        let f = builder::protected_qos_data(victim_mac(), peer, peer, 101, 32);
        let actions = sta.on_receive(5_000, &f, true, BitRate::Mbps1);
        assert!(actions.iter().any(|a| matches!(a, MacAction::Deliver(_))));
    }
}
