//! The fully interpreted scenario executor (`"runner": "generic"`).
//!
//! Everything comes from the spec: the topology stamps a
//! [`ScenarioBuilder`](polite_wifi_harness::ScenarioBuilder), each attack
//! entry composes an [`polite_wifi_core::Attack`] from the core trait
//! layer, each probe entry a [`polite_wifi_core::Probe`], and the
//! assertion block a set of [`polite_wifi_core::MetricAssertion`]s
//! checked against the recorded metric means. No experiment-specific
//! code runs at all — related-work scenarios land purely as data files.

use crate::spec::{bitrate_from_label, AttackSpec, ProbeSpec, ScenarioSpec, TopologySpec};
use polite_wifi_core::{
    check_all, Assertion, Attack, AttackCtx, BlockAckParalysis, CmpOp, DeauthFlood, InjectionKind,
    InjectionPlan, MetricAssertion, NavRtsFlood, Probe, StatKind, StationStatProbe,
};
use polite_wifi_core::{AckVerifier, AssociationProbe};
use polite_wifi_frame::builder;
use polite_wifi_harness::{Experiment, MetricsLedger, RunArgs};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{NodeId, Simulator};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io;

/// One evaluated assertion, as reported in the envelope payload.
#[derive(Serialize)]
struct AssertionOutcome {
    check: String,
    measured: Option<f64>,
    pass: bool,
}

/// The generic runner's payload.
#[derive(Serialize)]
struct GenericOutcome {
    attack_frames: u64,
    assertions: Vec<AssertionOutcome>,
    verdict: String,
}

fn rate(label: &str) -> BitRate {
    bitrate_from_label(label).expect("validated at parse time")
}

/// Builds the core-layer attack object an [`AttackSpec`] describes,
/// resolving node names. `QosTraffic` is not an attack (it transmits
/// from a legitimate node) and returns `None`.
fn build_attack(spec: &AttackSpec, topo: &TopologySpec) -> Option<(String, Box<dyn Attack>)> {
    match spec {
        AttackSpec::NullFlood {
            attacker,
            victim,
            rate_pps,
            start_us,
            duration_us,
            bitrate,
        } => Some((
            attacker.clone(),
            Box::new(InjectionPlan {
                victim: topo.mac_of(victim),
                forged_ta: topo.mac_of(attacker),
                kind: InjectionKind::NullData,
                rate_pps: *rate_pps,
                start_us: *start_us,
                duration_us: *duration_us,
                bitrate: rate(bitrate),
            }),
        )),
        AttackSpec::RtsFlood {
            attacker,
            target,
            nav_us,
            rate_pps,
            start_us,
            duration_us,
            bitrate,
        } => Some((
            attacker.clone(),
            Box::new(NavRtsFlood {
                target: topo.mac_of(target),
                forged_ta: topo.mac_of(attacker),
                nav_us: *nav_us,
                rate_pps: *rate_pps,
                start_us: *start_us,
                duration_us: *duration_us,
                bitrate: rate(bitrate),
            }),
        )),
        AttackSpec::DeauthFlood {
            attacker,
            victim,
            forged_ap,
            rate_pps,
            start_us,
            duration_us,
            bitrate,
        } => Some((
            attacker.clone(),
            Box::new(DeauthFlood {
                victim: topo.mac_of(victim),
                forged_ap: topo.mac_of(forged_ap),
                rate_pps: *rate_pps,
                start_us: *start_us,
                duration_us: *duration_us,
                bitrate: rate(bitrate),
            }),
        )),
        AttackSpec::BlockAckParalysis {
            attacker,
            victim,
            spoofed_peer,
            jump_to_seq,
            at_us,
            bitrate,
        } => Some((
            attacker.clone(),
            Box::new(BlockAckParalysis {
                victim: topo.mac_of(victim),
                spoofed_peer: topo.mac_of(spoofed_peer),
                jump_to_seq: *jump_to_seq,
                at_us: *at_us,
                bitrate: rate(bitrate),
            }),
        )),
        AttackSpec::QosTraffic { .. } => None,
    }
}

/// Schedules the legitimate QoS traffic entries directly on the
/// simulator (sequence numbers count up from 0 per stream).
fn schedule_traffic(
    spec: &AttackSpec,
    sim: &mut Simulator,
    topo: &TopologySpec,
    ids: &BTreeMap<String, NodeId>,
) -> u64 {
    let AttackSpec::QosTraffic {
        from,
        to,
        rate_pps,
        start_us,
        duration_us,
        payload_len,
        bitrate,
    } = spec
    else {
        return 0;
    };
    if *rate_pps == 0 {
        return 0;
    }
    let gap = 1_000_000 / *rate_pps as u64;
    let n = duration_us * *rate_pps as u64 / 1_000_000;
    let (src, dst) = (topo.mac_of(from), topo.mac_of(to));
    for i in 0..n {
        sim.inject(
            start_us + i * gap,
            ids[from],
            builder::protected_qos_data(dst, src, src, i as u16, *payload_len as usize),
            rate(bitrate),
        );
    }
    n
}

/// Builds the core-layer probe object a [`ProbeSpec`] describes.
fn build_probe(
    spec: &ProbeSpec,
    topo: &TopologySpec,
    ids: &BTreeMap<String, NodeId>,
) -> Box<dyn Probe> {
    match spec {
        ProbeSpec::AckVerifier { attacker } => Box::new(AckVerifier::new(topo.mac_of(attacker))),
        ProbeSpec::StationStat { node, stat, metric } => Box::new(StationStatProbe {
            node: ids[node],
            stat: StatKind::from_label(stat).expect("validated at parse time"),
            metric: metric.clone(),
        }),
        ProbeSpec::Association { node, peer, metric } => Box::new(AssociationProbe {
            node: ids[node],
            peer: topo.mac_of(peer),
            metric: metric.clone(),
        }),
    }
}

/// Runs a fully spec-driven scenario: trials across the worker pool,
/// metrics merged in trial order, assertions checked against the means.
/// Exit status is non-zero when an enforced assertion fails.
pub fn run(spec: &ScenarioSpec, args: RunArgs) -> io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();
    let topo = spec
        .topology
        .as_ref()
        .expect("validated: generic runner requires a topology");
    let (sb, ids) = topo.builder(args.faults);
    let attacks: Vec<(String, Box<dyn Attack>)> = spec
        .attacks
        .iter()
        .filter_map(|a| build_attack(a, topo))
        .collect();
    let probes: Vec<Box<dyn Probe>> = spec
        .probes
        .iter()
        .map(|p| build_probe(p, topo, &ids))
        .collect();

    let results = exp.run_trials(|ctx| {
        let mut scenario = sb.build_with_seed(ctx.seed);
        let mut frames = 0u64;
        for (attacker, attack) in &attacks {
            let attack_ctx = AttackCtx {
                attacker: ids[attacker],
                seed: ctx.seed,
            };
            frames += attack.launch(&mut scenario.sim, &attack_ctx);
        }
        for t in &spec.attacks {
            frames += schedule_traffic(t, &mut scenario.sim, topo, &ids);
        }
        let sim = scenario.run();
        let mut ledger = MetricsLedger::new();
        for probe in &probes {
            probe.observe(sim, &mut ledger);
        }
        (frames, ledger, sim.take_obs())
    });

    let mut attack_frames = 0u64;
    for result in results.into_iter().flatten() {
        let (frames, ledger, obs) = result;
        attack_frames += frames;
        exp.metrics.merge(&ledger);
        exp.absorb_obs(obs);
    }

    println!();
    println!(
        "scenario `{}`: {} scheduled frame(s)",
        spec.slug, attack_frames
    );
    for summary in exp.metrics.summaries() {
        println!("  {:<44} mean: {}", summary.name, summary.mean);
    }

    // Evaluate the assertion block against per-metric means.
    let enforced: Vec<Box<dyn Assertion>> = spec
        .assertions
        .iter()
        .filter(|a| !a.clean_only || args.faults.is_clean())
        .map(|a| {
            Box::new(MetricAssertion {
                metric: a.metric.clone(),
                op: CmpOp::from_symbol(&a.op).expect("validated at parse time"),
                value: a.value,
            }) as Box<dyn Assertion>
        })
        .collect();
    let metrics = &exp.metrics;
    let lookup = |name: &str| metrics.mean(name);
    let verdict = check_all(&enforced, &lookup);
    let outcomes: Vec<AssertionOutcome> = enforced
        .iter()
        .map(|a| AssertionOutcome {
            check: a.describe(),
            measured: spec
                .assertions
                .iter()
                .find(|s| a.describe().starts_with(&s.metric))
                .and_then(|s| metrics.mean(&s.metric)),
            pass: a.check(&lookup).is_ok(),
        })
        .collect();
    let skipped = spec.assertions.len() - enforced.len();
    println!();
    for o in &outcomes {
        println!(
            "  assert {:<40} {}",
            o.check,
            if o.pass { "PASS" } else { "FAIL" }
        );
    }
    if skipped > 0 {
        println!("  ({skipped} clean-only assertion(s) skipped under fault injection)");
    }
    let verdict_str = match &verdict {
        Ok(()) => "pass".to_string(),
        Err(e) => {
            println!("\nassertion failures: {e}");
            "fail".to_string()
        }
    };

    let payload = GenericOutcome {
        attack_frames,
        assertions: outcomes,
        verdict: verdict_str,
    };
    let status = exp.finish_with_status(&spec.slug, &payload)?;
    Ok(if verdict.is_err() { 1 } else { status })
}
