//! IEEE 802.11 frame model and byte-level codec.
//!
//! This crate implements the subset of IEEE 802.11-2016 framing needed to
//! reproduce the *Polite WiFi* behaviour (Abedi & Abari, HotNets '20) and
//! its surrounding experiments:
//!
//! * the [`MacAddr`] address type with OUI/vendor helpers,
//! * the 2-byte [`FrameControl`] field and every type/subtype it encodes,
//! * management frames ([`mgmt`]): beacons, deauthentication, probe
//!   request/response, authentication, (dis)association and action frames,
//!   with typed [information elements](ie),
//! * control frames ([`control`]): RTS, CTS, ACK, PS-Poll, BlockAck(-Req),
//!   CF-End — the frames the paper shows cannot be protected,
//! * data frames ([`data`]): plain, null-function ("the fake frame" used by
//!   the paper's attacker), and their QoS variants,
//! * the 32-bit frame check sequence ([`fcs`]), and
//! * a unified [`Frame`] enum with lossless `parse` ↔ `encode` round-trips.
//!
//! Frames encode to the exact over-the-air byte layout, so captures written
//! through `polite-wifi-pcap` open cleanly in Wireshark.
//!
//! # Example
//!
//! Build the exact fake frame the paper's attacker injects (an unencrypted
//! null-function data frame whose only valid field is the receiver address)
//! and the ACK the victim answers with:
//!
//! ```
//! use polite_wifi_frame::{builder, Frame, MacAddr};
//!
//! let victim = MacAddr::new([0xf2, 0x6e, 0x0b, 0x11, 0x22, 0x33]);
//! let attacker = MacAddr::FAKE; // aa:bb:bb:bb:bb:bb, as in the paper
//!
//! let fake = builder::fake_null_frame(victim, attacker);
//! let bytes = fake.encode(true);
//! let reparsed = Frame::parse(&bytes, true).unwrap();
//! assert_eq!(reparsed.receiver(), Some(victim));
//!
//! let ack = builder::ack(attacker);
//! assert_eq!(ack.encode(true).len(), 14); // 10-byte ACK + 4-byte FCS
//! ```

pub mod addr;
pub mod builder;
pub mod control;
#[deprecated(note = "merged into `control`; import `crate::control::ControlFrame` instead")]
pub mod ctrl;
pub mod data;
pub mod error;
pub mod fcs;
pub mod frame;
pub mod ie;
pub mod mgmt;
pub mod reason;
pub mod seq;

pub use addr::MacAddr;
pub use control::{ControlFrame, FrameControl, FrameType};
pub use data::{DataBody, DataFrame};
pub use error::FrameError;
pub use frame::Frame;
pub use mgmt::{ManagementBody, ManagementFrame};
pub use reason::ReasonCode;
pub use seq::SequenceControl;
