//! Radiotap header encode/decode.
//!
//! Radiotap is the de-facto capture header that prepends 802.11 frames in
//! pcap files (LINKTYPE 127). Each header carries a presence bitmask and a
//! sequence of naturally-aligned fields (timestamp, rate, channel, RSSI…).
//!
//! The reproduction notes for this paper call out radiotap as the thin spot
//! in the Rust ecosystem, so this crate implements the format from the
//! specification: little-endian fields, per-field natural alignment,
//! chained extended presence words, and vendor-namespace skipping.
//!
//! The sensing experiments lean on this header: the attacker's sniffer
//! reads per-ACK RSSI/channel metadata from radiotap while the CSI itself
//! rides in the PHY model.
//!
//! ```
//! use polite_wifi_radiotap::{Radiotap, ChannelInfo};
//!
//! let hdr = Radiotap {
//!     tsft_us: Some(1_000_000),
//!     rate_500kbps: Some(2),            // 1 Mb/s, a legacy ACK rate
//!     channel: Some(ChannelInfo::ghz2(6)),
//!     antenna_signal_dbm: Some(-42),
//!     ..Radiotap::default()
//! };
//! let bytes = hdr.encode();
//! let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
//! assert_eq!(consumed, bytes.len());
//! assert_eq!(parsed.antenna_signal_dbm, Some(-42));
//! ```

mod cursor;
mod header;

pub use header::{ChannelInfo, Flags, McsInfo, Radiotap, RadiotapError};

/// Presence-bit numbers from the radiotap specification.
pub mod present_bit {
    pub const TSFT: u32 = 0;
    pub const FLAGS: u32 = 1;
    pub const RATE: u32 = 2;
    pub const CHANNEL: u32 = 3;
    pub const FHSS: u32 = 4;
    pub const ANTENNA_SIGNAL_DBM: u32 = 5;
    pub const ANTENNA_NOISE_DBM: u32 = 6;
    pub const LOCK_QUALITY: u32 = 7;
    pub const TX_ATTENUATION: u32 = 8;
    pub const TX_ATTENUATION_DB: u32 = 9;
    pub const TX_POWER_DBM: u32 = 10;
    pub const ANTENNA: u32 = 11;
    pub const ANTENNA_SIGNAL_DB: u32 = 12;
    pub const ANTENNA_NOISE_DB: u32 = 13;
    pub const RX_FLAGS: u32 = 14;
    pub const TX_FLAGS: u32 = 15;
    pub const DATA_RETRIES: u32 = 17;
    pub const MCS: u32 = 19;
    pub const RADIOTAP_NAMESPACE: u32 = 29;
    pub const VENDOR_NAMESPACE: u32 = 30;
    pub const EXT: u32 = 31;
}
