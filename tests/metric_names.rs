//! Metric-name hygiene: every counter and histogram the runtime emits
//! must be declared in `polite_wifi_obs::names::REGISTERED` (or match a
//! registered dynamic-suffix prefix like `mac.discard.<reason>`).
//!
//! Ad-hoc string literals are how dashboards silently go dark: a typo'd
//! or renamed metric keeps compiling and keeps emitting, while every
//! consumer (trace_query, the bench gate, EXPERIMENTS.md tooling) reads
//! zeros. This test drives representative scenarios through every layer
//! that records metrics — exchange + faults + retries + tracing, the
//! wardrive pipeline, power save — and asserts the union of emitted
//! names is covered by the registry.

use polite_wifi::core::{BatchSensingHub, WardriveScanner};
use polite_wifi::devices::CityPopulation;
use polite_wifi::frame::{builder, MacAddr};
use polite_wifi::mac::StationConfig;
use polite_wifi::obs::{names, Obs, ObsConfig};
use polite_wifi::phy::rate::BitRate;
use polite_wifi::sim::{FaultProfile, SimConfig, Simulator};

fn assert_registered(obs: &Obs, scenario: &str) {
    let mut rogue: Vec<String> = Vec::new();
    for (name, _) in obs.counters.sorted() {
        if !names::is_registered(name) {
            rogue.push(format!("counter `{name}`"));
        }
    }
    for (name, _) in obs.histograms.sorted() {
        if !names::is_registered(name) {
            rogue.push(format!("histogram `{name}`"));
        }
    }
    assert!(
        rogue.is_empty(),
        "{scenario} emitted metrics missing from obs::names::REGISTERED \
         (register them or fix the emitting site): {rogue:?}"
    );
}

/// Exchange traffic under the harshest fault profile, with retries,
/// tracing and a monitor dongle: covers `sim.*`, `mac.*` (including the
/// per-class turnaround histograms), `frame.fate.*` and `fault.*`.
#[test]
fn faulty_exchange_metrics_are_registered() {
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), 9);
    *sim.obs_mut() = Obs::with_config(ObsConfig::tracing());
    let _victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_monitor(attacker, true);
    sim.install_faults(&FaultProfile::FlakyDongle.plan());
    for i in 0..120u64 {
        sim.inject(
            1_000 + i * 7_000,
            attacker,
            builder::fake_null_frame(victim_mac, MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim.run_until(1_000_000);
    let obs = sim.take_obs();
    // The scenario exercised the families the registry must cover.
    assert!(obs.counters.get("sim.frames_injected") > 0);
    assert!(obs.counters.get(names::FRAME_FATE_DELIVERED) > 0);
    assert_registered(&obs, "faulty exchange");
}

/// A wardrive shard under urban-drive faults: covers `wardrive.*`,
/// `retry.*`, power-save dwell metrics and everything the scanner's
/// simulators emit along the way.
#[test]
fn wardrive_pipeline_metrics_are_registered() {
    let full = CityPopulation::table2(5);
    let slice = CityPopulation {
        devices: full.devices.iter().step_by(120).cloned().collect(),
        registry: full.registry.clone(),
    };
    let scanner = WardriveScanner {
        seed: 5,
        faults: FaultProfile::UrbanDrive,
        ..WardriveScanner::default()
    };
    let mut obs = Obs::new();
    let report = scanner.run_observed(&slice, 2, &mut obs);
    // Mirror the experiment binaries' envelope tallies so the
    // `wardrive.*` family is covered here too.
    obs.add("wardrive.discovered", report.discovered as u64);
    obs.add("wardrive.verified", report.verified as u64);
    obs.add("wardrive.clients", report.total_clients as u64);
    obs.add("wardrive.aps", report.total_aps as u64);
    assert!(obs.counters.get("sim.frames_injected") > 0);
    assert!(obs.counters.get("wardrive.discovered") > 0);
    assert_registered(&obs, "wardrive pipeline");
}

/// The live telemetry plane: every `progress.*` and `daemon.watch.*`
/// counter the daemon's flight recorder and `/watch` endpoint emit must
/// be in the registry, or `/metrics` scrapes and the CI smoke greps go
/// dark silently.
#[test]
fn telemetry_plane_metric_names_are_registered() {
    let mut obs = Obs::new();
    for name in [
        names::PROGRESS_EVENTS,
        names::PROGRESS_EVENTS_SHED,
        names::DAEMON_WATCH_SUBSCRIBED,
        names::DAEMON_WATCH_RESUMED,
        names::DAEMON_WATCH_EVENTS_STREAMED,
        names::DAEMON_WATCH_EVENTS_SHED,
        names::DAEMON_WATCH_DISCONNECTED,
        names::DAEMON_JOURNAL_PERSISTED,
        names::DAEMON_HISTORY_SAMPLES,
    ] {
        obs.incr(name);
    }
    assert_registered(&obs, "telemetry plane");
}

/// The batched sensing hub: covers the `hub.*` family and the
/// `sensing.*` tallies its batches emit.
#[test]
fn batch_sensing_hub_metrics_are_registered() {
    let hub = BatchSensingHub {
        links: 12,
        samples_per_link: 300,
        links_per_batch: 5,
        csi: polite_wifi::phy::csi::CsiConfig {
            subcarriers: 8,
            taps: 4,
            ..Default::default()
        },
        subcarrier: 3,
        ..BatchSensingHub::default()
    };
    let mut obs = Obs::new();
    let report = hub.run_observed(2, &mut obs);
    assert_eq!(obs.counters.get(names::HUB_LINKS), 12);
    assert_eq!(obs.counters.get(names::HUB_BATCHES), 3);
    assert!(obs.counters.get(names::SENSING_CSI_SAMPLES) > 0);
    assert!(report.motion_links > 0);
    assert_registered(&obs, "batch sensing hub");
}
