//! Device knowledge for the large-scale survey (paper §3, Table 2).
//!
//! * [`oui`] — an OUI→vendor registry covering every vendor Table 2
//!   names, so survey results can be attributed the same way the paper's
//!   wardriving rig attributed them,
//! * [`profile`] — per-device profiles (chipset, standard, band,
//!   behaviour), including the exact Table 1 device matrix, and
//! * [`population`] — a synthetic city population whose vendor×count
//!   marginals match Table 2 *exactly*: 1,523 clients from 147 vendors,
//!   3,805 APs from 94 vendors, 186 distinct vendors overall.

pub mod oui;
pub mod population;
pub mod profile;

pub use oui::OuiRegistry;
pub use population::{CityPopulation, DeviceSpec};
pub use profile::{DeviceProfile, Table1Device};
