//! Golden tests for every committed `scenarios/*.json` file.
//!
//! Three guarantees per file:
//!
//! 1. it parses, and [`ScenarioSpec::to_canonical_json`] reproduces the
//!    committed bytes exactly — so `exp_run --fmt` is a no-op on
//!    everything committed, and the parser/writer pair round-trips;
//! 2. its runner is registered and its file name matches its slug;
//! 3. a `--quick` run produces a byte-identical result envelope at
//!    workers 1, 4 and 8, after masking the `workers` field itself and
//!    the `wall_seconds` metric — the only legitimately
//!    timing-dependent values in an envelope.
//!
//! CI's scenario-matrix job cross-checks that every `scenarios/*.json`
//! has a `golden!(…, "<slug>")` line in this file, so a scenario can't
//! be committed without its worker-invariance pin.

use polite_wifi_obs::json::{self, JsonValue};
use polite_wifi_scenario::{runner_names, ScenarioSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn every_committed_scenario_is_canonical_and_registered() {
    let mut found = 0usize;
    for entry in std::fs::read_dir(scenarios_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            spec.to_canonical_json(),
            text,
            "{} is not in canonical form — run `exp_run --fmt` on it",
            path.display()
        );
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.slug.as_str()),
            "{}: file name and slug must agree",
            path.display()
        );
        assert!(
            runner_names().contains(&spec.runner.as_str()),
            "{}: runner `{}` is not registered",
            path.display(),
            spec.runner
        );
        found += 1;
    }
    assert!(
        found >= 20,
        "expected >= 20 committed scenarios, found {found}"
    );
}

/// Masks the two legitimately worker-dependent values in an envelope:
/// the `workers` field and the `wall_seconds` metric summary.
fn mask_worker_dependent(v: &mut JsonValue) {
    let JsonValue::Obj(fields) = v else { return };
    for (key, val) in fields.iter_mut() {
        match key.as_str() {
            "workers" => *val = JsonValue::Num(0.0),
            "metrics" => {
                let JsonValue::Arr(metrics) = val else {
                    continue;
                };
                for metric in metrics {
                    let JsonValue::Obj(mf) = metric else { continue };
                    if !mf
                        .iter()
                        .any(|(k, v)| k == "name" && v.as_str() == Some("wall_seconds"))
                    {
                        continue;
                    }
                    for (mk, mv) in mf.iter_mut() {
                        if matches!(mk.as_str(), "mean" | "min" | "max" | "total") {
                            *mv = JsonValue::Num(0.0);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Every result envelope written into `dir`, by file name, masked.
fn normalised_envelopes(dir: &Path) -> BTreeMap<String, JsonValue> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let mut v = json::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        mask_worker_dependent(&mut v);
        out.insert(path.file_name().unwrap().to_str().unwrap().to_string(), v);
    }
    out
}

fn quick_run(slug: &str, workers: u32) -> BTreeMap<String, JsonValue> {
    let dir = std::env::temp_dir().join(format!("polite-wifi-golden-{slug}-w{workers}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_exp_run"))
        .arg(scenarios_dir().join(format!("{slug}.json")))
        .args(["--quick", "--workers", &workers.to_string()])
        .env("POLITE_WIFI_RESULTS", &dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "exp_run {slug} --workers {workers} failed (exit {:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let envelopes = normalised_envelopes(&dir);
    assert!(!envelopes.is_empty(), "{slug}: no envelope written");
    let _ = std::fs::remove_dir_all(&dir);
    envelopes
}

fn workers_do_not_change_the_envelope(slug: &str) {
    let reference = quick_run(slug, 1);
    for workers in [4, 8] {
        assert_eq!(
            reference,
            quick_run(slug, workers),
            "{slug}: envelope differs between --workers 1 and --workers {workers}"
        );
    }
}

macro_rules! golden {
    ($name:ident, $slug:literal) => {
        #[test]
        fn $name() {
            workers_do_not_change_the_envelope($slug);
        }
    };
    ($name:ident, $slug:literal, ignore = $why:literal) => {
        #[test]
        #[ignore = $why]
        fn $name() {
            workers_do_not_change_the_envelope($slug);
        }
    };
}

golden!(golden_ablation_validate, "ablation_validate");
golden!(golden_battery_life, "battery_life");
golden!(golden_blockack_paralysis, "blockack_paralysis");
golden!(
    golden_city_wardrive,
    "city_wardrive",
    ignore = "minutes-long even with --quick; CI's scenario-matrix job runs it"
);
golden!(golden_ext_classifier, "ext_classifier");
golden!(
    golden_ext_driveby,
    "ext_driveby",
    ignore = "~2 min of simulated driving; CI's scenario-matrix job runs it"
);
golden!(golden_ext_nav_dos, "ext_nav_dos");
golden!(golden_ext_randomization, "ext_randomization");
golden!(golden_ext_ranging, "ext_ranging");
golden!(golden_ext_vitals, "ext_vitals");
golden!(golden_fig2_trace, "fig2_trace");
golden!(golden_fig3_deauth, "fig3_deauth");
golden!(golden_fig5_keystroke, "fig5_keystroke");
golden!(golden_fig6_power, "fig6_power");
golden!(golden_pmf_deauth_matrix, "pmf_deauth_matrix");
golden!(golden_powersave_awake, "powersave_awake");
golden!(golden_sensing_hub, "sensing_hub");
golden!(golden_sifs_timing, "sifs_timing");
golden!(golden_table1_devices, "table1_devices");
golden!(golden_table2_wardrive, "table2_wardrive");
