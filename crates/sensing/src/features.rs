//! Sliding-window features over CSI amplitude series.

use crate::filter::{mad, median};
use serde::{Deserialize, Serialize};

/// A feature vector extracted from one window of one subcarrier.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Median absolute deviation.
    pub mad: f64,
    /// Peak-to-peak amplitude.
    pub peak_to_peak: f64,
    /// Mean-crossing rate (fraction of consecutive pairs straddling the
    /// mean) — a cheap proxy for dominant frequency.
    pub mean_crossing_rate: f64,
    /// Energy of the first-difference signal (motion energy).
    pub diff_energy: f64,
}

impl FeatureVector {
    /// Euclidean distance between two feature vectors (for k-NN).
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        let d = [
            self.std_dev - other.std_dev,
            self.mad - other.mad,
            self.peak_to_peak - other.peak_to_peak,
            self.mean_crossing_rate - other.mean_crossing_rate,
            self.diff_energy - other.diff_energy,
        ];
        d.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Extracts the feature vector of one window.
pub fn extract(window: &[f64]) -> FeatureVector {
    let n = window.len();
    if n < 2 {
        return FeatureVector::default();
    }
    let mean = window.iter().sum::<f64>() / n as f64;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();

    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in window {
        min = min.min(x);
        max = max.max(x);
    }

    let crossings = window
        .windows(2)
        .filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum())
        .count();
    let mean_crossing_rate = crossings as f64 / (n - 1) as f64;

    let diff_energy = window
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        / (n - 1) as f64;

    let _ = median(window); // keep median in the hot path for the bench ablation
    FeatureVector {
        std_dev,
        mad: mad(window),
        peak_to_peak: max - min,
        mean_crossing_rate,
        diff_energy,
    }
}

/// Splits `series` into consecutive windows of `window_len` samples
/// (hopping by `hop`) and extracts features from each. Returns
/// `(window_start_index, features)` pairs. Dispatches to the one-sort
/// batched extractor unless the active [`crate::batch::BatchPolicy`] is
/// `Scalar`; both paths are bit-identical.
pub fn sliding_features(
    series: &[f64],
    window_len: usize,
    hop: usize,
) -> Vec<(usize, FeatureVector)> {
    match crate::batch::BatchPolicy::active() {
        crate::batch::BatchPolicy::Scalar => sliding_features_scalar(series, window_len, hop),
        _ => crate::batch::sliding_features_fast(series, window_len, hop),
    }
}

/// The scalar reference sliding-window extractor.
pub fn sliding_features_scalar(
    series: &[f64],
    window_len: usize,
    hop: usize,
) -> Vec<(usize, FeatureVector)> {
    let mut out = Vec::new();
    if window_len == 0 || hop == 0 || series.len() < window_len {
        return out;
    }
    let mut start = 0;
    while start + window_len <= series.len() {
        out.push((start, extract(&series[start..start + window_len])));
        start += hop;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_window_has_zero_features() {
        let f = extract(&[2.0; 64]);
        assert_eq!(f.std_dev, 0.0);
        assert_eq!(f.mad, 0.0);
        assert_eq!(f.peak_to_peak, 0.0);
        assert_eq!(f.diff_energy, 0.0);
    }

    #[test]
    fn noisy_window_has_positive_features() {
        let window: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        let f = extract(&window);
        assert!(f.std_dev > 0.1);
        assert!(f.peak_to_peak > 1.0);
        assert!(f.diff_energy > 0.0);
        assert!(f.mean_crossing_rate > 0.0);
    }

    #[test]
    fn faster_oscillation_crosses_more() {
        let slow: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let fast: Vec<f64> = (0..200).map(|i| (i as f64 * 1.0).sin()).collect();
        assert!(extract(&fast).mean_crossing_rate > extract(&slow).mean_crossing_rate);
    }

    #[test]
    fn bigger_amplitude_bigger_std() {
        let small: Vec<f64> = (0..100).map(|i| 0.1 * (i as f64).sin()).collect();
        let big: Vec<f64> = (0..100).map(|i| 2.0 * (i as f64).sin()).collect();
        assert!(extract(&big).std_dev > 10.0 * extract(&small).std_dev);
    }

    #[test]
    fn sliding_windows_cover_series() {
        let series = vec![0.0; 100];
        let feats = sliding_features(&series, 20, 10);
        assert_eq!(feats.len(), 9); // starts 0,10,...,80
        assert_eq!(feats[0].0, 0);
        assert_eq!(feats.last().unwrap().0, 80);
    }

    #[test]
    fn sliding_degenerate_inputs() {
        assert!(sliding_features(&[1.0; 5], 10, 5).is_empty());
        assert!(sliding_features(&[1.0; 5], 0, 5).is_empty());
        assert!(sliding_features(&[1.0; 5], 5, 0).is_empty());
    }

    #[test]
    fn distance_is_metric_like() {
        let a = extract(&(0..50).map(|i| (i as f64).sin()).collect::<Vec<_>>());
        let b = extract(&[0.0; 50]);
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn short_window_defaults() {
        assert_eq!(extract(&[1.0]), FeatureVector::default());
        assert_eq!(extract(&[]), FeatureVector::default());
    }
}
