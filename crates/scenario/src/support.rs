//! Display/IO helpers shared by every ported experiment.
//!
//! These lived in `polite-wifi-bench` while each experiment owned its
//! own `main`; they moved here with the experiment bodies. The bench
//! crate re-exports them, so `polite_wifi_bench::compare` et al. keep
//! working.

use serde::Serialize;
use std::io;
use std::path::PathBuf;

/// Directory experiment JSON results are written to (workspace-relative,
/// `POLITE_WIFI_RESULTS` overrides). Not created by this call — use
/// [`ensure_results_dir`] before writing into it directly.
pub fn results_dir() -> PathBuf {
    polite_wifi_harness::results_dir()
}

/// Creates the results directory (and parents) if missing and returns
/// its path. For artifacts written next to the JSON (pcaps, CSVs).
pub fn ensure_results_dir() -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Serialises an experiment result to `results/<name>.json`, creating
/// the directory if needed. Prefer `Experiment::finish`, which wraps the
/// payload in the unified envelope; this remains for bare payloads.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let path = polite_wifi_harness::write_json(name, value)?;
    println!("\n[result JSON written to {}]", path.display());
    Ok(path)
}

/// Prints a paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<12} measured: {measured}");
}

/// An ASCII bar for quick figure-shaped output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = "█".repeat(filled);
    s.push_str(&"·".repeat(width - filled));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10.0, 10), "··········");
        assert_eq!(bar(10.0, 10.0, 10), "██████████");
        assert_eq!(bar(5.0, 10.0, 10).chars().filter(|&c| c == '█').count(), 5);
        // Overflow clamps.
        assert_eq!(bar(20.0, 10.0, 4), "████");
    }
}
