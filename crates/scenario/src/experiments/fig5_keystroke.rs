//! E6 — Figure 5: CSI amplitude of ACKs reveals activity and keystrokes.
//!
//! 150 fake frames/s for 45 s against a tablet; subcarrier-17 amplitude
//! separates ground / pickup / hold / typing, and keystroke bursts are
//! individually detectable.

use crate::spec::ScenarioSpec;
use crate::support::{bar, compare};
use polite_wifi_core::KeystrokeAttack;
use polite_wifi_harness::{Experiment, RunArgs};

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let args = exp.args();
    let attack = KeystrokeAttack {
        faults: args.faults,
        ..KeystrokeAttack::figure5(exp.seed())
    };
    let result = attack.run();

    println!(
        "\nfakes: {}   ACKs measured: {}   CSI rate: {:.1} Hz (paper: 150/s)\n",
        result.fakes_sent, result.acks_measured, result.sample_rate_hz
    );
    exp.metrics
        .record("acks_measured", result.acks_measured as f64);
    exp.metrics.record("sample_rate_hz", result.sample_rate_hz);
    exp.obs.add("sim.acks_received", result.acks_measured);
    exp.obs.add(
        "sensing.keystrokes_detected",
        result.keystroke_score.0 as u64,
    );
    exp.obs.add(
        "sensing.keystroke_false_alarms",
        result.keystroke_score.2 as u64,
    );

    // Figure 5 as numbers: per-phase variability of subcarrier 17.
    let max_std = result
        .phase_stats
        .iter()
        .map(|p| p.std_dev)
        .fold(1e-9, f64::max);
    println!(
        "{:<10} {:>7}..{:<5} {:>9}  variability",
        "phase", "start", "end", "std"
    );
    for p in &result.phase_stats {
        println!(
            "{:<10} {:>6.1}s..{:<4.1}s {:>9.4}  {}",
            p.label,
            p.start_us as f64 / 1e6,
            p.end_us as f64 / 1e6,
            p.std_dev,
            bar(p.std_dev, max_std, 32)
        );
    }

    let std_of = |label: &str| {
        result
            .phase_stats
            .iter()
            .filter(|p| p.label == label)
            .map(|p| p.std_dev)
            .fold(0.0, f64::max)
    };
    let idle = std_of("idle");
    let pickup = std_of("pickup");
    let hold = std_of("hold");
    let typing = std_of("typing");

    println!();
    compare(
        "idle signal is very stable",
        "yes",
        &format!("std {idle:.4}"),
    );
    compare(
        "pickup causes large fluctuations",
        "yes",
        &format!("{:.0}x idle", pickup / idle.max(1e-9)),
    );
    compare(
        "holding vs typing are distinct",
        "yes",
        &format!("typing/hold std ratio {:.1}x", typing / hold.max(1e-9)),
    );
    let (hits, _misses, fa) = result.keystroke_score;
    compare(
        "individual keystrokes visible",
        "potentially",
        &format!(
            "{hits}/{} bursts detected, {fa} false alarms",
            result.keystrokes_truth
        ),
    );

    if args.faults.is_clean() {
        assert!(pickup > 10.0 * idle);
        assert!(typing > 1.3 * hold);
        assert!(hits * 2 >= result.keystrokes_truth);
    }

    // Keep the JSON small: drop the raw series, keep phase stats + score.
    #[derive(serde::Serialize)]
    struct Fig5Json {
        acks_measured: u64,
        sample_rate_hz: f64,
        phase_stats: Vec<polite_wifi_core::keystroke::PhaseStat>,
        keystroke_score: (usize, usize, usize),
        keystrokes_truth: usize,
    }
    exp.finish_with_status(
        &spec.slug,
        &Fig5Json {
            acks_measured: result.acks_measured,
            sample_rate_hz: result.sample_rate_hz,
            phase_stats: result.phase_stats.clone(),
            keystroke_score: result.keystroke_score,
            keystrokes_truth: result.keystrokes_truth,
        },
    )
}
