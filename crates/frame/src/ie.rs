//! Information elements (tagged parameters) in management frame bodies.

use crate::error::FrameError;
use serde::{Deserialize, Serialize};

/// Well-known element ids.
pub mod element_id {
    pub const SSID: u8 = 0;
    pub const SUPPORTED_RATES: u8 = 1;
    pub const DS_PARAMETER: u8 = 3;
    pub const TIM: u8 = 5;
    pub const COUNTRY: u8 = 7;
    pub const RSN: u8 = 48;
    pub const EXT_SUPPORTED_RATES: u8 = 50;
    pub const HT_CAPABILITIES: u8 = 45;
    pub const VENDOR_SPECIFIC: u8 = 221;
}

/// A raw information element: a one-byte id, one-byte length and up to 255
/// bytes of payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InformationElement {
    /// Element id.
    pub id: u8,
    /// Element payload (≤ 255 bytes).
    pub data: Vec<u8>,
}

impl InformationElement {
    /// Builds an element, truncating the payload at 255 bytes.
    pub fn new(id: u8, data: impl Into<Vec<u8>>) -> Self {
        let mut data = data.into();
        data.truncate(255);
        InformationElement { id, data }
    }

    /// An SSID element. The standard caps SSIDs at 32 bytes.
    pub fn ssid(name: &str) -> Self {
        let mut bytes = name.as_bytes().to_vec();
        bytes.truncate(32);
        InformationElement::new(element_id::SSID, bytes)
    }

    /// A Supported Rates element from rates in units of 500 kb/s, with the
    /// basic-rate bit pre-applied by the caller.
    pub fn supported_rates(rates: &[u8]) -> Self {
        InformationElement::new(element_id::SUPPORTED_RATES, rates.to_vec())
    }

    /// A DS Parameter Set element carrying the current channel.
    pub fn ds_parameter(channel: u8) -> Self {
        InformationElement::new(element_id::DS_PARAMETER, vec![channel])
    }

    /// A minimal Traffic Indication Map element.
    ///
    /// Power-save stations wake for beacons and inspect the TIM to learn
    /// whether the AP buffers traffic for them — the state machine the
    /// battery-drain attack (Section 4.2) prevents from ever dozing.
    pub fn tim(dtim_count: u8, dtim_period: u8, bitmap_ctrl: u8, bitmap: &[u8]) -> Self {
        let mut data = vec![dtim_count, dtim_period, bitmap_ctrl];
        data.extend_from_slice(bitmap);
        InformationElement::new(element_id::TIM, data)
    }

    /// A minimal WPA2 (RSN) element advertising CCMP + PSK. Its presence in
    /// beacons marks the network as "private, secured" — which the paper
    /// shows is irrelevant to whether fake frames get acknowledged.
    pub fn rsn_wpa2_psk() -> Self {
        let data = vec![
            0x01, 0x00, // RSN version 1
            0x00, 0x0f, 0xac, 0x04, // group cipher: CCMP-128
            0x01, 0x00, // 1 pairwise cipher
            0x00, 0x0f, 0xac, 0x04, // CCMP-128
            0x01, 0x00, // 1 AKM
            0x00, 0x0f, 0xac, 0x02, // PSK
            0x00, 0x00, // RSN capabilities
        ];
        InformationElement::new(element_id::RSN, data)
    }

    /// An RSN element identical to [`rsn_wpa2_psk`](Self::rsn_wpa2_psk) but
    /// with the Management Frame Protection Capable/Required bits set
    /// (802.11w). The paper's footnote 2: PMF protects *management* frames,
    /// yet control frames — and therefore CTS-elicitation — stay exposed.
    pub fn rsn_wpa2_psk_pmf() -> Self {
        let mut ie = Self::rsn_wpa2_psk();
        let n = ie.data.len();
        // RSN capabilities: MFPR (bit 6) | MFPC (bit 7) in the first byte.
        ie.data[n - 2] = 0xc0;
        ie
    }

    /// True when this RSN element advertises management-frame protection.
    pub fn rsn_has_pmf(&self) -> bool {
        self.id == element_id::RSN
            && self.data.len() >= 2
            && self.data[self.data.len() - 2] & 0x80 != 0
    }

    /// Encoded length including the 2-byte header.
    pub fn encoded_len(&self) -> usize {
        2 + self.data.len()
    }

    /// Appends the encoded element to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.id);
        out.push(self.data.len() as u8);
        out.extend_from_slice(&self.data);
    }

    /// Parses every element in `buf` until it is exhausted.
    pub fn parse_all(buf: &[u8]) -> Result<Vec<InformationElement>, FrameError> {
        let mut elements = Vec::new();
        let mut rest = buf;
        while !rest.is_empty() {
            if rest.len() < 2 {
                return Err(FrameError::Truncated {
                    context: "information element header",
                    needed: 2,
                    available: rest.len(),
                });
            }
            let id = rest[0];
            let len = rest[1] as usize;
            if rest.len() < 2 + len {
                return Err(FrameError::BadElementLength {
                    id,
                    declared: len,
                    available: rest.len() - 2,
                });
            }
            elements.push(InformationElement {
                id,
                data: rest[2..2 + len].to_vec(),
            });
            rest = &rest[2 + len..];
        }
        Ok(elements)
    }

    /// Finds the first element with the given id.
    pub fn find(elements: &[InformationElement], id: u8) -> Option<&InformationElement> {
        elements.iter().find(|e| e.id == id)
    }

    /// Decodes an SSID element's payload as UTF-8 (lossy).
    pub fn ssid_string(&self) -> Option<String> {
        if self.id == element_id::SSID {
            Some(String::from_utf8_lossy(&self.data).into_owned())
        } else {
            None
        }
    }
}

/// Encodes a slice of elements back-to-back.
pub fn encode_all(elements: &[InformationElement]) -> Vec<u8> {
    let total: usize = elements.iter().map(|e| e.encoded_len()).sum();
    let mut out = Vec::with_capacity(total);
    for e in elements {
        e.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssid_round_trip() {
        let ies = vec![
            InformationElement::ssid("HomeNet"),
            InformationElement::ds_parameter(6),
        ];
        let bytes = encode_all(&ies);
        let parsed = InformationElement::parse_all(&bytes).unwrap();
        assert_eq!(parsed, ies);
        assert_eq!(parsed[0].ssid_string().as_deref(), Some("HomeNet"));
    }

    #[test]
    fn ssid_capped_at_32_bytes() {
        let long = "x".repeat(100);
        let ie = InformationElement::ssid(&long);
        assert_eq!(ie.data.len(), 32);
    }

    #[test]
    fn overrunning_length_rejected() {
        // id=0, len=10, but only 2 payload bytes present.
        let err = InformationElement::parse_all(&[0, 10, 1, 2]).unwrap_err();
        assert!(matches!(err, FrameError::BadElementLength { id: 0, .. }));
    }

    #[test]
    fn dangling_header_rejected() {
        assert!(InformationElement::parse_all(&[0]).is_err());
    }

    #[test]
    fn empty_body_is_no_elements() {
        assert!(InformationElement::parse_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn rsn_pmf_bit_detected() {
        assert!(!InformationElement::rsn_wpa2_psk().rsn_has_pmf());
        assert!(InformationElement::rsn_wpa2_psk_pmf().rsn_has_pmf());
    }

    #[test]
    fn find_locates_by_id() {
        let ies = vec![
            InformationElement::ssid("a"),
            InformationElement::rsn_wpa2_psk(),
        ];
        assert!(InformationElement::find(&ies, element_id::RSN).is_some());
        assert!(InformationElement::find(&ies, element_id::TIM).is_none());
    }

    #[test]
    fn tim_layout() {
        let ie = InformationElement::tim(0, 3, 0, &[0x02]);
        assert_eq!(ie.data, vec![0, 3, 0, 0x02]);
    }

    #[test]
    fn oversized_payload_truncated() {
        let ie = InformationElement::new(221, vec![0u8; 300]);
        assert_eq!(ie.data.len(), 255);
    }
}
