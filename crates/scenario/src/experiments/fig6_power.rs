//! E7 — Figure 6: power consumption vs fake-frame rate.
//!
//! Sweeps injection rates against an ESP8266 in power-save mode and
//! checks the paper's three anchors: ~10 mW idle, ~230 mW past the
//! 10 pps knee, ~360 mW at 900 pps (a 35× increase). With `--trials N`
//! the sweep repeats on N derived seeds (fanned over the worker pool)
//! and the anchors are checked on the Monte-Carlo means.

use crate::spec::ScenarioSpec;
use crate::support::{bar, compare};
use polite_wifi_core::{BatteryDrainAttack, DrainMeasurement};
use polite_wifi_harness::{Experiment, RunArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Json {
    rates_pps: Vec<u32>,
    mean_power_mw: Vec<f64>,
    mean_sleep_fraction: Vec<f64>,
    first_trial: Vec<DrainMeasurement>,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();

    let rates = [
        0u32, 1, 2, 5, 8, 10, 15, 20, 50, 100, 200, 300, 500, 700, 900,
    ];
    let sweeps: Vec<_> = exp
        .run_trials(|t| BatteryDrainAttack::sweep_with_faults(&rates, t.seed, args.faults))
        .into_iter()
        .flatten()
        .collect();
    if sweeps.is_empty() {
        println!("\n(every trial degraded — writing a failure-only envelope)");
        return exp.finish_with_status(
            &spec.slug,
            &Fig6Json {
                rates_pps: rates.to_vec(),
                mean_power_mw: Vec::new(),
                mean_sleep_fraction: Vec::new(),
                first_trial: Vec::new(),
            },
        );
    }

    for sweep in &sweeps {
        for m in sweep {
            exp.obs.add("sim.acks_received", m.acks_sent);
            polite_wifi_power::observe::record_state_durations(
                &mut exp.obs,
                "power.victim",
                &m.durations,
            );
        }
    }
    let n = sweeps.len() as f64;
    let mean_power: Vec<f64> = (0..rates.len())
        .map(|ri| sweeps.iter().map(|s| s[ri].average_power_mw).sum::<f64>() / n)
        .collect();
    let mean_sleep: Vec<f64> = (0..rates.len())
        .map(|ri| sweeps.iter().map(|s| s[ri].sleep_fraction).sum::<f64>() / n)
        .collect();
    for (ri, &rate) in rates.iter().enumerate() {
        exp.metrics
            .record(&format!("power_mw_at_{rate}pps"), mean_power[ri]);
    }

    println!("\n{:>8} {:>10} {:>8}  power", "pps", "mW", "sleep%");
    for (ri, &rate) in rates.iter().enumerate() {
        println!(
            "{:>8} {:>10.1} {:>8.1}  {}",
            rate,
            mean_power[ri],
            mean_sleep[ri] * 100.0,
            bar(mean_power[ri], 400.0, 36)
        );
    }

    let at = |pps: u32| {
        let ri = rates.iter().position(|&r| r == pps).expect("rate measured");
        mean_power[ri]
    };
    let baseline = at(0);
    let knee = at(20);
    let top = at(900);

    println!();
    compare(
        "no attack (power save works)",
        "~10 mW",
        &format!("{baseline:.1} mW"),
    );
    compare(
        ">10 pps keeps the radio on",
        "~230 mW",
        &format!("{knee:.1} mW @ 20 pps"),
    );
    compare("900 pps", "~360 mW", &format!("{top:.1} mW"));
    compare("increase factor", "35x", &format!("{:.0}x", top / baseline));

    // Linearity above the knee, as the paper notes.
    let slope1 = (at(500) - at(100)) / 400.0;
    let slope2 = (at(900) - at(500)) / 400.0;
    compare(
        "power grows linearly with rate",
        "yes",
        &format!("slopes {:.3} / {:.3} mW per pps", slope1, slope2),
    );

    if args.faults.is_clean() {
        assert!((5.0..20.0).contains(&baseline), "baseline {baseline}");
        assert!((200.0..260.0).contains(&knee), "knee {knee}");
        assert!((320.0..400.0).contains(&top), "top {top}");
        let factor = top / baseline;
        assert!((20.0..50.0).contains(&factor), "factor {factor}");
        assert!(
            (slope1 - slope2).abs() < 0.08,
            "not linear: {slope1} vs {slope2}"
        );
    }

    let first_trial = sweeps.into_iter().next().expect("at least one trial");
    exp.finish_with_status(
        &spec.slug,
        &Fig6Json {
            rates_pps: rates.to_vec(),
            mean_power_mw: mean_power,
            mean_sleep_fraction: mean_sleep,
            first_trial,
        },
    )
}
