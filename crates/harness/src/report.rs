//! The experiment facade and unified result schema.
//!
//! Every experiment binary follows the same lifecycle:
//!
//! ```text
//! let mut exp = Experiment::start("E1: ...", "Figure 2 of ...");
//! // ... run trials via exp.args() / exp.runner(), record into
//! //     exp.metrics ...
//! exp.finish("fig2_trace", &payload)?;   // prints + writes results/fig2_trace.json
//! ```
//!
//! [`Experiment::finish`] writes one JSON document with a fixed
//! envelope — experiment name, paper reference, seed, trial/worker
//! counts, metric summaries — and the experiment-specific payload under
//! `payload`. Consumers (EXPERIMENTS.md tooling, plots) can rely on the
//! envelope without knowing any experiment's payload shape.

use crate::ledger::{MetricSummary, MetricsLedger};
use crate::progress::{self, ProgressSample, ProgressSink, StderrProgress};
use crate::runner::{RunArgs, Runner, TrialCtx, TrialFailure};
use crate::sink;
use polite_wifi_obs::{names, Obs, ObsConfig};
use serde::Serialize;
use serde_json::Value;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Per-thread results-directory override. The daemon runs many jobs
    /// in one process; a process-wide env var would race, so each job
    /// thread redirects its own envelope writes instead.
    static RESULTS_DIR_OVERRIDE: std::cell::RefCell<Option<PathBuf>> =
        const { std::cell::RefCell::new(None) };
}

/// Redirects (or, with `None`, stops redirecting) this thread's result
/// writes to `dir`. Returns the previous override so scoped callers can
/// restore it. Trial closures never write results, so overriding on the
/// thread that calls [`Experiment::finish_with_status`] is sufficient.
pub fn set_thread_results_dir(dir: Option<PathBuf>) -> Option<PathBuf> {
    RESULTS_DIR_OVERRIDE.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), dir))
}

/// Directory experiment JSON results are written to: the thread-local
/// override ([`set_thread_results_dir`]) if installed, else the
/// `POLITE_WIFI_RESULTS` env var, else `results/`. Created on demand by
/// [`write_json`].
pub fn results_dir() -> PathBuf {
    if let Some(dir) = RESULTS_DIR_OVERRIDE.with(|cell| cell.borrow().clone()) {
        return dir;
    }
    std::env::var("POLITE_WIFI_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Serialises a value to `results/<name>.json`, creating the directory
/// if needed. Returns the path written.
///
/// The write is atomic (temp file in the same directory, then rename):
/// a run killed mid-write — or two runs racing on the same slug — never
/// leaves a truncated half-document where consumers expect JSON.
pub fn write_json<T: Serialize + ?Sized>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, json)?;
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The fixed envelope every experiment result is written in.
#[derive(Serialize)]
struct ReportEnvelope {
    experiment: String,
    paper_ref: String,
    seed: u64,
    trials: u64,
    workers: u64,
    quick: bool,
    faults: String,
    metrics: Vec<MetricSummary>,
    trial_failures: Vec<TrialFailure>,
    obs: Value,
    payload: Value,
}

/// Lowers an observability scope into the envelope's `obs` field:
/// counters and histograms in sorted-name order (matching
/// [`Obs::metrics_json`], so the envelope inherits its byte-stability
/// across worker counts).
fn obs_value(obs: &Obs) -> Value {
    let counters: Vec<(String, Value)> = obs
        .counters
        .sorted()
        .into_iter()
        .map(|(name, v)| (name.to_string(), Value::UInt(v)))
        .collect();
    let histograms: Vec<(String, Value)> = obs
        .histograms
        .sorted()
        .into_iter()
        .map(|(name, h)| {
            let buckets: Vec<(String, Value)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i.to_string(), Value::UInt(*n)))
                .collect();
            (
                name.to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(h.count)),
                    ("sum".to_string(), Value::UInt(h.sum)),
                    (
                        "min".to_string(),
                        Value::UInt(if h.count == 0 { 0 } else { h.min }),
                    ),
                    ("max".to_string(), Value::UInt(h.max)),
                    ("buckets".to_string(), Value::Object(buckets)),
                ]),
            )
        })
        .collect();
    // Scheduler self-profiler attribution: count and *virtual-time*
    // totals only. Wall-clock stats are machine-dependent and stay out
    // of the envelope (they surface on stderr; see `finish_with_status`),
    // so the byte-identical-across-workers guarantee holds.
    let profiler: Vec<(String, Value)> = obs
        .profiler
        .sorted()
        .into_iter()
        .map(|(kind, stat)| {
            (
                kind.to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(stat.count)),
                    ("virt_total_us".to_string(), Value::UInt(stat.virt_total_us)),
                    ("virt_max_us".to_string(), Value::UInt(stat.virt_max_us)),
                ]),
            )
        })
        .collect();
    // Sampled causal frame timelines (inject → tx → medium fate → SIFS
    // response → verify), already deterministic: trace IDs are injection
    // ordinals and sampling is a pure function of (seed, id).
    let frame_traces: Vec<Value> = obs
        .traces
        .traces()
        .iter()
        .map(|t| {
            let hops: Vec<Value> = t
                .hops
                .iter()
                .map(|h| {
                    Value::Object(vec![
                        ("ts_us".to_string(), Value::UInt(h.ts_us)),
                        ("node".to_string(), Value::UInt(h.node)),
                        ("kind".to_string(), Value::String(h.kind.clone())),
                        ("arg".to_string(), Value::UInt(h.arg)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("trace_id".to_string(), Value::UInt(t.trace_id)),
                ("group".to_string(), Value::UInt(t.group)),
                ("hops".to_string(), Value::Array(hops)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("counters".to_string(), Value::Object(counters)),
        ("histograms".to_string(), Value::Object(histograms)),
        ("profiler".to_string(), Value::Object(profiler)),
        ("frame_traces".to_string(), Value::Array(frame_traces)),
        ("spans_dropped".to_string(), Value::UInt(obs.spans.dropped)),
        ("events_evicted".to_string(), Value::UInt(obs.ring.evicted)),
        (
            "traces_dropped".to_string(),
            Value::UInt(obs.traces.dropped_traces),
        ),
        (
            "hops_dropped".to_string(),
            Value::UInt(obs.traces.dropped_hops),
        ),
    ])
}

/// Lifecycle handle for one experiment run.
pub struct Experiment {
    name: String,
    paper_ref: String,
    args: RunArgs,
    /// Experiment-level metric accumulators, summarised into the JSON
    /// envelope on [`finish`](Self::finish).
    pub metrics: MetricsLedger,
    /// The experiment's merged observability scope: per-trial snapshots
    /// [`absorb_obs`](Self::absorb_obs)ed in trial order plus anything
    /// recorded directly. Embedded in the envelope and, when
    /// `--trace-out` was given, exported as a Chrome trace on finish.
    pub obs: Obs,
    absorbed: u64,
    started: Instant,
    /// Progress consumers driven at trial boundaries: always the
    /// stderr sink (byte-exact `--progress` behaviour), plus this
    /// thread's installed sink when the daemon (or a test) registered
    /// one via [`progress::set_thread_progress_sink`] before start.
    sinks: Vec<Arc<dyn ProgressSink>>,
    trial_failures: Vec<TrialFailure>,
    quarantined: u64,
}

impl Experiment {
    /// Starts an experiment: prints the standard header and parses the
    /// shared `--trials/--workers/--seed/--quick` flags from the
    /// process arguments (exiting with a usage message on bad input).
    pub fn start(name: &str, paper_ref: &str) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(RunArgs::default()))
    }

    /// Starts an experiment with experiment-specific default arguments
    /// (still overridable from the command line).
    pub fn start_defaults(name: &str, paper_ref: &str, defaults: RunArgs) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(defaults))
    }

    /// Starts an experiment with fully explicit arguments (for tests).
    pub fn start_with(name: &str, paper_ref: &str, args: RunArgs) -> Experiment {
        sink::set_quiet(args.quiet);
        // Span recording costs memory; only turn it on when the run will
        // actually export a trace. First install wins process-wide (so a
        // test driving several experiments keeps one consistent config).
        polite_wifi_obs::install(ObsConfig {
            spans: args.trace_out.is_some(),
            ..ObsConfig::default()
        });
        println!("{}", "=".repeat(72));
        println!("{name}");
        println!("reproduces: {paper_ref}");
        println!(
            "seed {}   trials {}   workers {}   faults {}{}",
            args.seed,
            args.trials,
            args.workers,
            args.faults,
            if args.quick { "   (quick)" } else { "" }
        );
        println!("{}", "=".repeat(72));
        let mut sinks: Vec<Arc<dyn ProgressSink>> =
            vec![Arc::new(StderrProgress::new(args.progress))];
        if let Some(sink) = progress::thread_progress_sink() {
            sinks.push(sink);
        }
        Experiment {
            name: name.to_string(),
            paper_ref: paper_ref.to_string(),
            args,
            metrics: MetricsLedger::new(),
            obs: Obs::new(),
            absorbed: 0,
            started: Instant::now(),
            sinks,
            trial_failures: Vec::new(),
            quarantined: 0,
        }
    }

    /// The parsed run arguments.
    pub fn args(&self) -> RunArgs {
        self.args.clone()
    }

    /// Folds one trial's observability snapshot (usually
    /// `scenario.sim.take_obs()`) into the experiment scope, tagging its
    /// spans with the absorb index. **Call in trial order** — the runner
    /// returns per-trial results index-sorted, so iterating those and
    /// absorbing as you go preserves the byte-identical-across-workers
    /// guarantee.
    pub fn absorb_obs(&mut self, snapshot: Obs) {
        self.obs.absorb(&snapshot, self.absorbed);
        self.absorbed += 1;
        let elapsed = self.started.elapsed().as_secs_f64();
        let (obs, absorbed) = (&self.obs, self.absorbed);
        let render = || {
            let per_sec = |n: u64| {
                if elapsed > 0.0 {
                    n as f64 / elapsed
                } else {
                    0.0
                }
            };
            ProgressSample {
                trials_absorbed: absorbed,
                frames_per_sec: per_sec(obs.counters.get("sim.frames_txed")),
                events_per_sec: per_sec(obs.counters.get(names::SIM_EVENTS_DISPATCHED)),
                cells_occupied: obs.counters.get(names::SIM_CELLS_OCCUPIED),
                delivered: obs.counters.get(names::FRAME_FATE_DELIVERED),
                fer_dropped: obs.counters.get(names::FRAME_FATE_FER_DROPPED),
                collided: obs.counters.get(names::FRAME_FATE_COLLIDED),
                stalled: obs.counters.get(names::FRAME_FATE_STALL_SWALLOWED),
            }
        };
        for sink in &self.sinks {
            sink.sample(&render);
        }
    }

    /// Base seed for this run.
    pub fn seed(&self) -> u64 {
        self.args.seed
    }

    /// A worker pool sized from `--workers`.
    pub fn runner(&self) -> Runner {
        self.args.runner()
    }

    /// Runs this experiment's `--trials` trials across its `--workers`
    /// pool with graceful degradation: a panicking trial yields `None`
    /// in its slot and a recorded [`TrialFailure`] instead of killing
    /// the run. Honours `--inject-trial-panic` (the deterministic chaos
    /// hook the degradation tests drive).
    pub fn run_trials<T, F>(&mut self, trial: F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        let inject = self.args.inject_trial_panic;
        let total = self.args.trials;
        let done = AtomicUsize::new(0);
        let sinks = &self.sinks;
        let (results, failures) =
            self.runner()
                .run_trials_checked(self.args.seed, self.args.trials, |ctx| {
                    // Cooperative cancellation checkpoint: a raised
                    // token degrades the remaining trials into
                    // deterministic TrialFailures instead of letting a
                    // timed-out job run to the bitter end.
                    crate::cancel::check_cancelled();
                    for sink in sinks {
                        sink.trial_started(ctx.index, total);
                    }
                    if Some(ctx.index) == inject {
                        panic!("injected trial panic (--inject-trial-panic {})", ctx.index);
                    }
                    let out = trial(ctx);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    for sink in sinks {
                        sink.trial_finished(finished, total);
                    }
                    out
                });
        self.note_trial_failures(failures);
        results
    }

    /// Records trials that degraded gracefully (for experiments driving
    /// [`Runner::run_trials_checked`] themselves). Counted into the obs
    /// scope and listed in the envelope's `trial_failures`.
    pub fn note_trial_failures(&mut self, failures: Vec<TrialFailure>) {
        if failures.is_empty() {
            return;
        }
        self.obs
            .add(names::HARNESS_TRIAL_FAILURES, failures.len() as u64);
        for failure in &failures {
            sink::diag(&format!(
                "[trial {} (seed {}) degraded: {}]",
                failure.trial, failure.seed, failure.detail
            ));
            for sink in &self.sinks {
                sink.trial_failed(failure.trial as usize, &failure.detail);
            }
        }
        self.trial_failures.extend(failures);
    }

    /// Records quarantined targets (e.g. [`ScanReport::quarantined`]
    /// from the wardrive pipeline — the scanner counts them, the
    /// harness owns the exit policy).
    ///
    /// [`ScanReport::quarantined`]: https://docs.rs/polite-wifi-core
    pub fn note_quarantined(&mut self, count: u64) {
        self.quarantined += count;
    }

    /// The trial failures recorded so far.
    pub fn trial_failures(&self) -> &[TrialFailure] {
        &self.trial_failures
    }

    /// Finishes the experiment and exits the process non-zero when the
    /// run degraded beyond what the flags allow (see
    /// [`finish_with_status`](Self::finish_with_status)).
    pub fn finish<T: Serialize>(self, slug: &str, payload: &T) -> io::Result<()> {
        let status = self.finish_with_status(slug, payload)?;
        if status != 0 {
            std::process::exit(status);
        }
        Ok(())
    }

    /// Finishes the experiment: merges the payload into the unified
    /// envelope, writes `results/<slug>.json`, prints where, and
    /// returns the process exit status the degradation contract calls
    /// for — `0` for a full result, `1` when trial failures exceed the
    /// `--max-trial-failures` budget (always fatal), or when anything
    /// degraded (failed trials, quarantined targets) without
    /// `--allow-partial`.
    pub fn finish_with_status<T: Serialize>(self, slug: &str, payload: &T) -> io::Result<i32> {
        let envelope = ReportEnvelope {
            experiment: self.name,
            paper_ref: self.paper_ref,
            seed: self.args.seed,
            trials: self.args.trials as u64,
            workers: self.args.workers as u64,
            quick: self.args.quick,
            faults: self.args.faults.name().to_string(),
            metrics: self.metrics.summaries(),
            trial_failures: self.trial_failures.clone(),
            obs: obs_value(&self.obs),
            payload: serde_json::to_value(payload).map_err(io::Error::other)?,
        };
        let path = write_json(slug, &envelope)?;
        if let Some(trace_path) = &self.args.trace_out {
            if let Some(dir) = trace_path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(trace_path, self.obs.chrome_trace_json())?;
            println!(
                "[chrome trace written to {} — open in chrome://tracing or ui.perfetto.dev]",
                trace_path.display()
            );
        }
        println!(
            "\n[result JSON written to {} in {:.2}s]",
            path.display(),
            self.started.elapsed().as_secs_f64()
        );

        // End-of-run self-profile: where the scheduler's *wall* time went.
        // Stderr-only by design — wall numbers are machine-dependent and
        // must never leak into the canonical envelope above.
        if !self.obs.profiler.is_empty() {
            let mut entries: Vec<_> = self.obs.profiler.sorted();
            entries.sort_by_key(|e| std::cmp::Reverse(e.1.wall_total_ns));
            let mut line = String::from("[self-profile, wall]");
            for (kind, stat) in entries.iter().take(5) {
                line.push_str(&format!(
                    " {kind} {:.1}ms/{}ev",
                    stat.wall_total_ns as f64 / 1e6,
                    stat.count
                ));
            }
            sink::diag(&line);
        }

        let failures = self.trial_failures.len();
        let over_budget = self
            .args
            .max_trial_failures
            .is_some_and(|budget| failures > budget);
        let degraded = failures > 0 || self.quarantined > 0;
        if over_budget {
            // A budget violation fails the run; it must print even
            // under --quiet.
            sink::alert(&format!(
                "[{failures} trial failure(s) exceed --max-trial-failures {}]",
                self.args.max_trial_failures.unwrap_or(0)
            ));
            return Ok(1);
        }
        if degraded {
            let msg = format!(
                "[partial result: {failures} trial failure(s), {} quarantined target(s){}]",
                self.quarantined,
                if self.args.allow_partial {
                    " — accepted by --allow-partial"
                } else {
                    " — pass --allow-partial to accept"
                }
            );
            if self.args.allow_partial {
                sink::diag(&msg);
            } else {
                sink::alert(&msg);
                return Ok(1);
            }
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::derive_trial_seed;
    use polite_wifi_sim::FaultProfile;

    struct ResultsDirGuard(Option<String>);

    impl ResultsDirGuard {
        fn set(dir: &std::path::Path) -> ResultsDirGuard {
            let old = std::env::var("POLITE_WIFI_RESULTS").ok();
            std::env::set_var("POLITE_WIFI_RESULTS", dir);
            ResultsDirGuard(old)
        }
    }

    impl Drop for ResultsDirGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(old) => std::env::set_var("POLITE_WIFI_RESULTS", old),
                None => std::env::remove_var("POLITE_WIFI_RESULTS"),
            }
        }
    }

    #[derive(Serialize)]
    struct Payload {
        acks: u64,
    }

    #[test]
    fn finish_writes_unified_envelope() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        let args = RunArgs {
            trials: 3,
            workers: 2,
            seed: 11,
            quick: true,
            ..RunArgs::default()
        };
        let mut exp = Experiment::start_with("E0: smoke", "none", args);
        exp.metrics.record("acks", 5.0);
        exp.obs.add("sim.frames_injected", 9);
        exp.obs.observe("mac.ack_turnaround_us", 10);
        exp.finish("smoke", &Payload { acks: 5 }).unwrap();

        let written = std::fs::read_to_string(dir.join("smoke.json")).unwrap();
        for needle in [
            "\"experiment\": \"E0: smoke\"",
            "\"seed\": 11",
            "\"trials\": 3",
            "\"workers\": 2",
            "\"quick\": true",
            "\"faults\": \"clean\"",
            "\"trial_failures\": []",
            "\"name\": \"acks\"",
            "\"obs\": {",
            "\"sim.frames_injected\": 9",
            "\"mac.ack_turnaround_us\": {",
            "\"payload\": {",
            "\"acks\": 5",
        ] {
            assert!(written.contains(needle), "missing {needle} in:\n{written}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_degrades_into_the_envelope_and_exit_status() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-degrade-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        let run = |allow_partial: bool, max_trial_failures: Option<usize>| {
            let args = RunArgs {
                trials: 4,
                workers: 2,
                seed: 77,
                faults: FaultProfile::UrbanDrive,
                inject_trial_panic: Some(2),
                allow_partial,
                max_trial_failures,
                ..RunArgs::default()
            };
            let mut exp = Experiment::start_with("E0: degrade", "none", args);
            let results = exp.run_trials(|ctx| ctx.index as u64);
            assert_eq!(results, vec![Some(0), Some(1), None, Some(3)]);
            assert_eq!(exp.trial_failures().len(), 1);
            assert_eq!(exp.trial_failures()[0].trial, 2);
            assert_eq!(exp.trial_failures()[0].seed, derive_trial_seed(77, 2));
            assert!(exp.trial_failures()[0]
                .detail
                .contains("injected trial panic (--inject-trial-panic 2)"));
            assert_eq!(exp.obs.counters.get(names::HARNESS_TRIAL_FAILURES), 1);
            exp.finish_with_status("degrade", &Payload { acks: 0 })
                .unwrap()
        };

        // A failed trial without --allow-partial is an error exit...
        assert_eq!(run(false, None), 1);
        // ...accepted with --allow-partial while within budget...
        assert_eq!(run(true, None), 0);
        assert_eq!(run(true, Some(1)), 0);
        // ...but a blown --max-trial-failures budget is always fatal.
        assert_eq!(run(true, Some(0)), 1);

        // The failure is recorded in the envelope, not just the status.
        let written = std::fs::read_to_string(dir.join("degrade.json")).unwrap();
        for needle in [
            "\"faults\": \"urban-drive\"",
            "\"trial\": 2",
            "\"kind\": \"panic\"",
            "injected trial panic (--inject-trial-panic 2)",
        ] {
            assert!(written.contains(needle), "missing {needle} in:\n{written}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_targets_fail_the_run_unless_partial_is_allowed() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-quarantine-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        let run = |allow_partial: bool, quarantined: u64| {
            let args = RunArgs {
                allow_partial,
                ..RunArgs::default()
            };
            let mut exp = Experiment::start_with("E0: quarantine", "none", args);
            exp.note_quarantined(quarantined);
            exp.finish_with_status("quarantine", &Payload { acks: 0 })
                .unwrap()
        };
        assert_eq!(run(false, 0), 0);
        assert_eq!(run(false, 3), 1);
        assert_eq!(run(true, 3), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_leaves_no_tmp_files_behind() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-atomic-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        write_json("atomic", &Payload { acks: 1 }).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["atomic.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_obs_merges_in_trial_order() {
        let mut exp = Experiment::start_with("E0: obs", "none", RunArgs::default());
        let mut t0 = Obs::new();
        t0.add("sim.acks_received", 2);
        let mut t1 = Obs::new();
        t1.add("sim.acks_received", 3);
        t1.observe("sim.exchange_rtt_us", 730);
        exp.absorb_obs(t0);
        exp.absorb_obs(t1);
        assert_eq!(exp.obs.counters.get("sim.acks_received"), 5);
        assert_eq!(
            exp.obs.histograms.get("sim.exchange_rtt_us").unwrap().count,
            1
        );
    }

    #[test]
    fn trace_out_writes_a_chrome_trace() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);
        let trace_path = dir.join("trace.json");

        let args = RunArgs {
            trace_out: Some(trace_path.clone()),
            ..RunArgs::default()
        };
        let mut exp = Experiment::start_with("E0: trace", "none", args);
        // Span recording may be off process-wide (another test installed
        // the default config first), but the trace file must exist and
        // be valid either way.
        exp.obs.add("sim.frames_injected", 1);
        exp.finish("trace_smoke", &Payload { acks: 0 }).unwrap();

        let written = std::fs::read_to_string(&trace_path).unwrap();
        let parsed = polite_wifi_obs::json::parse(&written).unwrap();
        assert!(parsed.get("traceEvents").unwrap().as_array().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
