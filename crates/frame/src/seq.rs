//! The Sequence Control field and the sequence-number counter.

use crate::error::FrameError;
use serde::{Deserialize, Serialize};

/// The 16-bit Sequence Control field: a 4-bit fragment number and a 12-bit
/// sequence number.
///
/// Receivers use `(transmitter, seq, frag)` tuples for duplicate detection —
/// which is also how the paper's AP in Figure 3 keeps re-sending
/// deauthentication frames with the *same* sequence number (retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SequenceControl {
    /// 4-bit fragment number.
    pub fragment: u8,
    /// 12-bit sequence number (0..=4095).
    pub sequence: u16,
}

impl SequenceControl {
    /// Builds a sequence-control value, masking fields to their widths.
    pub fn new(sequence: u16, fragment: u8) -> Self {
        SequenceControl {
            fragment: fragment & 0x0f,
            sequence: sequence & 0x0fff,
        }
    }

    /// Decodes from the two on-air bytes (little-endian).
    pub fn parse(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 2 {
            return Err(FrameError::Truncated {
                context: "sequence control",
                needed: 2,
                available: buf.len(),
            });
        }
        let raw = u16::from_le_bytes([buf[0], buf[1]]);
        Ok(SequenceControl {
            fragment: (raw & 0x0f) as u8,
            sequence: raw >> 4,
        })
    }

    /// Encodes to the two on-air bytes.
    pub fn encode(&self) -> [u8; 2] {
        let raw = ((self.sequence & 0x0fff) << 4) | (self.fragment as u16 & 0x0f);
        raw.to_le_bytes()
    }
}

/// A per-transmitter modulo-4096 sequence-number counter.
#[derive(Debug, Clone, Default)]
pub struct SequenceCounter {
    next: u16,
}

impl SequenceCounter {
    /// Starts counting from zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts counting from an arbitrary point (useful for reproducing
    /// captures such as Figure 3's SN=3275).
    pub fn starting_at(seq: u16) -> Self {
        SequenceCounter { next: seq & 0x0fff }
    }

    /// Returns the current sequence number and advances, wrapping at 4096.
    pub fn take(&mut self) -> u16 {
        let seq = self.next;
        self.next = (self.next + 1) & 0x0fff;
        seq
    }

    /// Peeks at the value the next `take` will return.
    pub fn peek(&self) -> u16 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let sc = SequenceControl::new(3275, 0);
        assert_eq!(SequenceControl::parse(&sc.encode()).unwrap(), sc);
    }

    #[test]
    fn field_packing_layout() {
        // seq=1, frag=0 => raw 0x0010 little-endian [0x10, 0x00]
        assert_eq!(SequenceControl::new(1, 0).encode(), [0x10, 0x00]);
        // frag occupies the low nibble
        assert_eq!(SequenceControl::new(0, 5).encode(), [0x05, 0x00]);
    }

    #[test]
    fn masks_out_of_range_values() {
        let sc = SequenceControl::new(0xffff, 0xff);
        assert_eq!(sc.sequence, 0x0fff);
        assert_eq!(sc.fragment, 0x0f);
    }

    #[test]
    fn counter_wraps_at_4096() {
        let mut c = SequenceCounter::starting_at(4095);
        assert_eq!(c.take(), 4095);
        assert_eq!(c.take(), 0);
        assert_eq!(c.peek(), 1);
    }

    #[test]
    fn truncated_rejected() {
        assert!(SequenceControl::parse(&[0x10]).is_err());
    }

    #[test]
    fn all_values_round_trip() {
        for seq in (0u16..4096).step_by(7) {
            for frag in 0u8..16 {
                let sc = SequenceControl::new(seq, frag);
                assert_eq!(SequenceControl::parse(&sc.encode()).unwrap(), sc);
            }
        }
    }
}
