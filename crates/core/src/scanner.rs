//! The wardriving survey pipeline (paper §3, Table 2).
//!
//! The paper's rig was a three-thread Scapy program on a laptop with an
//! RTL8812AU dongle: thread 1 discovered nearby devices by sniffing,
//! thread 2 injected fake frames at discovered targets, thread 3 verified
//! the ACKs. This module reproduces that architecture: a **discovery
//! worker** and a **verification worker** run on their own OS threads,
//! fed sniffed-frame batches over crossbeam channels, while the
//! coordinator drives the radio (here: the simulator) and injects.
//!
//! The city is scanned in *neighbourhood segments* — the set of devices
//! within radio range of the car at one stretch of the drive — because
//! out-of-range devices physically cannot be heard. Segment size and
//! dwell time are configurable.

use crate::verifier::AckVerifier;
use crossbeam::channel::{unbounded, Receiver, Sender};
use polite_wifi_devices::{CityPopulation, DeviceSpec};
use polite_wifi_frame::{builder, Frame, MacAddr};
use polite_wifi_mac::{Role, StationConfig};
use polite_wifi_pcap::capture::Capture;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{NodeId, SimConfig, Simulator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::thread;

/// A batch of sniffed frames: (capture timestamp µs, frame).
type SniffedBatch = Vec<(u64, Frame)>;

/// A discovery: a transmitter address, the role the sniffer *infers*
/// from the frame kind that revealed it (beacons/probe responses mean AP,
/// everything else means client), and whether a beacon advertised 802.11w
/// management-frame protection — the same inference a real wardriving
/// rig makes, with no ground-truth peeking.
type Discovery = (MacAddr, Role, bool);

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WardriveScanner {
    /// Simulation seed.
    pub seed: u64,
    /// Devices per neighbourhood segment (how many are in range at once).
    pub segment_size: usize,
    /// Simulated dwell time per segment, µs.
    pub dwell_us: u64,
    /// Fake frames injected per discovered target.
    pub fakes_per_target: u32,
}

impl Default for WardriveScanner {
    fn default() -> Self {
        WardriveScanner {
            seed: 20,
            segment_size: 48,
            dwell_us: 2_500_000,
            fakes_per_target: 3,
        }
    }
}

/// The survey's outcome — everything Table 2 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Devices whose transmissions the sniffer heard.
    pub discovered: usize,
    /// Devices that verifiably ACKed a fake frame.
    pub verified: usize,
    /// Verified client devices per vendor, descending.
    pub client_counts: Vec<(String, u32)>,
    /// Verified APs per vendor, descending.
    pub ap_counts: Vec<(String, u32)>,
    /// Verified client total.
    pub total_clients: u32,
    /// Verified AP total.
    pub total_aps: u32,
    /// Distinct vendors among verified clients.
    pub client_vendor_count: usize,
    /// Distinct vendors among verified APs.
    pub ap_vendor_count: usize,
    /// Distinct vendors overall.
    pub distinct_vendor_count: usize,
    /// Verified APs whose beacons advertised 802.11w (PMF). The paper's
    /// footnote 2: they ACK fakes and answer forged RTS all the same.
    pub pmf_aps: u32,
    /// Simulated survey time, µs.
    pub survey_time_us: u64,
}

/// Messages from the coordinator to the workers.
enum WorkerInput {
    /// Sniffed frames to process.
    Batch(SniffedBatch),
    /// Survey over; flush and exit.
    Done,
}

/// A worker pair: input channel, output channel, and a completion channel
/// the worker signals after each processed batch (so the coordinator can
/// synchronise with the pipeline without busy-waiting).
struct Worker<O> {
    input: Sender<WorkerInput>,
    output: Receiver<O>,
    completed: Receiver<u64>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<O> Worker<O> {
    /// Sends a batch and blocks until the worker reports it processed.
    fn process(&self, batch: SniffedBatch) {
        if self.input.send(WorkerInput::Batch(batch)).is_ok() {
            let _ = self.completed.recv();
        }
    }

    /// Shuts the worker down, joining the thread. Drain results first via
    /// the type-specific helpers.
    fn shutdown(&mut self) {
        let _ = self.input.send(WorkerInput::Done);
        if let Some(h) = self.handle.take() {
            h.join().expect("scanner worker panicked");
        }
    }
}

impl Worker<Discovery> {
    fn drain(&self, into: &mut HashMap<MacAddr, (Role, bool)>) {
        for (mac, role, pmf) in self.output.try_iter() {
            let entry = into.entry(mac).or_insert((role, pmf));
            entry.1 |= pmf;
        }
    }
}

impl Worker<MacAddr> {
    fn drain(&self, into: &mut HashSet<MacAddr>) {
        for mac in self.output.try_iter() {
            into.insert(mac);
        }
    }
}

impl WardriveScanner {
    /// Runs the survey over a population. Returns the Table 2 aggregate.
    pub fn run(&self, population: &CityPopulation) -> ScanReport {
        // --- Spawn the two worker threads of the paper's pipeline. ---
        let mut discovery = spawn_worker(discovery_worker);
        let mut verification = spawn_worker(verification_worker);

        // --- Drive the car through the city, one segment at a time. ---
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut discovered: HashMap<MacAddr, (Role, bool)> = HashMap::new();
        let mut verified: HashSet<MacAddr> = HashSet::new();
        let mut survey_time_us = 0u64;

        // Radios only hear their tuned channel, so the drive visits one
        // channel at a time: group the city by (band, channel) and chunk
        // each group into neighbourhood segments. The dongle retunes at
        // each segment boundary, like a real wardriving rig's hop plan.
        let mut by_tune: Vec<&DeviceSpec> = population.devices.iter().collect();
        by_tune.sort_by_key(|d| {
            (
                matches!(d.band, polite_wifi_phy::band::Band::Ghz5),
                d.channel,
                d.mac,
            )
        });
        let segments: Vec<Vec<&DeviceSpec>> = {
            let mut out: Vec<Vec<&DeviceSpec>> = Vec::new();
            for d in by_tune {
                let fits = out.last().map_or(false, |seg: &Vec<&DeviceSpec>| {
                    seg.len() < self.segment_size.max(1)
                        && seg[0].band == d.band
                        && seg[0].channel == d.channel
                });
                if fits {
                    out.last_mut().expect("checked").push(d);
                } else {
                    out.push(vec![d]);
                }
            }
            out
        };

        for segment in &segments {
            survey_time_us += self.scan_segment(
                segment,
                &mut rng,
                &discovery,
                &verification,
                &mut discovered,
                &mut verified,
            );
        }

        // --- Shut the pipeline down and collect stragglers. ---
        discovery.shutdown();
        discovery.drain(&mut discovered);
        verification.shutdown();
        verification.drain(&mut verified);

        self.aggregate(population, &discovered, &verified, survey_time_us)
    }

    /// Scans one neighbourhood (all devices share one band/channel; the
    /// attacker's dongle is tuned to it). Returns the simulated time
    /// spent.
    fn scan_segment(
        &self,
        segment: &[&DeviceSpec],
        rng: &mut ChaCha8Rng,
        discovery: &Worker<Discovery>,
        verification: &Worker<MacAddr>,
        discovered: &mut HashMap<MacAddr, (Role, bool)>,
        verified: &mut HashSet<MacAddr>,
    ) -> u64 {
        let mut sim = Simulator::new(SimConfig::default(), rng.gen());
        let mut attacker_cfg = StationConfig::client(MacAddr::FAKE);
        if let Some(first) = segment.first() {
            attacker_cfg.band = first.band;
            attacker_cfg.channel = first.channel;
        }
        let attacker = sim.add_node(attacker_cfg, (0.0, 0.0));
        sim.set_monitor(attacker, true);
        sim.set_retries(attacker, false);

        let mut members: HashSet<MacAddr> = HashSet::new();
        for spec in segment {
            let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let radius: f64 = rng.gen_range(3.0..25.0);
            let pos = (radius * angle.cos(), radius * angle.sin());
            let mut cfg = StationConfig::client(spec.mac);
            cfg.role = spec.role;
            cfg.band = spec.band;
            cfg.channel = spec.channel;
            cfg.behavior = spec.behavior;
            cfg.ssid = spec.ssid.clone();
            cfg.beacon_interval_us = match spec.role {
                Role::AccessPoint => Some(102_400),
                Role::Client => None,
            };
            let id = sim.add_node(cfg, pos);
            members.insert(spec.mac);
            // Clients reveal themselves with periodic probe requests —
            // scheduled past the nominal dwell too, because the dwell is
            // extended for dozing stragglers and the devices keep living
            // their lives meanwhile.
            if spec.role == Role::Client {
                let mut t = rng.gen_range(0..500_000u64);
                let mut seq = 0u16;
                while t < 5 * self.dwell_us + 300_000 {
                    sim.inject(t, id, builder::probe_request(spec.mac, seq), BitRate::Mbps1);
                    seq = seq.wrapping_add(1);
                    t += rng.gen_range(400_000..700_000u64);
                }
            }
        }

        // Pump the pipeline in 250 ms slices. Thread 2's behaviour from
        // the paper: keep injecting at every discovered target until it
        // verifies (power-save targets doze and miss one-shot fakes).
        let mut capture_offset = 0usize;
        let mut pending: HashSet<MacAddr> = HashSet::new();
        let slice_us = 250_000u64;
        let mut now = 0u64;
        while now < self.dwell_us {
            now += slice_us;
            sim.run_until(now);
            capture_offset =
                self.pump(&sim, attacker, capture_offset, discovery, verification);
            let mut new_targets: HashMap<MacAddr, (Role, bool)> = HashMap::new();
            discovery.drain(&mut new_targets);
            for (mac, info) in new_targets {
                let entry = discovered.entry(mac).or_insert(info);
                entry.1 |= info.1;
                if members.contains(&mac) {
                    pending.insert(mac);
                }
            }
            verification.drain(verified);
            pending.retain(|mac| !verified.contains(mac));
            self.inject_round(&mut sim, attacker, &pending, now);
        }
        // Stragglers: power-save targets doze most of the time and only
        // hear fakes in their brief wake windows. The paper's thread 2
        // keeps injecting while the car is in range — extend the dwell
        // (up to 4x) until every pending target verified.
        let max_extension = now + 4 * self.dwell_us;
        while !pending.is_empty() && now < max_extension {
            self.inject_round(&mut sim, attacker, &pending, now);
            now += slice_us;
            sim.run_until(now);
            capture_offset =
                self.pump(&sim, attacker, capture_offset, discovery, verification);
            // Late discoveries (devices whose every earlier probe
            // collided) still get their fakes.
            let mut late: HashMap<MacAddr, (Role, bool)> = HashMap::new();
            discovery.drain(&mut late);
            for (mac, info) in late {
                let entry = discovered.entry(mac).or_insert(info);
                entry.1 |= info.1;
                if members.contains(&mac) {
                    pending.insert(mac);
                }
            }
            verification.drain(verified);
            pending.retain(|mac| !verified.contains(mac));
        }

        // Let trailing injections and their ACKs finish, then flush.
        let tail = now + 300_000;
        sim.run_until(tail);
        self.pump(&sim, attacker, capture_offset, discovery, verification);
        discovery.drain(discovered);
        verification.drain(verified);
        tail
    }

    /// Injects one slice's worth of fakes at every pending target,
    /// spread across the upcoming slice so the inter-fake gap stays under
    /// a power-save victim's ~100 ms wake window.
    fn inject_round(
        &self,
        sim: &mut Simulator,
        attacker: NodeId,
        pending: &HashSet<MacAddr>,
        slice_start_us: u64,
    ) {
        let hop = 250_000 / self.fakes_per_target.max(1) as u64;
        for (i, mac) in pending.iter().enumerate() {
            for k in 0..self.fakes_per_target {
                sim.inject(
                    slice_start_us + 2_000 + i as u64 * 1_500 + k as u64 * hop,
                    attacker,
                    builder::fake_null_frame(*mac, MacAddr::FAKE),
                    BitRate::Mbps1,
                );
            }
        }
    }

    /// Ships newly captured frames to both workers (waiting for each to
    /// chew through the batch); returns the new offset into the attacker's
    /// capture.
    fn pump(
        &self,
        sim: &Simulator,
        attacker: NodeId,
        offset: usize,
        discovery: &Worker<Discovery>,
        verification: &Worker<MacAddr>,
    ) -> usize {
        let capture: &Capture = &sim.node(attacker).capture;
        let frames = capture.frames();
        if offset >= frames.len() {
            return offset;
        }
        let batch: SniffedBatch = frames[offset..]
            .iter()
            .map(|cf| (cf.ts_us, cf.frame.clone()))
            .collect();
        discovery.process(batch.clone());
        verification.process(batch);
        frames.len()
    }

    fn aggregate(
        &self,
        population: &CityPopulation,
        discovered: &HashMap<MacAddr, (Role, bool)>,
        verified: &HashSet<MacAddr>,
        survey_time_us: u64,
    ) -> ScanReport {
        // Attribution works the way the paper's rig worked: vendor from
        // the OUI registry (so randomised MACs fall into "Unknown") and
        // role from how the device was discovered — no ground truth.
        let mut client_counts: HashMap<String, u32> = HashMap::new();
        let mut ap_counts: HashMap<String, u32> = HashMap::new();
        let mut pmf_aps = 0u32;
        for mac in verified {
            let vendor = population
                .registry
                .vendor_of(*mac)
                .unwrap_or("Unknown (randomised MAC)")
                .to_string();
            let (role, pmf) = discovered
                .get(mac)
                .copied()
                .unwrap_or((Role::Client, false));
            match role {
                Role::Client => *client_counts.entry(vendor).or_default() += 1,
                Role::AccessPoint => {
                    *ap_counts.entry(vendor).or_default() += 1;
                    pmf_aps += u32::from(pmf);
                }
            }
        }
        let sort = |m: HashMap<String, u32>| -> Vec<(String, u32)> {
            let mut v: Vec<(String, u32)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            v
        };
        let client_counts = sort(client_counts);
        let ap_counts = sort(ap_counts);
        let total_clients: u32 = client_counts.iter().map(|(_, c)| c).sum();
        let total_aps: u32 = ap_counts.iter().map(|(_, c)| c).sum();
        let distinct: HashSet<&str> = client_counts
            .iter()
            .chain(ap_counts.iter())
            .map(|(v, _)| v.as_str())
            .collect();

        ScanReport {
            discovered: discovered.len(),
            verified: verified.len(),
            client_vendor_count: client_counts.len(),
            ap_vendor_count: ap_counts.len(),
            distinct_vendor_count: distinct.len(),
            client_counts,
            ap_counts,
            total_clients,
            total_aps,
            pmf_aps,
            survey_time_us,
        }
    }
}

/// Spawns a pipeline worker with its channel plumbing.
fn spawn_worker<O: Send + 'static>(
    body: fn(Receiver<WorkerInput>, Sender<O>, Sender<u64>),
) -> Worker<O> {
    let (in_tx, in_rx) = unbounded();
    let (out_tx, out_rx) = unbounded();
    let (done_tx, done_rx) = unbounded();
    let handle = thread::spawn(move || body(in_rx, out_tx, done_tx));
    Worker {
        input: in_tx,
        output: out_rx,
        completed: done_rx,
        handle: Some(handle),
    }
}

/// Thread 1 of the paper's pipeline: discover devices by sniffing. Emits
/// each transmitter address the first time it is heard, along with the
/// role inferred from the revealing frame: beacons and probe responses
/// come from APs; everything else is treated as a client.
fn discovery_worker(rx: Receiver<WorkerInput>, tx: Sender<Discovery>, done: Sender<u64>) {
    use polite_wifi_frame::ManagementBody;
    let mut seen: HashSet<MacAddr> = HashSet::new();
    seen.insert(MacAddr::FAKE); // never target ourselves
    let mut batch_no = 0u64;
    while let Ok(input) = rx.recv() {
        match input {
            WorkerInput::Batch(batch) => {
                for (_, frame) in &batch {
                    if let Some(ta) = frame.transmitter() {
                        let (role, pmf) = match frame {
                            Frame::Mgmt(m) => match &m.body {
                                ManagementBody::Beacon { elements, .. } => {
                                    use polite_wifi_frame::ie::{element_id, InformationElement};
                                    let pmf = InformationElement::find(elements, element_id::RSN)
                                        .map_or(false, |rsn| rsn.rsn_has_pmf());
                                    (Role::AccessPoint, pmf)
                                }
                                ManagementBody::ProbeResponse { .. } => (Role::AccessPoint, false),
                                _ => (Role::Client, false),
                            },
                            _ => (Role::Client, false),
                        };
                        if ta.is_unicast() && seen.insert(ta) {
                            let _ = tx.send((ta, role, pmf));
                        } else if pmf && ta.is_unicast() {
                            // PMF flag may arrive on a later beacon than
                            // the discovery; re-announce so it sticks.
                            let _ = tx.send((ta, role, true));
                        }
                    }
                }
                batch_no += 1;
                let _ = done.send(batch_no);
            }
            WorkerInput::Done => break,
        }
    }
}

/// Thread 3 of the paper's pipeline: verify that targets answered. Uses
/// the same temporal fake→ACK pairing as [`AckVerifier`], streaming.
fn verification_worker(rx: Receiver<WorkerInput>, tx: Sender<MacAddr>, done: Sender<u64>) {
    let verifier = AckVerifier::new(MacAddr::FAKE);
    let mut reported: HashSet<MacAddr> = HashSet::new();
    // Pairing state survives batch boundaries within a segment; a stray
    // pair spanning *segments* is harmless because the window is 1 ms.
    let mut pending: Option<(MacAddr, u64)> = None;
    let mut batch_no = 0u64;
    while let Ok(input) = rx.recv() {
        match input {
            WorkerInput::Batch(batch) => {
                for (ts, frame) in &batch {
                    use polite_wifi_frame::ControlFrame;
                    match frame {
                        Frame::Ctrl(ControlFrame::Ack { ra })
                        | Frame::Ctrl(ControlFrame::Cts { ra, .. })
                            if *ra == verifier.attacker =>
                        {
                            if let Some((victim, fake_ts)) = pending.take() {
                                if ts.saturating_sub(fake_ts) <= verifier.window_us
                                    && reported.insert(victim)
                                {
                                    let _ = tx.send(victim);
                                }
                            }
                        }
                        other => {
                            if other.transmitter() == Some(verifier.attacker) {
                                if let Some(victim) = other.receiver() {
                                    pending = Some((victim, *ts));
                                }
                            }
                        }
                    }
                }
                batch_no += 1;
                let _ = done.send(batch_no);
            }
            WorkerInput::Done => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_devices::population::{TABLE2_APS, TABLE2_CLIENTS};

    /// A small synthetic population for fast tests.
    fn mini_population(clients: u32, aps: u32) -> CityPopulation {
        let full = CityPopulation::table2(5);
        let mut devices: Vec<DeviceSpec> = Vec::new();
        devices.extend(full.clients().take(clients as usize).cloned());
        devices.extend(full.aps().take(aps as usize).cloned());
        CityPopulation {
            devices,
            registry: full.registry.clone(),
        }
    }

    #[test]
    fn mini_survey_discovers_and_verifies_everyone() {
        let pop = mini_population(10, 10);
        let scanner = WardriveScanner {
            segment_size: 10,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert_eq!(report.verified, 20, "report: {report:?}");
        assert_eq!(report.total_clients, 10);
        assert_eq!(report.total_aps, 10);
        // The survey time covers all segments.
        assert!(report.survey_time_us >= 2 * scanner.dwell_us);
    }

    #[test]
    fn verification_rate_is_100_percent_of_discovered_members() {
        // The paper's headline: every discovered device responded.
        let pop = mini_population(15, 15);
        let scanner = WardriveScanner {
            segment_size: 15,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert_eq!(report.verified, report.discovered.min(30));
    }

    #[test]
    fn vendor_attribution_flows_through() {
        let pop = mini_population(30, 0);
        let scanner = WardriveScanner {
            segment_size: 15,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        // The first 30 clients of the deterministic population are all
        // Apple (count 143 ≥ 30).
        assert_eq!(report.client_counts.len(), 1);
        assert_eq!(report.client_counts[0].0, "Apple");
        assert_eq!(report.client_counts[0].1, 30);
    }

    #[test]
    fn table2_constants_available_for_comparison() {
        // The harness prints measured-vs-paper; make sure the reference
        // rows exist and sum correctly.
        let named: u32 = TABLE2_CLIENTS.iter().map(|(_, c)| c).sum();
        assert_eq!(named, 893);
        let named_aps: u32 = TABLE2_APS.iter().map(|(_, c)| c).sum();
        assert_eq!(named_aps, 3010);
    }
}
