//! Integration tests for the serving layer: admission, coalescing,
//! timeouts, retry, cache integrity — each against a real daemon on an
//! ephemeral loopback port.

use polite_wifi_daemon::{
    corrupt_entry, http, CacheRead, Daemon, DaemonConfig, ResultStore, SseClient,
};
use polite_wifi_obs::names;
use polite_wifi_scenario::ScenarioSpec;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A generic scenario whose per-trial cost scales with `rate_pps` (a
/// null-flood the victim politely ACKs) — `trials` × rate controls how
/// long a job runs.
fn fixture(seed: u64, trials: u64, rate_pps: u64) -> String {
    let template = r#"{
  "name": "D: daemon fixture",
  "paper_ref": "none",
  "slug": "daemon_fixture",
  "runner": "generic",
  "run": {"seed": SEED, "trials": TRIALS, "workers": 1},
  "topology": {
    "duration_us": 300000,
    "nodes": [
      {"name": "ap", "mac": "68:02:b8:00:00:01", "kind": "ap", "position": [2, 0], "ssid": "Net"},
      {"name": "victim", "mac": "f2:6e:0b:11:22:33", "kind": "client", "position": [0, 0]},
      {"name": "attacker", "mac": "aa:bb:bb:bb:bb:bb", "kind": "monitor", "position": [4, 0]}
    ],
    "links": [["victim", "ap"]]
  },
  "attacks": [
    {"kind": "null-flood", "attacker": "attacker", "victim": "victim",
     "rate_pps": RATE, "start_us": 1000, "duration_us": 250000, "bitrate": "6"}
  ],
  "probes": [
    {"kind": "station-stat", "node": "victim", "stat": "acks_sent", "metric": "acks_sent"}
  ]
}"#;
    template
        .replace("SEED", &seed.to_string())
        .replace("TRIALS", &trials.to_string())
        .replace("RATE", &rate_pps.to_string())
}

/// Same fixture plus an impossible assertion — the run always exits 1.
fn failing_fixture(seed: u64) -> String {
    fixture(seed, 1, 10).replace(
        "  \"probes\": [",
        "  \"assertions\": [\n    {\"metric\": \"acks_sent\", \"op\": \"<\", \"value\": 0}\n  ],\n  \"probes\": [",
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polite-wifi-d-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> DaemonConfig {
    DaemonConfig {
        state_dir: temp_dir(tag),
        ..DaemonConfig::default()
    }
}

fn submit(daemon: &Daemon, body: &str, query: &str) -> (u16, String, Vec<u8>) {
    let (status, headers, bytes) = http::request(
        daemon.addr(),
        "POST",
        &format!("/submit{query}"),
        body.as_bytes(),
    )
    .expect("submit request");
    let cache_header = headers.get("x-cache").cloned().unwrap_or_default();
    (status, cache_header, bytes)
}

fn poll_until_terminal(daemon: &Daemon, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = http::request(daemon.addr(), "GET", &format!("/jobs/{id}"), b"")
            .expect("status request");
        assert_eq!(status, 200);
        let body = String::from_utf8(body).unwrap();
        for terminal in ["\"done\"", "\"failed\"", "\"timed_out\""] {
            if body.contains(terminal) {
                return body;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn identical_resubmission_is_a_byte_identical_cache_hit() {
    let cfg = config("cache");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    let spec = fixture(11, 2, 50);

    let (status, cache, first) = submit(&daemon, &spec, "?wait=1");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&first));
    assert_eq!(cache, "miss");
    assert!(first.starts_with(b"{"), "envelope expected");

    let (status, cache, second) = submit(&daemon, &spec, "?wait=1");
    assert_eq!(status, 200);
    assert_eq!(cache, "hit");
    assert_eq!(first, second, "cache must return the stored bytes verbatim");

    assert_eq!(daemon.counter(names::DAEMON_CACHE_MISS), 1);
    assert_eq!(daemon.counter(names::DAEMON_CACHE_HIT), 1);
    assert_eq!(daemon.counter(names::DAEMON_JOBS_COMPLETED), 1);

    // /results/<key> serves the same bytes.
    let key = ScenarioSpec::parse(&spec).unwrap().canonical_hash();
    let (status, _, via_key) =
        http::request(daemon.addr(), "GET", &format!("/results/{key}"), b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(via_key, first);

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn submissions_while_draining_are_rejected() {
    let cfg = config("drain");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    daemon.initiate_drain();

    let (status, headers, body) = http::request(
        daemon.addr(),
        "POST",
        "/submit?wait=1",
        fixture(1, 1, 10).as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        headers.get("retry-after").map(String::as_str),
        Some("1"),
        "backpressure must tell the client when to come back"
    );
    assert_eq!(daemon.counter(names::DAEMON_ADMISSION_REJECTED), 1);

    // Health stays up while draining — load balancers need the
    // distinction between "draining" and "dead".
    let (status, _, body) = http::request(daemon.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("\"status\": \"draining\""), "{body}");
    assert!(body.contains("\"uptime_secs\": "), "{body}");
    assert!(
        body.contains(&format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"))),
        "{body}"
    );
    assert!(body.contains("\"subscribers\": 0"), "{body}");

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn duplicate_inflight_submission_coalesces_onto_one_run() {
    let cfg = DaemonConfig {
        workers: 1,
        ..config("coalesce")
    };
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    // Slow enough that the duplicate lands while the first run is still
    // in flight: ~60 trials × hundreds of flood frames each.
    let spec = fixture(29, 60, 2000);

    let (status, _, body) = submit(&daemon, &spec, "");
    assert_eq!(status, 202);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("\"job\": 1"), "{body}");

    let (status, _, dup) = submit(&daemon, &spec, "");
    assert_eq!(status, 202);
    let dup = String::from_utf8(dup).unwrap();
    assert!(dup.contains("\"coalesced\": true"), "{dup}");
    assert!(
        dup.contains("\"job\": 1"),
        "duplicate must reuse job 1: {dup}"
    );

    let status_doc = poll_until_terminal(&daemon, 1);
    assert!(status_doc.contains("\"state\": \"done\""), "{status_doc}");
    assert_eq!(daemon.counter(names::DAEMON_SUBMIT_COALESCED), 1);
    assert_eq!(
        daemon.counter(names::DAEMON_JOBS_COMPLETED),
        1,
        "coalescing means the spec ran exactly once"
    );

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn timed_out_job_is_recorded_and_leaves_no_orphan_worker() {
    let cfg = DaemonConfig {
        workers: 1,
        job_timeout: Duration::from_millis(100),
        ..config("timeout")
    };
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();

    // Far more work than 100 ms allows; the supervisor raises the
    // token and the trial loop degrades the rest cooperatively.
    let (status, _, body) = submit(&daemon, &fixture(37, 5000, 2000), "?wait=1");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"state\": \"timed_out\""), "{body}");
    assert!(body.contains("deadline exceeded"), "{body}");
    assert_eq!(daemon.counter(names::DAEMON_JOBS_TIMED_OUT), 1);

    // The single worker must be free again: a small job on the same
    // pool completes well within its own deadline.
    let (status, cache, _) = submit(&daemon, &fixture(41, 1, 10), "?wait=1");
    assert_eq!(status, 200, "worker pool must survive a timed-out job");
    assert_eq!(cache, "miss");
    assert_eq!(daemon.counter(names::DAEMON_JOBS_COMPLETED), 1);

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn corrupted_cache_entry_triggers_recompute_and_overwrite() {
    let cfg = config("corrupt");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    let spec = fixture(53, 2, 50);
    let key = ScenarioSpec::parse(&spec).unwrap().canonical_hash();
    let store = ResultStore::new(state_dir.join("store"));

    let (status, _, first) = submit(&daemon, &spec, "?wait=1");
    assert_eq!(status, 200);
    assert!(matches!(store.get(&key), CacheRead::Hit(_)));

    corrupt_entry(&store.entry_path(&key)).unwrap();
    assert!(matches!(store.get(&key), CacheRead::Corrupt(_)));

    let (status, cache, second) = submit(&daemon, &spec, "?wait=1");
    assert_eq!(status, 200);
    assert_eq!(cache, "miss", "a corrupt entry must recompute, not serve");
    assert_eq!(second, first, "recomputed result is byte-identical");
    assert_eq!(daemon.counter(names::DAEMON_CACHE_CORRUPT), 1);
    assert_eq!(daemon.counter(names::DAEMON_CACHE_HIT), 0);

    // The overwritten entry verifies again and serves as a hit.
    assert_eq!(store.get(&key), CacheRead::Hit(second.clone()));
    let (status, cache, third) = submit(&daemon, &spec, "?wait=1");
    assert_eq!(status, 200);
    assert_eq!(cache, "hit");
    assert_eq!(third, second);

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn failed_job_retries_up_to_the_budget_then_reports_failed() {
    let cfg = DaemonConfig {
        retry_max: 1,
        ..config("retry")
    };
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();

    let (status, _, body) = submit(&daemon, &failing_fixture(61), "?wait=1");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"state\": \"failed\""), "{body}");
    assert!(
        body.contains("\"attempts\": 2"),
        "one retry, then give up: {body}"
    );
    assert!(body.contains("exit status 1"), "{body}");
    assert_eq!(daemon.counter(names::DAEMON_JOBS_RETRIED), 1);
    assert_eq!(daemon.counter(names::DAEMON_JOBS_FAILED), 1);
    // A deterministic failure is not cached — resubmitting runs again.
    assert_eq!(daemon.counter(names::DAEMON_CACHE_HIT), 0);

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn invalid_spec_gets_the_aggregated_parser_error_as_400() {
    let cfg = config("badspec");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();

    let (status, _, body) = submit(&daemon, "{\"name\": \"x\"}", "");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("missing required key"), "{body}");
    assert!(body.contains("DESIGN.md"), "{body}");

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

/// The ISSUE acceptance path: subscribe to a running job's `/watch`
/// stream, hang up mid-job, resubscribe with `Last-Event-ID`, and
/// verify the combined stream is a gap-free, strictly-increasing
/// sequence ending in the terminal `job_finished` event.
#[test]
fn watch_stream_resumes_exactly_and_ends_at_job_finished() {
    let cfg = DaemonConfig {
        workers: 1,
        // Sample the history ring fast enough that this test sees it.
        history_window: Duration::from_millis(50),
        ..config("watch")
    };
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();

    // A slow job (60 trials of a 2000 pps flood) so both subscribers
    // provably attach mid-run.
    let (status, _, body) = submit(&daemon, &fixture(83, 60, 2000), "");
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));

    // Wait until the single worker has picked job 1 up, then queue a
    // second job behind it: its status must report the place in line.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, _, body) = http::request(daemon.addr(), "GET", "/jobs/1", b"").unwrap();
        if String::from_utf8(body).unwrap().contains("\"state\": \"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, _) = submit(&daemon, &fixture(89, 1, 10), "");
    assert_eq!(status, 202);
    let (status, _, queued) = http::request(daemon.addr(), "GET", "/jobs/2", b"").unwrap();
    assert_eq!(status, 200);
    let queued = String::from_utf8(queued).unwrap();
    assert!(queued.contains("\"queue_position\": 0"), "{queued}");

    // Subscribe live, read a few events, then hang up mid-stream. The
    // job must not notice (it can't: publishing never blocks).
    let (status, mut first) = SseClient::connect(daemon.addr(), "/watch/1", None).unwrap();
    assert_eq!(status, 200);
    let mut seqs = Vec::new();
    let mut last_id = 0;
    for _ in 0..3 {
        let event = first.next_event().unwrap().expect("live event");
        last_id = event.id.expect("id line");
        seqs.push(last_id);
    }
    // While subscribed, /healthz counts us.
    let (_, _, health) = http::request(daemon.addr(), "GET", "/healthz", b"").unwrap();
    let health = String::from_utf8(health).unwrap();
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    assert!(health.contains("\"subscribers\": 1"), "{health}");
    drop(first);

    // Resume from where we left off; the replay must be gap-free.
    let (status, mut second) =
        SseClient::connect(daemon.addr(), "/watch/1", Some(last_id)).unwrap();
    assert_eq!(status, 200);
    let rest = second.collect_events().unwrap();
    assert!(!rest.is_empty(), "resumed stream delivered nothing");
    seqs.extend(rest.iter().map(|e| e.id.expect("id line")));

    assert_eq!(seqs[0], 0, "stream starts at the journal head: {seqs:?}");
    for pair in seqs.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "gap or reorder in {seqs:?}");
    }
    let terminal = rest.last().unwrap();
    assert_eq!(terminal.event, "job_finished", "{rest:?}");
    assert!(terminal.data.contains("\"detail\":\"done\""), "{terminal:?}");
    assert_eq!(daemon.counter(names::DAEMON_WATCH_SUBSCRIBED), 2);
    assert_eq!(daemon.counter(names::DAEMON_WATCH_RESUMED), 1);
    assert!(
        daemon.counter(names::DAEMON_WATCH_EVENTS_STREAMED) >= seqs.len() as u64,
        "streamed counter must cover both subscriptions"
    );

    // The journal replays the whole story after the fact ...
    let (status, _, journal) = http::request(daemon.addr(), "GET", "/jobs/1/events", b"").unwrap();
    assert_eq!(status, 200);
    let journal = String::from_utf8(journal).unwrap();
    for needle in [
        "\"kind\":\"job_accepted\"",
        "\"kind\":\"job_started\"",
        "\"kind\":\"trial_finished\"",
        "\"kind\":\"job_finished\"",
    ] {
        assert!(journal.contains(needle), "missing {needle} in {journal}");
    }
    // ... /jobs/1 reflects the recorder's trial progress ...
    let status_doc = poll_until_terminal(&daemon, 1);
    assert!(status_doc.contains("\"trials_done\": 60"), "{status_doc}");
    // ... and the supervisor has sampled counters into the history ring.
    let (status, _, history) = http::request(daemon.addr(), "GET", "/metrics/history", b"").unwrap();
    assert_eq!(status, 200);
    let history = String::from_utf8(history).unwrap();
    assert!(history.contains("\"windows\":[{"), "{history}");
    assert!(history.contains(names::DAEMON_HISTORY_SAMPLES), "{history}");

    poll_until_terminal(&daemon, 2);
    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn watch_of_an_unknown_job_is_a_404() {
    let cfg = config("watch404");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();

    let (status, mut client) = SseClient::connect(daemon.addr(), "/watch/999", None).unwrap();
    assert_eq!(status, 404);
    assert!(client.next_event().unwrap().is_none());
    let (status, _, _) = http::request(daemon.addr(), "GET", "/jobs/999/events", b"").unwrap();
    assert_eq!(status, 404);

    daemon.drain().unwrap();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn drain_persists_the_job_table() {
    let cfg = config("persist");
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    let (status, _, _) = submit(&daemon, &fixture(71, 1, 10), "?wait=1");
    assert_eq!(status, 200);

    daemon.drain().unwrap();
    let table = std::fs::read_to_string(state_dir.join("jobs.json")).unwrap();
    assert!(table.contains("\"state\": \"done\""), "{table}");
    assert!(table.contains("\"slug\": \"daemon_fixture\""), "{table}");
    // The flight recorder drains alongside the job table, so a post-
    // mortem can replay the journal without the daemon running.
    let journal = std::fs::read_to_string(state_dir.join("events").join("1.json")).unwrap();
    assert!(journal.contains("\"kind\":\"job_accepted\""), "{journal}");
    assert!(journal.contains("\"kind\":\"job_finished\""), "{journal}");
    let _ = std::fs::remove_dir_all(state_dir);
}
