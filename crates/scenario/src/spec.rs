//! The scenario spec: parse, validate, and canonically re-emit.
//!
//! A scenario is one JSON file that composes everything an experiment
//! needs: identity (envelope `name`/`paper_ref`/`slug`), run defaults
//! (seed, trials, workers, quick, fault profile), a population/topology
//! for [`ScenarioBuilder`], attacker strategies, defender probes, and a
//! pass/fail assertion block. Parsing reuses the zero-dependency JSON
//! parser from `polite-wifi-obs` — no serde — and rejects malformed
//! specs with **one aggregated error** listing every problem, the same
//! contract as the harness flag parser.
//!
//! [`ScenarioSpec::to_canonical_json`] re-emits the spec in a fixed
//! field order and formatting; committed `scenarios/*.json` files are
//! kept in canonical form, so `parse → write` round-trips byte-exact
//! (the golden tests pin this).

use polite_wifi_frame::MacAddr;
use polite_wifi_harness::{RunArgs, ScenarioBuilder};
use polite_wifi_obs::json::{parse as parse_json, JsonValue};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_phy::Band;
use polite_wifi_sim::{FaultProfile, NodeId};
use std::collections::BTreeMap;

/// Run-section defaults: the subset of [`RunArgs`] a scenario pins.
/// CLI flags still override every one of them at launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Base seed.
    pub seed: u64,
    /// Trial count.
    pub trials: usize,
    /// Worker count.
    pub workers: usize,
    /// Quick mode.
    pub quick: bool,
    /// Fault profile.
    pub faults: FaultProfile,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            seed: 7,
            trials: 1,
            workers: 1,
            quick: false,
            faults: FaultProfile::Clean,
        }
    }
}

impl RunSpec {
    /// The [`RunArgs`] these defaults resolve to (remaining fields at
    /// their harness defaults).
    pub fn to_run_args(&self) -> RunArgs {
        RunArgs {
            seed: self.seed,
            trials: self.trials,
            workers: self.workers,
            quick: self.quick,
            faults: self.faults,
            ..RunArgs::default()
        }
    }
}

/// What role a declared node plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An ordinary client station.
    Client,
    /// A beaconing access point.
    Ap,
    /// A monitor-mode capture/injection station (the attacker dongle).
    Monitor,
}

impl NodeKind {
    fn label(self) -> &'static str {
        match self {
            NodeKind::Client => "client",
            NodeKind::Ap => "ap",
            NodeKind::Monitor => "monitor",
        }
    }

    fn from_label(label: &str) -> Option<NodeKind> {
        Some(match label {
            "client" => NodeKind::Client,
            "ap" => NodeKind::Ap,
            "monitor" => NodeKind::Monitor,
            _ => return None,
        })
    }
}

/// One station in the population.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Name other sections refer to this node by.
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// Role.
    pub kind: NodeKind,
    /// Position in metres.
    pub position: (f64, f64),
    /// Behaviour profile: `client`, `quiet_ap`, `deauthing_ap`,
    /// `iot_power_save`, `pmf`, or `validating:<decode_us>`.
    pub behavior: Option<String>,
    /// Operating band: `2.4` or `5`.
    pub band: Option<String>,
    /// Channel number.
    pub channel: Option<u8>,
    /// SSID (APs only).
    pub ssid: Option<String>,
    /// Beacon interval override in µs; `0` disables beacons.
    pub beacon_interval_us: Option<u64>,
    /// MAC-retry override.
    pub retries: Option<bool>,
    /// Constant velocity in m/s.
    pub velocity: Option<(f64, f64)>,
}

/// The population/topology section.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Virtual time the scenario runs for.
    pub duration_us: u64,
    /// Receiver-enumeration backend: `all_pairs` (the default) or
    /// `cell_grid` (spatial interference cells, city scale). `None`
    /// leaves [`SimConfig`](polite_wifi_sim::SimConfig) at its default.
    pub propagation: Option<String>,
    /// Stations, in [`NodeId`] assignment order.
    pub nodes: Vec<NodeSpec>,
    /// Bidirectional client↔AP associations, by node name.
    pub links: Vec<(String, String)>,
    /// One-directional "node trusts peer" associations, by node name.
    pub associations: Vec<(String, String)>,
}

/// An attacker strategy composed from the `polite-wifi-core` trait
/// layer (plus legitimate background traffic, which shares the
/// scheduling shape).
#[derive(Debug, Clone, PartialEq)]
pub enum AttackSpec {
    /// The paper's fake null-function stream.
    NullFlood {
        /// Injecting node (by name).
        attacker: String,
        /// Target node (by name).
        victim: String,
        /// Frames per second.
        rate_pps: u32,
        /// First injection time.
        start_us: u64,
        /// Stream duration.
        duration_us: u64,
        /// Transmit bit rate label (e.g. `1`, `6`, `24`).
        bitrate: String,
    },
    /// NAV-stuffing forged RTS.
    RtsFlood {
        /// Injecting node.
        attacker: String,
        /// Node whose CTS is elicited.
        target: String,
        /// NAV reservation per RTS, µs.
        nav_us: u16,
        /// Frames per second.
        rate_pps: u32,
        /// First injection time.
        start_us: u64,
        /// Stream duration.
        duration_us: u64,
        /// Bit rate label.
        bitrate: String,
    },
    /// Forged unprotected deauthentication flood (arXiv 2602.23513).
    DeauthFlood {
        /// Injecting node.
        attacker: String,
        /// The client being kicked.
        victim: String,
        /// The AP whose address is forged.
        forged_ap: String,
        /// Frames per second.
        rate_pps: u32,
        /// First injection time.
        start_us: u64,
        /// Stream duration.
        duration_us: u64,
        /// Bit rate label.
        bitrate: String,
    },
    /// Bl0ck-style forged BlockAckReq window jump (arXiv 2302.05899).
    BlockAckParalysis {
        /// Injecting node.
        attacker: String,
        /// The receiver whose window is jumped.
        victim: String,
        /// The associated peer the BAR impersonates.
        spoofed_peer: String,
        /// Sequence number the window floor jumps to.
        jump_to_seq: u16,
        /// Injection time.
        at_us: u64,
        /// Bit rate label.
        bitrate: String,
    },
    /// Legitimate protected QoS traffic between associated stations —
    /// the workload the attacks disrupt.
    QosTraffic {
        /// Sending node.
        from: String,
        /// Receiving node.
        to: String,
        /// Frames per second.
        rate_pps: u32,
        /// First frame time.
        start_us: u64,
        /// Stream duration.
        duration_us: u64,
        /// Ciphertext length per frame.
        payload_len: u64,
        /// Bit rate label.
        bitrate: String,
    },
}

/// A defender-side measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSpec {
    /// Temporal fake↔ACK pairing over the global capture.
    AckVerifier {
        /// The attacker node whose forged TA anchors pairing.
        attacker: String,
    },
    /// One `StationStats` counter, recorded under `metric`.
    StationStat {
        /// Node to read.
        node: String,
        /// Counter label (see `StatKind`).
        stat: String,
        /// Ledger metric name.
        metric: String,
    },
    /// Whether `node` is still associated with `peer` (1/0).
    Association {
        /// Node to inspect.
        node: String,
        /// Peer node (by name).
        peer: String,
        /// Ledger metric name.
        metric: String,
    },
}

/// A pass/fail check over recorded metric means.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionSpec {
    /// Metric name.
    pub metric: String,
    /// Comparison operator symbol.
    pub op: String,
    /// Right-hand side.
    pub value: f64,
    /// `true`: only enforced under the clean fault profile (fault
    /// injection legitimately perturbs measured values).
    pub clean_only: bool,
}

/// A freeform scalar parameter (ported experiments read these).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// A fully parsed and validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Envelope experiment name.
    pub name: String,
    /// Envelope paper reference.
    pub paper_ref: String,
    /// Result file slug (`results/<slug>.json`).
    pub slug: String,
    /// Which executor runs this spec: `generic` (fully interpreted) or
    /// a registered ported-experiment name.
    pub runner: String,
    /// Run-section defaults.
    pub run: RunSpec,
    /// Population/topology (required for `generic`).
    pub topology: Option<TopologySpec>,
    /// Attacker strategies.
    pub attacks: Vec<AttackSpec>,
    /// Defender probes.
    pub probes: Vec<ProbeSpec>,
    /// Pass/fail assertion block.
    pub assertions: Vec<AssertionSpec>,
    /// Freeform per-experiment parameters.
    pub params: Vec<(String, ParamValue)>,
}

/// Parses a bit-rate label (`"1"`, `"5.5"`, `"24"`, …).
pub fn bitrate_from_label(label: &str) -> Option<BitRate> {
    Some(match label {
        "1" => BitRate::Mbps1,
        "2" => BitRate::Mbps2,
        "5.5" => BitRate::Mbps5_5,
        "6" => BitRate::Mbps6,
        "9" => BitRate::Mbps9,
        "11" => BitRate::Mbps11,
        "12" => BitRate::Mbps12,
        "18" => BitRate::Mbps18,
        "24" => BitRate::Mbps24,
        "36" => BitRate::Mbps36,
        "48" => BitRate::Mbps48,
        "54" => BitRate::Mbps54,
        _ => return None,
    })
}

fn band_from_label(label: &str) -> Option<Band> {
    Some(match label {
        "2.4" => Band::Ghz2,
        "5" => Band::Ghz5,
        _ => return None,
    })
}

/// Resolves a `topology.propagation` label to the PR 6 backend.
pub fn propagation_from_label(label: &str) -> Option<polite_wifi_sim::PropagationMode> {
    use polite_wifi_sim::PropagationMode;
    Some(match label {
        "all_pairs" => PropagationMode::AllPairs,
        "cell_grid" => PropagationMode::CellGrid,
        _ => return None,
    })
}

/// Resolves a behaviour-profile label.
pub fn behavior_from_label(label: &str) -> Option<polite_wifi_mac::Behavior> {
    use polite_wifi_mac::Behavior;
    Some(match label {
        "client" => Behavior::client(),
        "quiet_ap" => Behavior::quiet_ap(),
        "deauthing_ap" => Behavior::deauthing_ap(),
        "iot_power_save" => Behavior::iot_power_save(),
        "pmf" => Behavior::pmf_client(),
        _ => {
            let decode_us = label.strip_prefix("validating:")?.parse::<u32>().ok()?;
            Behavior::hypothetical_validating(decode_us)
        }
    })
}

// ===== Parsing =====

struct Problems(Vec<String>);

impl Problems {
    fn push(&mut self, msg: String) {
        self.0.push(msg);
    }

    fn into_error(self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "invalid scenario spec: {} (see DESIGN.md \u{a7}13 for the grammar)",
                self.0.join("; ")
            ))
        }
    }
}

fn check_keys(obj: &[(String, JsonValue)], allowed: &[&str], path: &str, p: &mut Problems) {
    for (key, _) in obj {
        if !allowed.contains(&key.as_str()) {
            p.push(format!("unknown key `{key}` in {path}"));
        }
    }
}

fn req<'a>(
    obj: &'a [(String, JsonValue)],
    key: &str,
    path: &str,
    p: &mut Problems,
) -> Option<&'a JsonValue> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => Some(v),
        None => {
            p.push(format!("{path} is missing required key `{key}`"));
            None
        }
    }
}

fn opt<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str(v: &JsonValue, path: &str, p: &mut Problems) -> Option<String> {
    match v.as_str() {
        Some(s) => Some(s.to_string()),
        None => {
            p.push(format!("{path} must be a string"));
            None
        }
    }
}

fn as_u64(v: &JsonValue, path: &str, p: &mut Problems) -> Option<u64> {
    match v.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
        _ => {
            p.push(format!("{path} must be a non-negative integer"));
            None
        }
    }
}

fn as_f64(v: &JsonValue, path: &str, p: &mut Problems) -> Option<f64> {
    match v.as_f64() {
        Some(n) => Some(n),
        None => {
            p.push(format!("{path} must be a number"));
            None
        }
    }
}

fn as_bool(v: &JsonValue, path: &str, p: &mut Problems) -> Option<bool> {
    match v {
        JsonValue::Bool(b) => Some(*b),
        _ => {
            p.push(format!("{path} must be a boolean"));
            None
        }
    }
}

fn as_obj<'a>(v: &'a JsonValue, path: &str, p: &mut Problems) -> Option<&'a [(String, JsonValue)]> {
    match v.as_object() {
        Some(o) => Some(o),
        None => {
            p.push(format!("{path} must be an object"));
            None
        }
    }
}

fn as_arr<'a>(v: &'a JsonValue, path: &str, p: &mut Problems) -> Option<&'a [JsonValue]> {
    match v.as_array() {
        Some(a) => Some(a),
        None => {
            p.push(format!("{path} must be an array"));
            None
        }
    }
}

fn as_mac(v: &JsonValue, path: &str, p: &mut Problems) -> Option<MacAddr> {
    let s = as_str(v, path, p)?;
    match s.parse::<MacAddr>() {
        Ok(mac) => Some(mac),
        Err(_) => {
            p.push(format!("{path} is not a valid MAC address: `{s}`"));
            None
        }
    }
}

fn as_pair(v: &JsonValue, path: &str, p: &mut Problems) -> Option<(f64, f64)> {
    let arr = as_arr(v, path, p)?;
    if arr.len() != 2 {
        p.push(format!("{path} must be a two-element [x, y] array"));
        return None;
    }
    Some((
        as_f64(&arr[0], &format!("{path}[0]"), p)?,
        as_f64(&arr[1], &format!("{path}[1]"), p)?,
    ))
}

fn as_name_pair(v: &JsonValue, path: &str, p: &mut Problems) -> Option<(String, String)> {
    let arr = as_arr(v, path, p)?;
    if arr.len() != 2 {
        p.push(format!("{path} must be a two-element [from, to] array"));
        return None;
    }
    Some((
        as_str(&arr[0], &format!("{path}[0]"), p)?,
        as_str(&arr[1], &format!("{path}[1]"), p)?,
    ))
}

fn as_bitrate_label(v: &JsonValue, path: &str, p: &mut Problems) -> Option<String> {
    let s = as_str(v, path, p)?;
    if bitrate_from_label(&s).is_none() {
        p.push(format!("{path} is not a known bit rate: `{s}`"));
        return None;
    }
    Some(s)
}

fn parse_run(v: &JsonValue, p: &mut Problems) -> RunSpec {
    let mut run = RunSpec::default();
    let Some(obj) = as_obj(v, "`run`", p) else {
        return run;
    };
    check_keys(
        obj,
        &["seed", "trials", "workers", "quick", "faults"],
        "`run`",
        p,
    );
    if let Some(v) = opt(obj, "seed") {
        if let Some(n) = as_u64(v, "`run.seed`", p) {
            run.seed = n;
        }
    }
    if let Some(v) = opt(obj, "trials") {
        match as_u64(v, "`run.trials`", p) {
            Some(n) if n >= 1 => run.trials = n as usize,
            Some(_) => p.push("`run.trials` must be at least 1".to_string()),
            None => {}
        }
    }
    if let Some(v) = opt(obj, "workers") {
        match as_u64(v, "`run.workers`", p) {
            Some(n) if n >= 1 => run.workers = n as usize,
            Some(_) => p.push("`run.workers` must be at least 1".to_string()),
            None => {}
        }
    }
    if let Some(v) = opt(obj, "quick") {
        if let Some(b) = as_bool(v, "`run.quick`", p) {
            run.quick = b;
        }
    }
    if let Some(v) = opt(obj, "faults") {
        if let Some(s) = as_str(v, "`run.faults`", p) {
            match s.parse::<FaultProfile>() {
                Ok(f) => run.faults = f,
                Err(_) => p.push(format!("`run.faults` is not a known profile: `{s}`")),
            }
        }
    }
    run
}

fn parse_node(v: &JsonValue, path: &str, p: &mut Problems) -> Option<NodeSpec> {
    let obj = as_obj(v, path, p)?;
    check_keys(
        obj,
        &[
            "name",
            "mac",
            "kind",
            "position",
            "behavior",
            "band",
            "channel",
            "ssid",
            "beacon_interval_us",
            "retries",
            "velocity",
        ],
        path,
        p,
    );
    let name = req(obj, "name", path, p).and_then(|v| as_str(v, &format!("{path}.name"), p));
    let mac = req(obj, "mac", path, p).and_then(|v| as_mac(v, &format!("{path}.mac"), p));
    let kind = req(obj, "kind", path, p)
        .and_then(|v| as_str(v, &format!("{path}.kind"), p))
        .and_then(|s| match NodeKind::from_label(&s) {
            Some(k) => Some(k),
            None => {
                p.push(format!(
                    "{path}.kind must be `client`, `ap` or `monitor`, got `{s}`"
                ));
                None
            }
        });
    let position =
        req(obj, "position", path, p).and_then(|v| as_pair(v, &format!("{path}.position"), p));
    let behavior = opt(obj, "behavior")
        .and_then(|v| as_str(v, &format!("{path}.behavior"), p))
        .and_then(|s| {
            if behavior_from_label(&s).is_none() {
                p.push(format!("{path}.behavior is not a known profile: `{s}`"));
                None
            } else {
                Some(s)
            }
        });
    let band = opt(obj, "band")
        .and_then(|v| as_str(v, &format!("{path}.band"), p))
        .and_then(|s| {
            if band_from_label(&s).is_none() {
                p.push(format!("{path}.band must be `2.4` or `5`, got `{s}`"));
                None
            } else {
                Some(s)
            }
        });
    let channel = opt(obj, "channel")
        .and_then(|v| as_u64(v, &format!("{path}.channel"), p))
        .map(|n| n as u8);
    let ssid = opt(obj, "ssid").and_then(|v| as_str(v, &format!("{path}.ssid"), p));
    let beacon_interval_us = opt(obj, "beacon_interval_us")
        .and_then(|v| as_u64(v, &format!("{path}.beacon_interval_us"), p));
    let retries = opt(obj, "retries").and_then(|v| as_bool(v, &format!("{path}.retries"), p));
    let velocity = opt(obj, "velocity").and_then(|v| as_pair(v, &format!("{path}.velocity"), p));
    let kind = kind?;
    if kind == NodeKind::Ap && ssid.is_none() {
        p.push(format!("{path} is an `ap` and must declare an `ssid`"));
    }
    Some(NodeSpec {
        name: name?,
        mac: mac?,
        kind,
        position: position?,
        behavior,
        band,
        channel,
        ssid,
        beacon_interval_us,
        retries,
        velocity,
    })
}

fn parse_topology(v: &JsonValue, p: &mut Problems) -> Option<TopologySpec> {
    let obj = as_obj(v, "`topology`", p)?;
    check_keys(
        obj,
        &[
            "duration_us",
            "propagation",
            "nodes",
            "links",
            "associations",
        ],
        "`topology`",
        p,
    );
    let duration_us = req(obj, "duration_us", "`topology`", p)
        .and_then(|v| as_u64(v, "`topology.duration_us`", p));
    let propagation = opt(obj, "propagation")
        .and_then(|v| as_str(v, "`topology.propagation`", p))
        .and_then(|s| {
            if propagation_from_label(&s).is_none() {
                p.push(format!(
                    "`topology.propagation` must be `all_pairs` or `cell_grid`, got `{s}`"
                ));
                None
            } else {
                Some(s)
            }
        });
    let mut nodes = Vec::new();
    if let Some(arr) =
        req(obj, "nodes", "`topology`", p).and_then(|v| as_arr(v, "`topology.nodes`", p))
    {
        for (i, nv) in arr.iter().enumerate() {
            if let Some(n) = parse_node(nv, &format!("`topology.nodes[{i}]`"), p) {
                nodes.push(n);
            }
        }
    }
    let mut seen = std::collections::HashSet::new();
    for n in &nodes {
        if !seen.insert(n.name.clone()) {
            p.push(format!(
                "duplicate node name `{}` in `topology.nodes`",
                n.name
            ));
        }
    }
    let mut links = Vec::new();
    if let Some(arr) = opt(obj, "links").and_then(|v| as_arr(v, "`topology.links`", p)) {
        for (i, lv) in arr.iter().enumerate() {
            if let Some(pair) = as_name_pair(lv, &format!("`topology.links[{i}]`"), p) {
                links.push(pair);
            }
        }
    }
    let mut associations = Vec::new();
    if let Some(arr) =
        opt(obj, "associations").and_then(|v| as_arr(v, "`topology.associations`", p))
    {
        for (i, av) in arr.iter().enumerate() {
            if let Some(pair) = as_name_pair(av, &format!("`topology.associations[{i}]`"), p) {
                associations.push(pair);
            }
        }
    }
    for (section, pairs) in [("links", &links), ("associations", &associations)] {
        for (a, b) in pairs {
            for name in [a, b] {
                if !seen.contains(name) {
                    p.push(format!(
                        "`topology.{section}` references unknown node `{name}`"
                    ));
                }
            }
        }
    }
    Some(TopologySpec {
        duration_us: duration_us?,
        propagation,
        nodes,
        links,
        associations,
    })
}

fn parse_attack(v: &JsonValue, path: &str, p: &mut Problems) -> Option<AttackSpec> {
    let obj = as_obj(v, path, p)?;
    let kind = req(obj, "kind", path, p).and_then(|v| as_str(v, &format!("{path}.kind"), p))?;
    let gs = |key: &str, p: &mut Problems| {
        req(obj, key, path, p).and_then(|v| as_str(v, &format!("{path}.{key}"), p))
    };
    let gu = |key: &str, p: &mut Problems| {
        req(obj, key, path, p).and_then(|v| as_u64(v, &format!("{path}.{key}"), p))
    };
    let gbr = |p: &mut Problems| {
        req(obj, "bitrate", path, p)
            .and_then(|v| as_bitrate_label(v, &format!("{path}.bitrate"), p))
    };
    match kind.as_str() {
        "null-flood" => {
            check_keys(
                obj,
                &[
                    "kind",
                    "attacker",
                    "victim",
                    "rate_pps",
                    "start_us",
                    "duration_us",
                    "bitrate",
                ],
                path,
                p,
            );
            Some(AttackSpec::NullFlood {
                attacker: gs("attacker", p)?,
                victim: gs("victim", p)?,
                rate_pps: gu("rate_pps", p)? as u32,
                start_us: gu("start_us", p)?,
                duration_us: gu("duration_us", p)?,
                bitrate: gbr(p)?,
            })
        }
        "rts-flood" => {
            check_keys(
                obj,
                &[
                    "kind",
                    "attacker",
                    "target",
                    "nav_us",
                    "rate_pps",
                    "start_us",
                    "duration_us",
                    "bitrate",
                ],
                path,
                p,
            );
            Some(AttackSpec::RtsFlood {
                attacker: gs("attacker", p)?,
                target: gs("target", p)?,
                nav_us: gu("nav_us", p)? as u16,
                rate_pps: gu("rate_pps", p)? as u32,
                start_us: gu("start_us", p)?,
                duration_us: gu("duration_us", p)?,
                bitrate: gbr(p)?,
            })
        }
        "deauth-flood" => {
            check_keys(
                obj,
                &[
                    "kind",
                    "attacker",
                    "victim",
                    "forged_ap",
                    "rate_pps",
                    "start_us",
                    "duration_us",
                    "bitrate",
                ],
                path,
                p,
            );
            Some(AttackSpec::DeauthFlood {
                attacker: gs("attacker", p)?,
                victim: gs("victim", p)?,
                forged_ap: gs("forged_ap", p)?,
                rate_pps: gu("rate_pps", p)? as u32,
                start_us: gu("start_us", p)?,
                duration_us: gu("duration_us", p)?,
                bitrate: gbr(p)?,
            })
        }
        "blockack-paralysis" => {
            check_keys(
                obj,
                &[
                    "kind",
                    "attacker",
                    "victim",
                    "spoofed_peer",
                    "jump_to_seq",
                    "at_us",
                    "bitrate",
                ],
                path,
                p,
            );
            let jump = gu("jump_to_seq", p)?;
            if jump > 0x0fff {
                p.push(format!("{path}.jump_to_seq must fit 12 bits (0..=4095)"));
                return None;
            }
            Some(AttackSpec::BlockAckParalysis {
                attacker: gs("attacker", p)?,
                victim: gs("victim", p)?,
                spoofed_peer: gs("spoofed_peer", p)?,
                jump_to_seq: jump as u16,
                at_us: gu("at_us", p)?,
                bitrate: gbr(p)?,
            })
        }
        "qos-traffic" => {
            check_keys(
                obj,
                &[
                    "kind",
                    "from",
                    "to",
                    "rate_pps",
                    "start_us",
                    "duration_us",
                    "payload_len",
                    "bitrate",
                ],
                path,
                p,
            );
            Some(AttackSpec::QosTraffic {
                from: gs("from", p)?,
                to: gs("to", p)?,
                rate_pps: gu("rate_pps", p)? as u32,
                start_us: gu("start_us", p)?,
                duration_us: gu("duration_us", p)?,
                payload_len: gu("payload_len", p)?,
                bitrate: gbr(p)?,
            })
        }
        other => {
            p.push(format!("{path}.kind is not a known attack: `{other}`"));
            None
        }
    }
}

fn parse_probe(v: &JsonValue, path: &str, p: &mut Problems) -> Option<ProbeSpec> {
    let obj = as_obj(v, path, p)?;
    let kind = req(obj, "kind", path, p).and_then(|v| as_str(v, &format!("{path}.kind"), p))?;
    let gs = |key: &str, p: &mut Problems| {
        req(obj, key, path, p).and_then(|v| as_str(v, &format!("{path}.{key}"), p))
    };
    match kind.as_str() {
        "ack-verifier" => {
            check_keys(obj, &["kind", "attacker"], path, p);
            Some(ProbeSpec::AckVerifier {
                attacker: gs("attacker", p)?,
            })
        }
        "station-stat" => {
            check_keys(obj, &["kind", "node", "stat", "metric"], path, p);
            let stat = gs("stat", p)?;
            if polite_wifi_core::StatKind::from_label(&stat).is_none() {
                p.push(format!("{path}.stat is not a known counter: `{stat}`"));
                return None;
            }
            Some(ProbeSpec::StationStat {
                node: gs("node", p)?,
                stat,
                metric: gs("metric", p)?,
            })
        }
        "association" => {
            check_keys(obj, &["kind", "node", "peer", "metric"], path, p);
            Some(ProbeSpec::Association {
                node: gs("node", p)?,
                peer: gs("peer", p)?,
                metric: gs("metric", p)?,
            })
        }
        other => {
            p.push(format!("{path}.kind is not a known probe: `{other}`"));
            None
        }
    }
}

fn parse_assertion(v: &JsonValue, path: &str, p: &mut Problems) -> Option<AssertionSpec> {
    let obj = as_obj(v, path, p)?;
    check_keys(obj, &["metric", "op", "value", "when"], path, p);
    let metric = req(obj, "metric", path, p).and_then(|v| as_str(v, &format!("{path}.metric"), p));
    let op = req(obj, "op", path, p)
        .and_then(|v| as_str(v, &format!("{path}.op"), p))
        .and_then(|s| {
            if polite_wifi_core::CmpOp::from_symbol(&s).is_none() {
                p.push(format!("{path}.op is not a comparison operator: `{s}`"));
                None
            } else {
                Some(s)
            }
        });
    let value = req(obj, "value", path, p).and_then(|v| as_f64(v, &format!("{path}.value"), p));
    let clean_only = match opt(obj, "when") {
        None => false,
        Some(v) => match as_str(v, &format!("{path}.when"), p)?.as_str() {
            "clean" => true,
            "always" => false,
            other => {
                p.push(format!(
                    "{path}.when must be `clean` or `always`, got `{other}`"
                ));
                false
            }
        },
    };
    Some(AssertionSpec {
        metric: metric?,
        op: op?,
        value: value?,
        clean_only,
    })
}

impl ScenarioSpec {
    /// Parses and validates a scenario from JSON text, aggregating every
    /// problem into one error.
    pub fn parse(input: &str) -> Result<ScenarioSpec, String> {
        let root = parse_json(input).map_err(|e| {
            format!("invalid scenario spec: not valid JSON ({e}) (see DESIGN.md \u{a7}13 for the grammar)")
        })?;
        let mut p = Problems(Vec::new());
        let obj = match root.as_object() {
            Some(o) => o,
            None => {
                return Err(
                    "invalid scenario spec: top level must be an object (see DESIGN.md \u{a7}13 for the grammar)"
                        .to_string(),
                )
            }
        };
        check_keys(
            obj,
            &[
                "name",
                "paper_ref",
                "slug",
                "runner",
                "run",
                "topology",
                "attacks",
                "probes",
                "assertions",
                "params",
            ],
            "the spec",
            &mut p,
        );
        let name = req(obj, "name", "the spec", &mut p).and_then(|v| as_str(v, "`name`", &mut p));
        let paper_ref = req(obj, "paper_ref", "the spec", &mut p)
            .and_then(|v| as_str(v, "`paper_ref`", &mut p));
        let slug = req(obj, "slug", "the spec", &mut p).and_then(|v| as_str(v, "`slug`", &mut p));
        let runner =
            req(obj, "runner", "the spec", &mut p).and_then(|v| as_str(v, "`runner`", &mut p));
        if let Some(s) = &slug {
            if s.is_empty()
                || !s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                p.push(format!(
                    "`slug` must be non-empty snake_case ([a-z0-9_]), got `{s}`"
                ));
            }
        }
        let run = match opt(obj, "run") {
            Some(v) => parse_run(v, &mut p),
            None => RunSpec::default(),
        };
        let topology = opt(obj, "topology").and_then(|v| parse_topology(v, &mut p));
        let mut attacks = Vec::new();
        if let Some(arr) = opt(obj, "attacks").and_then(|v| as_arr(v, "`attacks`", &mut p)) {
            for (i, av) in arr.iter().enumerate() {
                if let Some(a) = parse_attack(av, &format!("`attacks[{i}]`"), &mut p) {
                    attacks.push(a);
                }
            }
        }
        let mut probes = Vec::new();
        if let Some(arr) = opt(obj, "probes").and_then(|v| as_arr(v, "`probes`", &mut p)) {
            for (i, pv) in arr.iter().enumerate() {
                if let Some(pr) = parse_probe(pv, &format!("`probes[{i}]`"), &mut p) {
                    probes.push(pr);
                }
            }
        }
        let mut assertions = Vec::new();
        if let Some(arr) = opt(obj, "assertions").and_then(|v| as_arr(v, "`assertions`", &mut p)) {
            for (i, av) in arr.iter().enumerate() {
                if let Some(a) = parse_assertion(av, &format!("`assertions[{i}]`"), &mut p) {
                    assertions.push(a);
                }
            }
        }
        let mut params = Vec::new();
        if let Some(pobj) = opt(obj, "params").and_then(|v| as_obj(v, "`params`", &mut p)) {
            for (key, v) in pobj {
                match v {
                    JsonValue::Num(n) => params.push((key.clone(), ParamValue::Num(*n))),
                    JsonValue::Str(s) => params.push((key.clone(), ParamValue::Str(s.clone()))),
                    JsonValue::Bool(b) => params.push((key.clone(), ParamValue::Bool(*b))),
                    _ => p.push(format!(
                        "`params.{key}` must be a number, string or boolean"
                    )),
                }
            }
        }
        // Cross-references: every node an attack/probe names must exist.
        let node_names: std::collections::HashSet<&str> = topology
            .iter()
            .flat_map(|t| t.nodes.iter().map(|n| n.name.as_str()))
            .collect();
        let mut referenced: Vec<(String, String)> = Vec::new();
        for (i, a) in attacks.iter().enumerate() {
            let refs: Vec<&String> = match a {
                AttackSpec::NullFlood {
                    attacker, victim, ..
                } => vec![attacker, victim],
                AttackSpec::RtsFlood {
                    attacker, target, ..
                } => vec![attacker, target],
                AttackSpec::DeauthFlood {
                    attacker,
                    victim,
                    forged_ap,
                    ..
                } => {
                    vec![attacker, victim, forged_ap]
                }
                AttackSpec::BlockAckParalysis {
                    attacker,
                    victim,
                    spoofed_peer,
                    ..
                } => {
                    vec![attacker, victim, spoofed_peer]
                }
                AttackSpec::QosTraffic { from, to, .. } => vec![from, to],
            };
            for r in refs {
                referenced.push((format!("`attacks[{i}]`"), r.clone()));
            }
        }
        for (i, pr) in probes.iter().enumerate() {
            let refs: Vec<&String> = match pr {
                ProbeSpec::AckVerifier { attacker } => vec![attacker],
                ProbeSpec::StationStat { node, .. } => vec![node],
                ProbeSpec::Association { node, peer, .. } => vec![node, peer],
            };
            for r in refs {
                referenced.push((format!("`probes[{i}]`"), r.clone()));
            }
        }
        for (site, name) in &referenced {
            if !node_names.contains(name.as_str()) {
                p.push(format!("{site} references unknown node `{name}`"));
            }
        }
        if runner.as_deref() == Some("generic") {
            if topology.is_none() {
                p.push("`runner: generic` requires a `topology` section".to_string());
            }
            if probes.is_empty() {
                p.push("`runner: generic` requires at least one probe".to_string());
            }
        }
        p.into_error()?;
        Ok(ScenarioSpec {
            name: name.unwrap(),
            paper_ref: paper_ref.unwrap(),
            slug: slug.unwrap(),
            runner: runner.unwrap(),
            run,
            topology,
            attacks,
            probes,
            assertions,
            params,
        })
    }

    /// Reads a numeric param.
    pub fn param_num(&self, key: &str) -> Option<f64> {
        self.params.iter().find_map(|(k, v)| match v {
            ParamValue::Num(n) if k == key => Some(*n),
            _ => None,
        })
    }

    /// Builds the [`RunArgs`] defaults this spec pins.
    pub fn run_args(&self) -> RunArgs {
        self.run.to_run_args()
    }
}

// ===== Canonical form =====

/// Emits canonical JSON: fixed field order, two-space indent, integral
/// numbers without a decimal point. Committed `scenarios/*.json` files
/// are kept in this form so parse → write round-trips byte-exact.
struct Canon {
    out: String,
    indent: usize,
}

impl Canon {
    fn new() -> Canon {
        Canon {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn num(n: f64) -> String {
        if n.fract() == 0.0 && n.abs() < 9e15 {
            format!("{}", n as i64)
        } else {
            format!("{n}")
        }
    }

    fn str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

fn comma(last: bool) -> &'static str {
    if last {
        ""
    } else {
        ","
    }
}

impl ScenarioSpec {
    /// Re-emits the spec in canonical form (fixed field order,
    /// two-space indent, minimal number formatting).
    pub fn to_canonical_json(&self) -> String {
        let mut c = Canon::new();
        c.line("{");
        c.indent += 1;
        c.line(&format!("\"name\": {},", Canon::str(&self.name)));
        c.line(&format!("\"paper_ref\": {},", Canon::str(&self.paper_ref)));
        c.line(&format!("\"slug\": {},", Canon::str(&self.slug)));
        c.line(&format!("\"runner\": {},", Canon::str(&self.runner)));
        let mut sections: Vec<String> = Vec::new();
        {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"run\": {");
            c2.indent += 1;
            c2.line(&format!("\"seed\": {},", self.run.seed));
            c2.line(&format!("\"trials\": {},", self.run.trials));
            c2.line(&format!("\"workers\": {},", self.run.workers));
            c2.line(&format!("\"quick\": {},", self.run.quick));
            c2.line(&format!(
                "\"faults\": {}",
                Canon::str(self.run.faults.name())
            ));
            c2.indent -= 1;
            c2.line("}");
            sections.push(c2.out);
        }
        if let Some(t) = &self.topology {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"topology\": {");
            c2.indent += 1;
            c2.line(&format!("\"duration_us\": {},", t.duration_us));
            if let Some(prop) = &t.propagation {
                c2.line(&format!("\"propagation\": {},", Canon::str(prop)));
            }
            let links_follow = !t.links.is_empty() || !t.associations.is_empty();
            c2.line("\"nodes\": [");
            c2.indent += 1;
            for (i, n) in t.nodes.iter().enumerate() {
                c2.line("{");
                c2.indent += 1;
                let mut fields: Vec<String> = vec![
                    format!("\"name\": {}", Canon::str(&n.name)),
                    format!("\"mac\": {}", Canon::str(&n.mac.to_string())),
                    format!("\"kind\": {}", Canon::str(n.kind.label())),
                    format!(
                        "\"position\": [{}, {}]",
                        Canon::num(n.position.0),
                        Canon::num(n.position.1)
                    ),
                ];
                if let Some(b) = &n.behavior {
                    fields.push(format!("\"behavior\": {}", Canon::str(b)));
                }
                if let Some(b) = &n.band {
                    fields.push(format!("\"band\": {}", Canon::str(b)));
                }
                if let Some(ch) = n.channel {
                    fields.push(format!("\"channel\": {ch}"));
                }
                if let Some(s) = &n.ssid {
                    fields.push(format!("\"ssid\": {}", Canon::str(s)));
                }
                if let Some(bi) = n.beacon_interval_us {
                    fields.push(format!("\"beacon_interval_us\": {bi}"));
                }
                if let Some(r) = n.retries {
                    fields.push(format!("\"retries\": {r}"));
                }
                if let Some(v) = n.velocity {
                    fields.push(format!(
                        "\"velocity\": [{}, {}]",
                        Canon::num(v.0),
                        Canon::num(v.1)
                    ));
                }
                let n_fields = fields.len();
                for (j, f) in fields.into_iter().enumerate() {
                    c2.line(&format!("{f}{}", comma(j + 1 == n_fields)));
                }
                c2.indent -= 1;
                c2.line(&format!("}}{}", comma(i + 1 == t.nodes.len())));
            }
            c2.indent -= 1;
            c2.line(&format!("]{}", comma(!links_follow)));
            if !t.links.is_empty() {
                c2.line("\"links\": [");
                c2.indent += 1;
                for (i, (a, b)) in t.links.iter().enumerate() {
                    c2.line(&format!(
                        "[{}, {}]{}",
                        Canon::str(a),
                        Canon::str(b),
                        comma(i + 1 == t.links.len())
                    ));
                }
                c2.indent -= 1;
                c2.line(&format!("]{}", comma(t.associations.is_empty())));
            }
            if !t.associations.is_empty() {
                c2.line("\"associations\": [");
                c2.indent += 1;
                for (i, (a, b)) in t.associations.iter().enumerate() {
                    c2.line(&format!(
                        "[{}, {}]{}",
                        Canon::str(a),
                        Canon::str(b),
                        comma(i + 1 == t.associations.len())
                    ));
                }
                c2.indent -= 1;
                c2.line("]");
            }
            c2.indent -= 1;
            c2.line("}");
            sections.push(c2.out);
        }
        if !self.attacks.is_empty() {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"attacks\": [");
            c2.indent += 1;
            for (i, a) in self.attacks.iter().enumerate() {
                let fields: Vec<String> = match a {
                    AttackSpec::NullFlood {
                        attacker,
                        victim,
                        rate_pps,
                        start_us,
                        duration_us,
                        bitrate,
                    } => vec![
                        format!("\"kind\": {}", Canon::str("null-flood")),
                        format!("\"attacker\": {}", Canon::str(attacker)),
                        format!("\"victim\": {}", Canon::str(victim)),
                        format!("\"rate_pps\": {rate_pps}"),
                        format!("\"start_us\": {start_us}"),
                        format!("\"duration_us\": {duration_us}"),
                        format!("\"bitrate\": {}", Canon::str(bitrate)),
                    ],
                    AttackSpec::RtsFlood {
                        attacker,
                        target,
                        nav_us,
                        rate_pps,
                        start_us,
                        duration_us,
                        bitrate,
                    } => vec![
                        format!("\"kind\": {}", Canon::str("rts-flood")),
                        format!("\"attacker\": {}", Canon::str(attacker)),
                        format!("\"target\": {}", Canon::str(target)),
                        format!("\"nav_us\": {nav_us}"),
                        format!("\"rate_pps\": {rate_pps}"),
                        format!("\"start_us\": {start_us}"),
                        format!("\"duration_us\": {duration_us}"),
                        format!("\"bitrate\": {}", Canon::str(bitrate)),
                    ],
                    AttackSpec::DeauthFlood {
                        attacker,
                        victim,
                        forged_ap,
                        rate_pps,
                        start_us,
                        duration_us,
                        bitrate,
                    } => vec![
                        format!("\"kind\": {}", Canon::str("deauth-flood")),
                        format!("\"attacker\": {}", Canon::str(attacker)),
                        format!("\"victim\": {}", Canon::str(victim)),
                        format!("\"forged_ap\": {}", Canon::str(forged_ap)),
                        format!("\"rate_pps\": {rate_pps}"),
                        format!("\"start_us\": {start_us}"),
                        format!("\"duration_us\": {duration_us}"),
                        format!("\"bitrate\": {}", Canon::str(bitrate)),
                    ],
                    AttackSpec::BlockAckParalysis {
                        attacker,
                        victim,
                        spoofed_peer,
                        jump_to_seq,
                        at_us,
                        bitrate,
                    } => vec![
                        format!("\"kind\": {}", Canon::str("blockack-paralysis")),
                        format!("\"attacker\": {}", Canon::str(attacker)),
                        format!("\"victim\": {}", Canon::str(victim)),
                        format!("\"spoofed_peer\": {}", Canon::str(spoofed_peer)),
                        format!("\"jump_to_seq\": {jump_to_seq}"),
                        format!("\"at_us\": {at_us}"),
                        format!("\"bitrate\": {}", Canon::str(bitrate)),
                    ],
                    AttackSpec::QosTraffic {
                        from,
                        to,
                        rate_pps,
                        start_us,
                        duration_us,
                        payload_len,
                        bitrate,
                    } => vec![
                        format!("\"kind\": {}", Canon::str("qos-traffic")),
                        format!("\"from\": {}", Canon::str(from)),
                        format!("\"to\": {}", Canon::str(to)),
                        format!("\"rate_pps\": {rate_pps}"),
                        format!("\"start_us\": {start_us}"),
                        format!("\"duration_us\": {duration_us}"),
                        format!("\"payload_len\": {payload_len}"),
                        format!("\"bitrate\": {}", Canon::str(bitrate)),
                    ],
                };
                c2.line("{");
                c2.indent += 1;
                let n_fields = fields.len();
                for (j, f) in fields.into_iter().enumerate() {
                    c2.line(&format!("{f}{}", comma(j + 1 == n_fields)));
                }
                c2.indent -= 1;
                c2.line(&format!("}}{}", comma(i + 1 == self.attacks.len())));
            }
            c2.indent -= 1;
            c2.line("]");
            sections.push(c2.out);
        }
        if !self.probes.is_empty() {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"probes\": [");
            c2.indent += 1;
            for (i, pr) in self.probes.iter().enumerate() {
                let fields: Vec<String> = match pr {
                    ProbeSpec::AckVerifier { attacker } => vec![
                        format!("\"kind\": {}", Canon::str("ack-verifier")),
                        format!("\"attacker\": {}", Canon::str(attacker)),
                    ],
                    ProbeSpec::StationStat { node, stat, metric } => vec![
                        format!("\"kind\": {}", Canon::str("station-stat")),
                        format!("\"node\": {}", Canon::str(node)),
                        format!("\"stat\": {}", Canon::str(stat)),
                        format!("\"metric\": {}", Canon::str(metric)),
                    ],
                    ProbeSpec::Association { node, peer, metric } => vec![
                        format!("\"kind\": {}", Canon::str("association")),
                        format!("\"node\": {}", Canon::str(node)),
                        format!("\"peer\": {}", Canon::str(peer)),
                        format!("\"metric\": {}", Canon::str(metric)),
                    ],
                };
                c2.line("{");
                c2.indent += 1;
                let n_fields = fields.len();
                for (j, f) in fields.into_iter().enumerate() {
                    c2.line(&format!("{f}{}", comma(j + 1 == n_fields)));
                }
                c2.indent -= 1;
                c2.line(&format!("}}{}", comma(i + 1 == self.probes.len())));
            }
            c2.indent -= 1;
            c2.line("]");
            sections.push(c2.out);
        }
        if !self.assertions.is_empty() {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"assertions\": [");
            c2.indent += 1;
            for (i, a) in self.assertions.iter().enumerate() {
                let mut fields: Vec<String> = vec![
                    format!("\"metric\": {}", Canon::str(&a.metric)),
                    format!("\"op\": {}", Canon::str(&a.op)),
                    format!("\"value\": {}", Canon::num(a.value)),
                ];
                if a.clean_only {
                    fields.push(format!("\"when\": {}", Canon::str("clean")));
                }
                c2.line("{");
                c2.indent += 1;
                let n_fields = fields.len();
                for (j, f) in fields.into_iter().enumerate() {
                    c2.line(&format!("{f}{}", comma(j + 1 == n_fields)));
                }
                c2.indent -= 1;
                c2.line(&format!("}}{}", comma(i + 1 == self.assertions.len())));
            }
            c2.indent -= 1;
            c2.line("]");
            sections.push(c2.out);
        }
        if !self.params.is_empty() {
            let mut c2 = Canon::new();
            c2.indent = c.indent;
            c2.line("\"params\": {");
            c2.indent += 1;
            for (i, (k, v)) in self.params.iter().enumerate() {
                let value = match v {
                    ParamValue::Num(n) => Canon::num(*n),
                    ParamValue::Str(s) => Canon::str(s),
                    ParamValue::Bool(b) => format!("{b}"),
                };
                c2.line(&format!(
                    "{}: {value}{}",
                    Canon::str(k),
                    comma(i + 1 == self.params.len())
                ));
            }
            c2.indent -= 1;
            c2.line("}");
            sections.push(c2.out);
        }
        let n_sections = sections.len();
        for (i, mut s) in sections.into_iter().enumerate() {
            if i + 1 != n_sections {
                // Splice the separating comma onto the section's closing
                // brace/bracket line.
                let trimmed = s.trim_end().len();
                s.replace_range(trimmed.., ",\n");
            }
            c.out.push_str(&s);
        }
        c.indent -= 1;
        c.line("}");
        c.out
    }
}

impl TopologySpec {
    /// Routes the topology through [`ScenarioBuilder`]: nodes in
    /// declaration order (so [`NodeId`]s are stable), then links, then
    /// one-directional associations.
    pub fn builder(&self, faults: FaultProfile) -> (ScenarioBuilder, BTreeMap<String, NodeId>) {
        use polite_wifi_mac::StationConfig;
        let mut config = polite_wifi_sim::SimConfig::default();
        if let Some(mode) = self.propagation.as_deref().and_then(propagation_from_label) {
            config.propagation = mode;
        }
        let mut sb = ScenarioBuilder::new()
            .config(config)
            .duration_us(self.duration_us)
            .faults(faults);
        let mut ids: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut macs: BTreeMap<String, MacAddr> = BTreeMap::new();
        for n in &self.nodes {
            let mut cfg = match n.kind {
                NodeKind::Ap => StationConfig::access_point(n.mac, n.ssid.as_deref().unwrap_or("")),
                NodeKind::Client | NodeKind::Monitor => StationConfig::client(n.mac),
            };
            if let Some(b) = n.behavior.as_deref().and_then(behavior_from_label) {
                cfg.behavior = b;
            }
            if let Some(b) = n.band.as_deref().and_then(band_from_label) {
                cfg.band = b;
            }
            if let Some(c) = n.channel {
                cfg.channel = c;
            }
            if let Some(bi) = n.beacon_interval_us {
                cfg.beacon_interval_us = if bi == 0 { None } else { Some(bi) };
            }
            let id = sb.station(cfg, n.position);
            if n.kind == NodeKind::Monitor {
                sb.set_monitor(id);
            }
            if let Some(r) = n.retries {
                sb.retries(id, r);
            }
            if let Some(v) = n.velocity {
                sb.velocity(id, v);
            }
            ids.insert(n.name.clone(), id);
            macs.insert(n.name.clone(), n.mac);
        }
        for (a, b) in &self.links {
            sb.link(ids[a], ids[b]);
        }
        for (node, peer) in &self.associations {
            sb.associate(ids[node], macs[peer]);
        }
        (sb, ids)
    }

    /// The MAC of a named node (validated to exist at parse time).
    pub fn mac_of(&self, name: &str) -> MacAddr {
        self.nodes
            .iter()
            .find(|n| n.name == name)
            .map(|n| n.mac)
            .expect("validated node name")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
  "name": "T",
  "paper_ref": "ref",
  "slug": "t",
  "runner": "generic",
  "run": {
    "seed": 2,
    "trials": 3,
    "workers": 1,
    "quick": false,
    "faults": "clean"
  },
  "topology": {
    "duration_us": 1000,
    "nodes": [
      {
        "name": "ap",
        "mac": "68:02:b8:00:00:01",
        "kind": "ap",
        "position": [2, 0],
        "ssid": "Net"
      },
      {
        "name": "victim",
        "mac": "f2:6e:0b:11:22:33",
        "kind": "client",
        "position": [0, 0]
      }
    ],
    "links": [
      ["victim", "ap"]
    ]
  },
  "probes": [
    {
      "kind": "station-stat",
      "node": "victim",
      "stat": "acks_sent",
      "metric": "acks_sent"
    }
  ]
}
"#;

    #[test]
    fn minimal_spec_parses_and_round_trips_byte_exact() {
        let spec = ScenarioSpec::parse(MINIMAL).expect("parses");
        assert_eq!(spec.name, "T");
        assert_eq!(spec.run.seed, 2);
        assert_eq!(spec.run.trials, 3);
        let topo = spec.topology.as_ref().unwrap();
        assert_eq!(topo.nodes.len(), 2);
        assert_eq!(topo.links, vec![("victim".to_string(), "ap".to_string())]);
        assert_eq!(spec.to_canonical_json(), MINIMAL);
    }

    #[test]
    fn topology_builder_assigns_ids_in_declaration_order() {
        let spec = ScenarioSpec::parse(MINIMAL).unwrap();
        let topo = spec.topology.as_ref().unwrap();
        let (sb, ids) = topo.builder(FaultProfile::Clean);
        assert_eq!(ids["ap"].0, 0);
        assert_eq!(ids["victim"].0, 1);
        assert_eq!(sb.population(), 2);
        let s = sb.build_with_seed(5);
        assert!(s
            .sim
            .station(ids["victim"])
            .is_associated_with(topo.mac_of("ap")));
    }

    #[test]
    fn all_problems_are_aggregated_into_one_error() {
        let bad = r#"{
  "name": "T",
  "slug": "Bad Slug",
  "runner": "generic",
  "run": {"seed": -1, "faults": "volcanic"},
  "topology": {
    "duration_us": 1000,
    "nodes": [
      {"name": "a", "mac": "not-a-mac", "kind": "router", "position": [0, 0]}
    ],
    "links": [["a", "ghost"]]
  },
  "bogus": 1
}"#;
        let err = ScenarioSpec::parse(bad).unwrap_err();
        for needle in [
            "unknown key `bogus`",
            "missing required key `paper_ref`",
            "`slug` must be non-empty snake_case",
            "`run.seed` must be a non-negative integer",
            "`run.faults` is not a known profile: `volcanic`",
            "not a valid MAC address",
            "kind must be `client`, `ap` or `monitor`, got `router`",
            "references unknown node `ghost`",
            "requires at least one probe",
            "see DESIGN.md \u{a7}13",
        ] {
            assert!(err.contains(needle), "missing {needle:?} in {err}");
        }
        // One aggregated error: a single line, problems joined by "; ".
        assert_eq!(err.lines().count(), 1);
    }

    #[test]
    fn unknown_attack_probe_and_op_are_rejected() {
        let bad = r#"{
  "name": "T",
  "paper_ref": "r",
  "slug": "t",
  "runner": "x",
  "attacks": [{"kind": "tsunami"}],
  "probes": [{"kind": "crystal-ball"}],
  "assertions": [{"metric": "m", "op": "~=", "value": 1}]
}"#;
        let err = ScenarioSpec::parse(bad).unwrap_err();
        assert!(err.contains("not a known attack: `tsunami`"), "{err}");
        assert!(err.contains("not a known probe: `crystal-ball`"), "{err}");
        assert!(err.contains("not a comparison operator: `~=`"), "{err}");
    }

    #[test]
    fn propagation_key_parses_threads_and_round_trips() {
        let with_prop = MINIMAL.replace(
            "\"duration_us\": 1000,",
            "\"duration_us\": 1000,\n    \"propagation\": \"cell_grid\",",
        );
        let spec = ScenarioSpec::parse(&with_prop).expect("parses");
        let topo = spec.topology.as_ref().unwrap();
        assert_eq!(topo.propagation.as_deref(), Some("cell_grid"));
        // Canonical writer keeps the key (right after duration_us).
        assert_eq!(spec.to_canonical_json(), with_prop);
        // And the builder threads it into SimConfig.
        let (sb, _) = topo.builder(FaultProfile::Clean);
        assert_eq!(
            sb.build_with_seed(5).sim.config().propagation,
            polite_wifi_sim::PropagationMode::CellGrid
        );
        // Absent key leaves the default (AllPairs) untouched.
        let plain = ScenarioSpec::parse(MINIMAL).unwrap();
        let (sb, _) = plain
            .topology
            .as_ref()
            .unwrap()
            .builder(FaultProfile::Clean);
        assert_eq!(
            sb.build_with_seed(5).sim.config().propagation,
            polite_wifi_sim::PropagationMode::AllPairs
        );
    }

    #[test]
    fn unknown_propagation_mode_is_rejected_in_the_aggregated_error() {
        let bad = MINIMAL.replace(
            "\"duration_us\": 1000,",
            "\"duration_us\": 1000,\n    \"propagation\": \"psychic\",",
        );
        let err = ScenarioSpec::parse(&bad).unwrap_err();
        assert!(
            err.contains(
                "`topology.propagation` must be `all_pairs` or `cell_grid`, got `psychic`"
            ),
            "{err}"
        );
        assert_eq!(err.lines().count(), 1);
    }

    #[test]
    fn bitrate_labels_cover_every_variant() {
        for label in [
            "1", "2", "5.5", "6", "9", "11", "12", "18", "24", "36", "48", "54",
        ] {
            assert!(bitrate_from_label(label).is_some(), "{label}");
        }
        assert!(bitrate_from_label("7").is_none());
    }

    #[test]
    fn behavior_labels_resolve() {
        for label in [
            "client",
            "quiet_ap",
            "deauthing_ap",
            "iot_power_save",
            "pmf",
            "validating:40",
        ] {
            assert!(behavior_from_label(label).is_some(), "{label}");
        }
        assert!(behavior_from_label("validating:x").is_none());
        assert!(behavior_from_label("chaotic").is_none());
    }
}
