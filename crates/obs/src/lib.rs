//! Zero-dependency structured tracing and metrics for polite-wifi.
//!
//! The paper's claims are timing claims — ACKs returned at SIFS before
//! any credential check could run, battery drain scaling with fake-frame
//! rate — so the simulator needs to observe its own internal timing, not
//! just final report numbers. This crate is that instrument:
//!
//! * **Counters** and **log2 histograms** ([`metrics`]) — typed, named,
//!   merge by addition, exported in sorted order so snapshots are
//!   byte-identical however many workers produced them.
//! * **Spans** ([`span`]) — named virtual-time intervals (frame
//!   exchanges, trials) on per-node tracks, bounded in memory.
//! * A **ring-buffered event recorder** ([`ring`]) holding the most
//!   recent point events in bounded memory.
//! * Two exporters: a canonical JSON metrics snapshot
//!   ([`Obs::metrics_json`]) merged into the harness result envelope,
//!   and a Chrome-trace / Perfetto span dump ([`Obs::chrome_trace_json`])
//!   behind the shared `--trace-out` flag.
//!
//! Span and ring recording are off unless enabled — via [`install`]
//! (process-wide, what `--trace-out` does) or [`Obs::with_config`] —
//! so steady-state simulation pays one branch per would-be span.
//!
//! ```
//! use polite_wifi_obs::{Obs, ObsConfig};
//!
//! let mut trial = Obs::with_config(ObsConfig::tracing());
//! trial.add("frames.injected", 3);
//! trial.observe("mac.ack_turnaround_us", 10);
//! trial.span("frame.exchange", 2, 10_000, 358);
//!
//! let mut merged = Obs::with_config(ObsConfig::tracing());
//! merged.absorb(&trial, 0); // group 0 = trial index 0
//! assert_eq!(merged.counters.get("frames.injected"), 3);
//! assert!(merged.chrome_trace_json().contains("\"ph\":\"X\""));
//! ```

pub mod events;
pub mod frametrace;
pub mod json;
pub mod metrics;
pub mod names;
pub mod openmetrics;
pub mod profiler;
pub mod ring;
pub mod span;
pub mod trace;

pub use events::{Delivery, EventHub, EventJournal, ProgressEvent, TimeSeries};
pub use frametrace::{FrameTrace, HopRecord, TraceLog};
pub use metrics::{Counters, Histogram, Histograms, HISTOGRAM_BUCKETS};
pub use openmetrics::OpenMetricsWriter;
pub use profiler::{ProfStat, Profiler};
pub use ring::{EventRecord, RingLog};
pub use span::{SpanLog, SpanRecord};

use std::sync::OnceLock;

/// What an [`Obs`] records. Counters and histograms are always on (they
/// are the cheap, always-useful part); spans and ring events are opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record spans (and ring events + frame traces). Enabled by
    /// `--trace-out`.
    pub spans: bool,
    /// Span-log bound; spans past it are counted, not stored.
    pub max_spans: usize,
    /// Ring-buffer capacity for point events when `spans` is on.
    pub ring_capacity: usize,
    /// Frame-trace sampling rate, per mille of injected frames (1000 =
    /// every frame, subject to `max_traces`). The decision is the pure
    /// function [`frametrace::sampled`] of `(trial seed, trace id)`.
    pub trace_sample_permille: u32,
    /// Frame-trace store bound; traces past it are counted, not stored.
    pub max_traces: usize,
    /// Per-trace hop bound; hops past it are counted, not stored.
    pub max_hops: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            spans: false,
            max_spans: 200_000,
            ring_capacity: 4096,
            trace_sample_permille: 1000,
            max_traces: 2048,
            max_hops: 32,
        }
    }
}

impl ObsConfig {
    /// The config `--trace-out` installs: spans and ring recording on.
    pub fn tracing() -> ObsConfig {
        ObsConfig {
            spans: true,
            ..ObsConfig::default()
        }
    }
}

static CONFIG: OnceLock<ObsConfig> = OnceLock::new();

/// Installs the process-wide config new [`Obs`] instances pick up.
/// First caller wins (like a tracing subscriber); returns whether this
/// call installed it.
pub fn install(config: ObsConfig) -> bool {
    CONFIG.set(config).is_ok()
}

/// The installed process-wide config, or the default when none was
/// installed.
pub fn config() -> ObsConfig {
    CONFIG.get().copied().unwrap_or_default()
}

/// One observability scope: a bundle of counters, histograms, a span
/// log and an event ring.
///
/// The simulator owns one per instance; the harness owns one per
/// experiment and [`absorb`](Obs::absorb)s per-trial scopes **in trial
/// order**, which keeps every export byte-identical across `--workers`
/// counts (the same contract `MetricsLedger` follows).
#[derive(Debug, Clone)]
pub struct Obs {
    /// Named monotonic counters.
    pub counters: Counters,
    /// Named log2 histograms.
    pub histograms: Histograms,
    /// Completed spans (bounded).
    pub spans: SpanLog,
    /// Most recent point events (bounded).
    pub ring: RingLog,
    /// Sampled causal frame timelines (bounded).
    pub traces: TraceLog,
    /// Per-event-kind scheduler self-profile (always on; the
    /// deterministic half is exported, wall-clock stays out of
    /// canonical documents).
    pub profiler: Profiler,
    enabled: bool,
    trace_sample_permille: u32,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// An observability scope using the process-wide [`config`].
    pub fn new() -> Obs {
        Obs::with_config(config())
    }

    /// An observability scope with an explicit config (tests, tools).
    pub fn with_config(cfg: ObsConfig) -> Obs {
        Obs {
            counters: Counters::new(),
            histograms: Histograms::new(),
            spans: SpanLog::new(if cfg.spans { cfg.max_spans } else { 0 }),
            ring: RingLog::new(if cfg.spans { cfg.ring_capacity } else { 0 }),
            traces: TraceLog::new(if cfg.spans { cfg.max_traces } else { 0 }, cfg.max_hops),
            profiler: Profiler::new(),
            enabled: cfg.spans,
            trace_sample_permille: cfg.trace_sample_permille,
        }
    }

    /// True when span/ring recording is enabled for this scope.
    pub fn tracing_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.add(name, n);
    }

    /// Adds 1 to a counter.
    pub fn incr(&mut self, name: &str) {
        self.counters.add(name, 1);
    }

    /// Records one observation into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.observe(name, value);
    }

    /// Records a completed span (no-op unless tracing is enabled).
    pub fn span(&mut self, name: &str, track: u64, start_us: u64, dur_us: u64) {
        if self.enabled {
            self.spans.push(SpanRecord {
                name: name.to_string(),
                track,
                group: 0,
                start_us,
                dur_us,
            });
        }
    }

    /// Records a point event into the ring (no-op unless tracing is
    /// enabled).
    pub fn event(&mut self, ts_us: u64, track: u64, label: &str) {
        if self.enabled {
            self.ring.record(ts_us, track, label);
        }
    }

    /// The deterministic frame-trace sampling decision for this scope:
    /// false unless tracing is enabled, otherwise the pure function
    /// [`frametrace::sampled`] of `(seed, trace_id)` at the configured
    /// per-mille rate.
    pub fn trace_sampled(&self, seed: u64, trace_id: u64) -> bool {
        self.enabled && frametrace::sampled(seed, trace_id, self.trace_sample_permille)
    }

    /// Opens a frame trace (no-op unless tracing is enabled).
    pub fn trace_begin(&mut self, trace_id: u64) {
        if self.enabled {
            self.traces.begin(trace_id);
        }
    }

    /// Appends a hop to a frame trace (no-op unless tracing is enabled).
    pub fn trace_hop(&mut self, trace_id: u64, ts_us: u64, node: u64, kind: &str, arg: u64) {
        if self.enabled {
            self.traces.hop(trace_id, ts_us, node, kind, arg);
        }
    }

    /// Attributes one handled scheduler event to the self-profiler.
    pub fn prof(&mut self, kind: &str, virt_us: u64, wall_ns: u64) {
        self.profiler.record(kind, virt_us, wall_ns);
    }

    /// Folds another scope into this one, tagging its spans with
    /// `group` (the absorbing side's trial index). Must be called in
    /// trial-index order for deterministic exports.
    pub fn absorb(&mut self, other: &Obs, group: u64) {
        self.counters.merge(&other.counters);
        self.histograms.merge(&other.histograms);
        self.profiler.merge(&other.profiler);
        if self.enabled {
            self.spans.absorb(&other.spans, group);
            for event in other.ring.events() {
                self.ring.record(event.ts_us, event.track, &event.label);
            }
            self.ring.evicted += other.ring.evicted;
            self.traces.absorb(&other.traces, group);
        }
    }

    /// True when nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.ring.is_empty()
            && self.traces.is_empty()
            && self.profiler.is_empty()
    }

    /// The canonical JSON metrics snapshot: counters and histograms in
    /// sorted-name order, buckets keyed by log2 index (non-zero only).
    /// Two scopes with equal contents render byte-identically, which is
    /// exactly the property the worker-invariance tests pin.
    pub fn metrics_json(&self) -> String {
        let mut w = json::JsonWriter::new();
        w.begin_object().key("counters").begin_object();
        for (name, value) in self.counters.sorted() {
            w.key(name).u64(value);
        }
        w.end_object().key("histograms").begin_object();
        for (name, hist) in self.histograms.sorted() {
            w.key(name)
                .begin_object()
                .key("count")
                .u64(hist.count)
                .key("sum")
                .u64(hist.sum)
                .key("min")
                .u64(if hist.count == 0 { 0 } else { hist.min })
                .key("max")
                .u64(hist.max)
                .key("buckets")
                .begin_object();
            for (idx, n) in hist.buckets.iter().enumerate() {
                if *n > 0 {
                    w.key(&idx.to_string()).u64(*n);
                }
            }
            w.end_object().end_object();
        }
        w.end_object()
            .key("profiler")
            .raw(&self.profiler.to_json())
            .key("spans_dropped")
            .u64(self.spans.dropped)
            .key("events_evicted")
            .u64(self.ring.evicted)
            .key("traces_dropped")
            .u64(self.traces.dropped_traces)
            .key("hops_dropped")
            .u64(self.traces.dropped_hops)
            .end_object();
        w.finish()
    }

    /// Canonical JSON array of the sampled frame timelines (see
    /// [`TraceLog::to_json`]).
    pub fn frame_traces_json(&self) -> String {
        self.traces.to_json()
    }

    /// Renders the span log and event ring as a Chrome-trace document
    /// (open in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(&self.spans, &self.ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scope_skips_spans_but_keeps_metrics() {
        let mut obs = Obs::with_config(ObsConfig::default());
        obs.incr("frames.injected");
        obs.observe("lat", 10);
        obs.span("frame.exchange", 1, 0, 5);
        obs.event(3, 1, "ack.timeout");
        assert!(!obs.tracing_enabled());
        assert_eq!(obs.counters.get("frames.injected"), 1);
        assert!(obs.spans.is_empty());
        assert!(obs.ring.is_empty());
        assert_eq!(obs.spans.dropped, 0);
    }

    #[test]
    fn tracing_scope_records_spans() {
        let mut obs = Obs::with_config(ObsConfig::tracing());
        obs.span("frame.exchange", 1, 100, 358);
        obs.event(500, 1, "ack.timeout");
        assert_eq!(obs.spans.len(), 1);
        assert_eq!(obs.ring.len(), 1);
    }

    #[test]
    fn absorb_merges_and_retags() {
        let mut t0 = Obs::with_config(ObsConfig::tracing());
        t0.add("acks", 2);
        t0.observe("lat", 10);
        t0.span("trial", 0, 0, 100);
        let mut t1 = Obs::with_config(ObsConfig::tracing());
        t1.add("acks", 3);
        t1.observe("lat", 12);

        let mut merged = Obs::with_config(ObsConfig::tracing());
        merged.absorb(&t0, 0);
        merged.absorb(&t1, 1);
        assert_eq!(merged.counters.get("acks"), 5);
        assert_eq!(merged.histograms.get("lat").unwrap().count, 2);
        assert_eq!(merged.spans.spans()[0].group, 0);
    }

    #[test]
    fn metrics_json_is_canonical() {
        // Same contents recorded in different orders → identical bytes.
        let mut a = Obs::with_config(ObsConfig::default());
        a.add("b.count", 1);
        a.add("a.count", 2);
        a.observe("z.lat", 10);
        a.observe("y.lat", 20);
        let mut b = Obs::with_config(ObsConfig::default());
        b.observe("y.lat", 20);
        b.observe("z.lat", 10);
        b.add("a.count", 2);
        b.add("b.count", 1);
        assert_eq!(a.metrics_json(), b.metrics_json());
        let doc = json::parse(&a.metrics_json()).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("a.count")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn install_is_first_wins() {
        // Note: other tests in this binary may race to install first;
        // only the stability of the outcome is asserted.
        let first = config();
        install(ObsConfig::tracing());
        let second = config();
        install(ObsConfig::default());
        assert_eq!(second, config());
        let _ = first;
    }
}
