//! Property tests on the PHY substrate's invariants.

use polite_wifi_phy::airtime;
use polite_wifi_phy::band::Band;
use polite_wifi_phy::csi::{CsiChannel, CsiConfig};
use polite_wifi_phy::link;
use polite_wifi_phy::pathloss::PathLoss;
use polite_wifi_phy::rate::BitRate;
use proptest::prelude::*;

fn arb_rate() -> impl Strategy<Value = BitRate> {
    prop::sample::select(BitRate::ALL.to_vec())
}

fn arb_band() -> impl Strategy<Value = Band> {
    prop_oneof![Just(Band::Ghz2), Just(Band::Ghz5)]
}

proptest! {
    #[test]
    fn airtime_monotone_in_length(rate in arb_rate(), len in 0usize..3000, extra in 1usize..500) {
        let a = airtime::frame_duration_us(len, rate, false);
        let b = airtime::frame_duration_us(len + extra, rate, false);
        prop_assert!(b >= a);
    }

    #[test]
    fn faster_rate_never_slower_within_family(len in 1usize..3000) {
        // Within DSSS and within OFDM, higher bit rates give shorter or
        // equal airtime for the same PSDU.
        let dsss = [BitRate::Mbps1, BitRate::Mbps2, BitRate::Mbps5_5, BitRate::Mbps11];
        let ofdm = [
            BitRate::Mbps6, BitRate::Mbps9, BitRate::Mbps12, BitRate::Mbps18,
            BitRate::Mbps24, BitRate::Mbps36, BitRate::Mbps48, BitRate::Mbps54,
        ];
        for family in [&dsss[..], &ofdm[..]] {
            for pair in family.windows(2) {
                let slow = airtime::frame_duration_us(len, pair[0], false);
                let fast = airtime::frame_duration_us(len, pair[1], false);
                prop_assert!(fast <= slow, "{:?} vs {:?} at {}", pair[0], pair[1], len);
            }
        }
    }

    #[test]
    fn response_rate_is_idempotent_and_not_faster(rate in arb_rate()) {
        let resp = rate.response_rate();
        prop_assert!(resp.bps() <= rate.bps().max(resp.bps()));
        // A response to a response uses the same rate (fixed point).
        prop_assert_eq!(resp.response_rate(), resp);
        // Family is preserved.
        prop_assert_eq!(resp.is_dsss(), rate.is_dsss());
    }

    #[test]
    fn ack_timeout_always_covers_sifs_plus_ack(band in arb_band(), rate in arb_rate()) {
        let timeout = airtime::ack_timeout_us(band, rate);
        let min = band.sifs_us() + airtime::ack_duration_us(rate, false);
        prop_assert!(timeout >= min);
    }

    #[test]
    fn fer_is_probability_and_monotone_in_snr(rate in arb_rate(),
                                              len in 1usize..2000,
                                              snr in -10.0f64..40.0) {
        let f = link::fer(len, rate, snr);
        prop_assert!((0.0..=1.0).contains(&f));
        let better = link::fer(len, rate, snr + 5.0);
        prop_assert!(better <= f + 1e-12);
    }

    #[test]
    fn fer_monotone_in_length(rate in arb_rate(), snr in 0.0f64..30.0,
                              len in 1usize..1000, extra in 1usize..500) {
        prop_assert!(link::fer(len + extra, rate, snr) >= link::fer(len, rate, snr) - 1e-12);
    }

    #[test]
    fn path_loss_monotone_in_distance(d in 0.5f64..500.0, extra in 0.1f64..500.0) {
        for model in [PathLoss::free_space_2ghz4(), PathLoss::indoor_2ghz4()] {
            prop_assert!(model.loss_db(d + extra) >= model.loss_db(d));
            prop_assert!(model.loss_db(d).is_finite());
        }
    }

    #[test]
    fn csi_amplitudes_finite_and_positive(seed in any::<u64>(),
                                          intensities in proptest::collection::vec(0.0f64..1.0, 1..50)) {
        let mut ch = CsiChannel::new(seed);
        for m in intensities {
            let snap = ch.sample(m);
            prop_assert!(snap.amplitudes.iter().all(|a| a.is_finite() && *a >= 0.0));
            prop_assert!(snap.phases.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn csi_channel_never_diverges_under_sustained_motion(seed in any::<u64>()) {
        // The AR(1) scatter must stay bounded even after long bursts.
        let mut ch = CsiChannel::with_config(seed, CsiConfig::default());
        let mut max_amp: f64 = 0.0;
        for _ in 0..500 {
            let s = ch.sample(1.0);
            max_amp = max_amp.max(s.amplitudes.iter().cloned().fold(0.0, f64::max));
        }
        prop_assert!(max_amp < 100.0, "amplitude diverged to {max_amp}");
    }

    #[test]
    fn sample_batch_matches_sample_loop(seed in any::<u64>(),
                                        intensities in proptest::collection::vec(-0.5f64..1.5, 1..80)) {
        // The batched SoA path must be bit-for-bit the AoS sequence: same
        // RNG draw order, same float op order (out-of-range intensities
        // included, which exercise the clamp).
        let mut aos = CsiChannel::new(seed);
        let mut soa = CsiChannel::new(seed);
        let batch = soa.sample_batch(&intensities);
        prop_assert_eq!(batch.len(), intensities.len());
        for (s, m) in intensities.iter().enumerate() {
            let snap = aos.sample(*m);
            prop_assert_eq!(&batch.snapshot(s), &snap, "sample {}", s);
        }
        // And the channels end in identical states.
        prop_assert_eq!(aos.sample(0.3), soa.sample(0.3));
    }

    #[test]
    fn erfc_bounds(x in -6.0f64..6.0) {
        let v = link::erfc(x);
        prop_assert!((0.0..=2.0).contains(&v));
        // Symmetry: erfc(-x) = 2 - erfc(x).
        prop_assert!((link::erfc(-x) - (2.0 - v)).abs() < 1e-9);
    }
}
