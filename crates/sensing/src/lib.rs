//! CSI processing and inference — the sensing side of Polite WiFi.
//!
//! Section 4.1 of the paper shows that the CSI of ACKs elicited by fake
//! frames cleanly separates human activities around the victim device
//! (Figure 5), and Section 4.3 argues the same mechanism powers practical
//! single-device WiFi sensing. This crate supplies that pipeline:
//!
//! * [`script`] — ground-truth motion timelines (the Figure 5 scenario,
//!   breathing, walking) that drive the PHY's CSI channel,
//! * [`series`] — time-aligned CSI amplitude matrices,
//! * [`filter`] — Hampel outlier removal and moving-average smoothing,
//! * [`features`] — sliding-window statistics (std, MAD, peak-to-peak,
//!   mean-crossing rate, spectral energy),
//! * [`segment`] — hysteresis-based activity segmentation,
//! * [`classify`] — threshold and 1-NN activity classifiers,
//! * [`keystroke`] — typing-burst detection on the filtered series,
//!
//! * [`batch`] — batched SoA kernels behind a [`batch::BatchPolicy`]
//!   knob (the scalar modules above stay the reference semantics),
//!
//! plus two of the paper's explicitly-posed open questions, answered on
//! the synthetic channel:
//!
//! * [`breathing`] — vital-sign (breathing-rate) estimation, and
//! * [`occupancy`] — room-occupancy detection.

pub mod batch;
pub mod breathing;
pub mod classify;
pub mod dataset;
pub mod features;
pub mod filter;
pub mod keystroke;
pub mod occupancy;
pub mod script;
pub mod segment;
pub mod series;

pub use batch::{BatchPolicy, SeriesBatch};
pub use breathing::{estimate_breathing_rate, BreathingEstimate};
pub use classify::{ActivityClass, KnnClassifier, ThresholdClassifier};
pub use occupancy::{detect_occupancy, OccupancyConfig, OccupancyInterval};
pub use script::{MotionScript, Phase};
pub use series::CsiSeries;
