//! The SNR → BER → frame-error-rate link model.
//!
//! Used by the simulator's medium to decide whether a receiver's FCS check
//! passes. Polite WiFi acknowledges *exactly* the frames that pass this
//! check, so the FER model is what makes the survey's "ACK verified"
//! statistics realistic rather than tautological.

use crate::rate::{BitRate, Modulation};

/// Complementary error function, Abramowitz & Stegun 7.1.26 applied to
/// `erfc(x) = 1 - erf(x)`; max absolute error ≈ 1.5e-7 — ample for FER.
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

/// Q-function: tail probability of the standard normal.
pub fn q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Bit error rate for a modulation at a given SNR (dB).
///
/// Standard AWGN textbook formulas. For CCK we borrow the DQPSK curve with
/// a small coding gain, a common simulation shortcut.
pub fn ber(modulation: Modulation, snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    let b = match modulation {
        Modulation::Dbpsk => 0.5 * (-snr).exp(),
        Modulation::Dqpsk => q((2.0 * snr).sqrt()) * 1.2,
        Modulation::Cck => q((2.0 * snr / 1.5).sqrt()),
        Modulation::BpskOfdm => q((2.0 * snr).sqrt()),
        Modulation::QpskOfdm => q(snr.sqrt()),
        Modulation::Qam16 => 0.75 * q((snr / 5.0).sqrt()),
        Modulation::Qam64 => (7.0 / 12.0) * q((snr / 21.0).sqrt()),
    };
    b.clamp(0.0, 0.5)
}

/// Frame error rate for `psdu_len` bytes at `rate` and `snr_db`, assuming
/// independent bit errors: `FER = 1 - (1 - BER)^bits`.
pub fn fer(psdu_len: usize, rate: BitRate, snr_db: f64) -> f64 {
    let b = ber(rate.modulation(), snr_db);
    let bits = (psdu_len * 8) as f64;
    1.0 - (1.0 - b).powf(bits)
}

/// Whether the preamble can even be detected (carrier sense threshold).
pub fn detectable(snr_db: f64) -> bool {
    snr_db >= -1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!(erfc(4.0) < 2e-8);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_function_half_at_zero() {
        assert!((q(0.0) - 0.5).abs() < 1e-9);
        assert!((q(1.6449) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Dbpsk,
            Modulation::Dqpsk,
            Modulation::Cck,
            Modulation::BpskOfdm,
            Modulation::QpskOfdm,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mut last = 0.6;
            for snr in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
                let b = ber(m, snr);
                assert!(b <= last + 1e-12, "{m:?} at {snr} dB: {b} > {last}");
                last = b;
            }
        }
    }

    #[test]
    fn higher_order_modulation_needs_more_snr() {
        // At 12 dB, 64-QAM is much worse than BPSK.
        assert!(ber(Modulation::Qam64, 12.0) > 100.0 * ber(Modulation::BpskOfdm, 12.0));
    }

    #[test]
    fn fer_limits() {
        // Excellent SNR → FER ~ 0; terrible SNR → FER ~ 1.
        assert!(fer(28, BitRate::Mbps1, 30.0) < 1e-9);
        assert!(fer(1500, BitRate::Mbps54, 5.0) > 0.999);
    }

    #[test]
    fn longer_frames_fail_more() {
        let short = fer(14, BitRate::Mbps6, 8.0);
        let long = fer(1500, BitRate::Mbps6, 8.0);
        assert!(long > short);
    }

    #[test]
    fn ack_at_good_snr_virtually_never_lost() {
        // An ACK at 1 Mb/s with 25 dB SNR.
        assert!(fer(14, BitRate::Mbps1, 25.0) < 1e-12);
    }

    #[test]
    fn detectability_threshold() {
        assert!(detectable(0.0));
        assert!(!detectable(-5.0));
    }
}
