//! The "why is Polite WiFi unpreventable" analysis (paper §2.2),
//! packaged for the `exp_sifs_timing` harness.

use polite_wifi_phy::band::Band;
use polite_wifi_phy::timing::{
    self, AckPolicy, SifsFeasibility, WPA2_DECODE_MAX_US, WPA2_DECODE_MIN_US,
};
use serde::{Deserialize, Serialize};

/// The full §2.2 argument, quantified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SifsReport {
    /// Per-band SIFS deadlines in µs.
    pub sifs_us: Vec<(String, u64)>,
    /// Feasibility sweep per band: the compliant baseline plus
    /// validate-then-ACK at each cited WPA2 decode latency.
    pub sweeps: Vec<(String, Vec<SifsFeasibility>)>,
    /// Decoder speedup required to squeeze validation into SIFS, per
    /// band, at the optimistic end of the 200–700 µs range.
    pub required_speedup: Vec<(String, f64)>,
    /// The punchline: even with an infinitely fast decoder, fake RTS
    /// frames still elicit CTS because control frames are unencryptable.
    pub rts_fallback_works: bool,
}

/// Builds the full report.
pub fn sifs_report() -> SifsReport {
    let bands = [(Band::Ghz2, "2.4 GHz"), (Band::Ghz5, "5 GHz")];
    SifsReport {
        sifs_us: bands
            .iter()
            .map(|(b, n)| (n.to_string(), b.sifs_us() as u64))
            .collect(),
        sweeps: bands
            .iter()
            .map(|(b, n)| (n.to_string(), timing::sweep_validate_then_ack(*b)))
            .collect(),
        required_speedup: bands
            .iter()
            .map(|(b, n)| (n.to_string(), timing::required_speedup(*b)))
            .collect(),
        rts_fallback_works: true,
    }
}

/// The worst-case overrun factor across both bands (how many times the
/// SIFS budget a validating MAC would blow through).
pub fn worst_case_overrun() -> f64 {
    [Band::Ghz2, Band::Ghz5]
        .iter()
        .map(|&b| {
            timing::analyze(
                b,
                AckPolicy::ValidateThenAck {
                    decode_us: WPA2_DECODE_MAX_US,
                },
            )
            .overrun_factor
        })
        .fold(0.0, f64::max)
}

/// The best case for the defender: fastest cited decode on the most
/// forgiving band — still infeasible.
pub fn best_case_for_defender() -> SifsFeasibility {
    timing::analyze(
        Band::Ghz5,
        AckPolicy::ValidateThenAck {
            decode_us: WPA2_DECODE_MIN_US,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_both_bands() {
        let r = sifs_report();
        assert_eq!(
            r.sifs_us,
            vec![("2.4 GHz".to_string(), 10), ("5 GHz".to_string(), 16)]
        );
        assert_eq!(r.sweeps.len(), 2);
        assert!(r.rts_fallback_works);
    }

    #[test]
    fn even_best_defender_case_misses() {
        let best = best_case_for_defender();
        assert!(best.misses_deadline);
        assert!(best.overrun_factor > 10.0);
    }

    #[test]
    fn worst_case_is_70x() {
        assert!(worst_case_overrun() >= 70.0);
    }

    #[test]
    fn every_validate_sweep_point_fails() {
        let r = sifs_report();
        for (_, sweep) in &r.sweeps {
            // First entry is the compliant baseline; all others fail.
            assert!(!sweep[0].misses_deadline);
            assert!(sweep[1..].iter().all(|f| f.misses_deadline));
        }
    }
}
