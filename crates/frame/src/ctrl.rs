//! Deprecated alias module: the control-frame codec now lives in
//! [`crate::control`] alongside the Frame Control field it depends on.
//!
//! This module is kept as a re-export shim so downstream code written
//! against `polite_wifi_frame::ctrl::ControlFrame` keeps compiling; the
//! `pub mod ctrl` declaration in `lib.rs` carries the `#[deprecated]`
//! marker. Migrate imports to `crate::control::ControlFrame` (or the
//! crate-root re-export `polite_wifi_frame::ControlFrame`).

pub use crate::control::ControlFrame;
