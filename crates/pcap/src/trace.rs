//! Wireshark-style trace rendering.
//!
//! Figures 2 and 3 of the paper are packet-list screenshots with
//! Source / Destination / Info columns. This module renders our captures
//! in the same shape so the regenerated experiments can be compared
//! against the paper by eye.

use crate::capture::Capture;
use polite_wifi_frame::Frame;

/// One rendered packet-list row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    /// Time column in seconds, to microsecond precision.
    pub time: String,
    /// Source column (empty for frames without a transmitter, like ACKs —
    /// Wireshark leaves it blank too).
    pub source: String,
    /// Destination column.
    pub destination: String,
    /// Info column.
    pub info: String,
}

/// Renders a single frame to a row.
pub fn row_for(ts_us: u64, frame: &Frame) -> TraceRow {
    TraceRow {
        time: format!("{}.{:06}", ts_us / 1_000_000, ts_us % 1_000_000),
        source: frame
            .transmitter()
            .map(|a| a.to_string())
            .unwrap_or_default(),
        destination: frame.receiver().map(|a| a.to_string()).unwrap_or_default(),
        info: frame.info_column(),
    }
}

/// Renders a capture to rows.
pub fn rows(capture: &Capture) -> Vec<TraceRow> {
    capture
        .frames()
        .iter()
        .map(|cf| row_for(cf.ts_us, &cf.frame))
        .collect()
}

/// Formats rows as an aligned text table with a header, like the figures.
pub fn format_table(rows: &[TraceRow]) -> String {
    let headers = ["Time", "Source", "Destination", "Info"];
    let mut widths = headers.map(str::len);
    for r in rows {
        widths[0] = widths[0].max(r.time.len());
        widths[1] = widths[1].max(r.source.len());
        widths[2] = widths[2].max(r.destination.len());
        widths[3] = widths[3].max(r.info.len());
    }
    let mut out = String::new();
    let fmt_row = |cols: [&str; 4], widths: &[usize; 4]| -> String {
        format!(
            "{:<w0$}  {:<w1$}  {:<w2$}  {:<w3$}\n",
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3]
        )
    };
    out.push_str(&fmt_row(headers, &widths));
    for r in rows {
        out.push_str(&fmt_row(
            [&r.time, &r.source, &r.destination, &r.info],
            &widths,
        ));
    }
    out
}

/// Convenience: renders a whole capture to the aligned table.
pub fn format_capture(capture: &Capture) -> String {
    format_table(&rows(capture))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::{builder, MacAddr};

    fn victim() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn figure2_shape() {
        // Figure 2: a null frame from aa:bb:... to the victim, then an
        // ACK whose destination is aa:bb:... and whose source is blank.
        let mut cap = Capture::new();
        cap.record_frame(0, &builder::fake_null_frame(victim(), MacAddr::FAKE));
        cap.record_frame(44, &builder::ack(MacAddr::FAKE));
        let rows = rows(&cap);
        assert_eq!(rows[0].source, "aa:bb:bb:bb:bb:bb");
        assert_eq!(rows[0].destination, victim().to_string());
        assert!(rows[0].info.starts_with("Null function (No data)"));
        assert_eq!(rows[1].source, "");
        assert_eq!(rows[1].destination, "aa:bb:bb:bb:bb:bb");
        assert!(rows[1].info.starts_with("Acknowledgement"));
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let mut cap = Capture::new();
        cap.record_frame(1_000_000, &builder::ack(victim()));
        let table = format_capture(&cap);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("Source"));
        assert!(lines[1].contains("1.000000"));
        assert!(lines[1].contains("Acknowledgement"));
    }

    #[test]
    fn time_formatting_microseconds() {
        let r = row_for(1_234_567, &builder::ack(victim()));
        assert_eq!(r.time, "1.234567");
        let r = row_for(44, &builder::ack(victim()));
        assert_eq!(r.time, "0.000044");
    }
}
