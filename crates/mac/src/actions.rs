//! Outputs of the MAC state machine.

use polite_wifi_frame::Frame;
use polite_wifi_phy::rate::BitRate;
use serde::{Deserialize, Serialize};

/// Why the MAC's higher layers discarded a frame. In every one of these
/// cases except `FcsFailed` and `NotForUs`, the *ACK has already been
/// scheduled* — discarding is invisible to the transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiscardReason {
    /// FCS check failed; the PHY never surfaced the frame (and no ACK).
    FcsFailed,
    /// Receiver address did not match (and no ACK).
    NotForUs,
    /// Duplicate (retry with a sequence number already seen).
    Duplicate,
    /// Data frame from a station that is not associated — the "fake
    /// frame" case. ACKed anyway.
    NotAssociated,
    /// Sender is on the administrator's MAC blocklist. The paper's
    /// crucial observation: the AP *still ACKs* (the ACK is generated
    /// below the layer the blocklist lives at).
    Blocklisted,
    /// Unprotected management frame rejected by 802.11w PMF. ACKed anyway.
    PmfViolation,
    /// Frame failed decryption (wrong/absent key). ACKed anyway.
    DecryptFailed,
    /// Data frame older than the receiver's Block-Ack window floor. A
    /// forged BlockAckReq (Bl0ck, arXiv 2302.05899) slides the floor
    /// forward and legitimate traffic is dropped as stale. ACKed anyway.
    BlockAckWindowStale,
}

impl DiscardReason {
    /// Stable snake_case label used in observability counter names
    /// (`mac.discard.<label>`).
    pub fn metric_label(&self) -> &'static str {
        match self {
            DiscardReason::FcsFailed => "fcs_failed",
            DiscardReason::NotForUs => "not_for_us",
            DiscardReason::Duplicate => "duplicate",
            DiscardReason::NotAssociated => "not_associated",
            DiscardReason::Blocklisted => "blocklisted",
            DiscardReason::PmfViolation => "pmf_violation",
            DiscardReason::DecryptFailed => "decrypt_failed",
            DiscardReason::BlockAckWindowStale => "ba_window_stale",
        }
    }
}

/// Radio power states, consumed by the energy model (`polite-wifi-power`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Radio powered down (power-save doze).
    Sleep,
    /// Radio on, listening.
    Idle,
    /// Actively receiving a frame.
    Rx,
    /// Actively transmitting a frame.
    Tx,
}

/// An action the station wants the surrounding radio/simulator to take.
#[derive(Debug, Clone, PartialEq)]
pub enum MacAction {
    /// Transmit a response frame exactly `delay_us` after the eliciting
    /// frame ended (SIFS for ACKs/CTS). Responses bypass CSMA.
    Respond {
        /// The response frame (ACK, CTS, ...).
        frame: Frame,
        /// Delay after frame end, in microseconds.
        delay_us: u32,
        /// Rate to transmit at (a legacy basic rate).
        rate: BitRate,
    },
    /// Queue a frame for normal contended transmission (through CSMA).
    Enqueue {
        /// The frame to send.
        frame: Frame,
        /// Rate to transmit at.
        rate: BitRate,
    },
    /// Deliver a valid received frame to the higher layer.
    Deliver(Frame),
    /// The higher layers discarded the frame for `reason`.
    Discard {
        /// Why it was discarded.
        reason: DiscardReason,
    },
    /// The radio changed power state (timestamped by the caller).
    Radio(RadioState),
}

impl MacAction {
    /// True for `Respond` actions carrying an ACK.
    pub fn is_ack(&self) -> bool {
        matches!(
            self,
            MacAction::Respond {
                frame: Frame::Ctrl(polite_wifi_frame::ControlFrame::Ack { .. }),
                ..
            }
        )
    }

    /// True for `Respond` actions carrying a CTS.
    pub fn is_cts(&self) -> bool {
        matches!(
            self,
            MacAction::Respond {
                frame: Frame::Ctrl(polite_wifi_frame::ControlFrame::Cts { .. }),
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::{builder, MacAddr};

    #[test]
    fn action_classifiers() {
        let ack = MacAction::Respond {
            frame: builder::ack(MacAddr::FAKE),
            delay_us: 10,
            rate: BitRate::Mbps1,
        };
        assert!(ack.is_ack());
        assert!(!ack.is_cts());

        let cts = MacAction::Respond {
            frame: builder::cts(MacAddr::FAKE, 100),
            delay_us: 10,
            rate: BitRate::Mbps1,
        };
        assert!(cts.is_cts());
        assert!(!cts.is_ack());

        let deliver = MacAction::Deliver(builder::ack(MacAddr::FAKE));
        assert!(!deliver.is_ack());
    }
}
