//! Radio power profiles and energy integration.

use serde::{Deserialize, Serialize};

/// Time spent in each radio state (mirrors the simulator's ledger totals;
/// kept as its own type so this crate stays independent of the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StateDurations {
    /// Microseconds asleep.
    pub sleep_us: u64,
    /// Microseconds awake and idle.
    pub idle_us: u64,
    /// Microseconds receiving.
    pub rx_us: u64,
    /// Microseconds transmitting.
    pub tx_us: u64,
}

impl StateDurations {
    /// Total covered time.
    pub fn total_us(&self) -> u64 {
        self.sleep_us + self.idle_us + self.rx_us + self.tx_us
    }
}

/// Power draw per radio state, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Power while dozing.
    pub sleep_mw: f64,
    /// Power while awake and idle (radio on, listening).
    pub idle_mw: f64,
    /// Power while receiving.
    pub rx_mw: f64,
    /// Power while transmitting.
    pub tx_mw: f64,
}

impl PowerProfile {
    /// An ESP8266-class low-power WiFi module in modem-sleep power save —
    /// the target device of the paper's drain experiment. Values derive
    /// from the ESP8266EX datasheet operating currents at 3.3 V (modem
    /// sleep ≈ 1 mA, RX ≈ 56 mA, TX ≈ 170–215 mA) with the idle/beacon
    /// duty folded in so the simulated Figure 6 lands on the paper's
    /// 10 / 230 / 360 mW anchors.
    pub fn esp8266() -> PowerProfile {
        PowerProfile {
            name: "ESP8266 (modem-sleep)",
            sleep_mw: 3.0,
            idle_mw: 230.0,
            rx_mw: 260.0,
            tx_mw: 660.0,
        }
    }

    /// A generic always-on AP radio (no power save), for contrast.
    pub fn always_on_ap() -> PowerProfile {
        PowerProfile {
            name: "always-on AP",
            sleep_mw: 1000.0, // APs do not sleep; keep the field sane
            idle_mw: 1000.0,
            rx_mw: 1100.0,
            tx_mw: 1800.0,
        }
    }

    /// Energy consumed over the given durations, in milliwatt-hours.
    pub fn energy_mwh(&self, d: &StateDurations) -> f64 {
        let us_to_h = 1.0 / 3_600e6;
        (self.sleep_mw * d.sleep_us as f64
            + self.idle_mw * d.idle_us as f64
            + self.rx_mw * d.rx_us as f64
            + self.tx_mw * d.tx_us as f64)
            * us_to_h
    }

    /// Average power over the given durations, in milliwatts.
    pub fn average_power_mw(&self, d: &StateDurations) -> f64 {
        let total = d.total_us();
        if total == 0 {
            return 0.0;
        }
        (self.sleep_mw * d.sleep_us as f64
            + self.idle_mw * d.idle_us as f64
            + self.rx_mw * d.rx_us as f64
            + self.tx_mw * d.tx_us as f64)
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_second(sleep: u64, idle: u64, rx: u64, tx: u64) -> StateDurations {
        let d = StateDurations {
            sleep_us: sleep,
            idle_us: idle,
            rx_us: rx,
            tx_us: tx,
        };
        assert_eq!(d.total_us(), 1_000_000);
        d
    }

    #[test]
    fn sleeping_second_costs_sleep_power() {
        let p = PowerProfile::esp8266();
        let d = one_second(1_000_000, 0, 0, 0);
        assert!((p.average_power_mw(&d) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn beacon_duty_cycle_yields_paper_baseline() {
        // Steady-state power save: ~3 ms beacon window per 102.4 ms.
        let p = PowerProfile::esp8266();
        let awake = 1_000_000 * 3 / 102; // ≈ 29,411 µs
        let d = one_second(1_000_000 - awake, awake, 0, 0);
        let avg = p.average_power_mw(&d);
        assert!(
            (8.0..12.0).contains(&avg),
            "baseline {avg} mW should be ≈10 mW"
        );
    }

    #[test]
    fn radio_pinned_awake_costs_about_230mw() {
        let p = PowerProfile::esp8266();
        let d = one_second(0, 1_000_000, 0, 0);
        assert!((p.average_power_mw(&d) - 230.0).abs() < 1e-9);
    }

    #[test]
    fn nine_hundred_pps_costs_about_360mw() {
        // 900 exchanges/s: fake frame RX (416 µs) + ACK TX (304 µs) each.
        let p = PowerProfile::esp8266();
        let rx = 900 * 416;
        let tx = 900 * 304;
        let d = one_second(0, 1_000_000 - rx - tx, rx, tx);
        let avg = p.average_power_mw(&d);
        assert!(
            (345.0..375.0).contains(&avg),
            "900 pps gives {avg} mW, expected ≈360"
        );
    }

    #[test]
    fn thirty_five_x_increase_reproduced() {
        let p = PowerProfile::esp8266();
        let awake = 1_000_000 * 3 / 102;
        let baseline = p.average_power_mw(&one_second(1_000_000 - awake, awake, 0, 0));
        let rx = 900 * 416;
        let tx = 900 * 304;
        let attacked = p.average_power_mw(&one_second(0, 1_000_000 - rx - tx, rx, tx));
        let factor = attacked / baseline;
        assert!(
            (30.0..40.0).contains(&factor),
            "drain factor {factor}, paper says 35x"
        );
    }

    #[test]
    fn energy_matches_power_times_time() {
        let p = PowerProfile::esp8266();
        let d = StateDurations {
            sleep_us: 0,
            idle_us: 3_600e6 as u64, // one hour idle
            rx_us: 0,
            tx_us: 0,
        };
        assert!((p.energy_mwh(&d) - 230.0).abs() < 1e-6);
    }

    #[test]
    fn empty_durations_are_zero() {
        let p = PowerProfile::esp8266();
        assert_eq!(p.average_power_mw(&StateDurations::default()), 0.0);
        assert_eq!(p.energy_mwh(&StateDurations::default()), 0.0);
    }

    #[test]
    fn power_ordering_within_profile() {
        for p in [PowerProfile::esp8266(), PowerProfile::always_on_ap()] {
            assert!(p.sleep_mw <= p.idle_mw);
            assert!(p.idle_mw <= p.rx_mw);
            assert!(p.rx_mw <= p.tx_mw);
        }
    }
}
