//! E5 — Table 2: the 5,328-device wardriving survey.
//!
//! Generates the synthetic city whose vendor marginals match Table 2
//! exactly, drives the three-stage discover/inject/verify pipeline
//! through it, and prints the top-20 vendor tables next to the paper's.
//!
//! This is the heavyweight experiment (full city ≈ a couple of minutes
//! single-threaded). The city's per-channel segments are independent, so
//! `--workers N` fans them over the harness worker pool — the report is
//! byte-identical for every worker count. Pass `--quick` to survey a
//! 500-device slice instead.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::WardriveScanner;
use polite_wifi_devices::population::{TABLE2_APS, TABLE2_CLIENTS};
use polite_wifi_devices::CityPopulation;
use polite_wifi_harness::{Experiment, RunArgs};

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();

    let mut population = CityPopulation::table2(2020);
    if args.quick {
        population.devices.truncate(500);
        println!("\n(--quick: surveying the first 500 devices only)");
    }
    let n_devices = population.devices.len();
    println!(
        "\ncity: {} devices ({} clients, {} APs, {} vendors)",
        n_devices,
        population.clients().count(),
        population.aps().count(),
        population.distinct_vendor_count()
    );

    let scanner = WardriveScanner {
        seed: exp.seed(),
        faults: args.faults,
        ..WardriveScanner::default()
    };
    println!(
        "scanning in segments of {} devices, {} ms dwell each, {} worker(s)...",
        scanner.segment_size,
        scanner.dwell_us / 1000,
        args.workers
    );
    let start = std::time::Instant::now();
    let report = scanner.run_observed(&population, args.workers, &mut exp.obs);
    let wall_s = start.elapsed().as_secs_f64();
    exp.note_quarantined(report.quarantined as u64);
    println!(
        "survey done in {:.1} s wall / {:.0} s simulated\n",
        wall_s,
        report.survey_time_us as f64 / 1e6
    );
    exp.metrics.record("wall_seconds", wall_s);
    exp.metrics.record("discovered", report.discovered as f64);
    exp.metrics.record("verified", report.verified as f64);
    exp.obs.add("wardrive.discovered", report.discovered as u64);
    exp.obs.add("wardrive.verified", report.verified as u64);
    exp.obs.add("wardrive.clients", report.total_clients as u64);
    exp.obs.add("wardrive.aps", report.total_aps as u64);
    exp.metrics
        .record("survey_time_s", report.survey_time_us as f64 / 1e6);

    // Table 2, side by side with the paper.
    println!(
        "{:<16} {:>6} {:>6}   {:<16} {:>6} {:>6}",
        "Client vendor", "paper", "ours", "AP vendor", "paper", "ours"
    );
    let ours_client = |v: &str| {
        report
            .client_counts
            .iter()
            .find(|(name, _)| name == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let ours_ap = |v: &str| {
        report
            .ap_counts
            .iter()
            .find(|(name, _)| name == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    for i in 0..20 {
        let (cv, cc) = TABLE2_CLIENTS[i];
        let (av, ac) = TABLE2_APS[i];
        println!(
            "{:<16} {:>6} {:>6}   {:<16} {:>6} {:>6}",
            cv,
            cc,
            ours_client(cv),
            av,
            ac,
            ours_ap(av)
        );
    }
    let named_c: u32 = TABLE2_CLIENTS.iter().map(|(_, c)| c).sum();
    let named_a: u32 = TABLE2_APS.iter().map(|(_, c)| c).sum();
    println!(
        "{:<16} {:>6} {:>6}   {:<16} {:>6} {:>6}",
        "Others",
        1523 - named_c,
        report.total_clients.saturating_sub(
            TABLE2_CLIENTS
                .iter()
                .map(|(v, _)| ours_client(v))
                .sum::<u32>()
        ),
        "Others",
        3805 - named_a,
        report
            .total_aps
            .saturating_sub(TABLE2_APS.iter().map(|(v, _)| ours_ap(v)).sum::<u32>())
    );
    println!(
        "{:<16} {:>6} {:>6}   {:<16} {:>6} {:>6}\n",
        "Total", 1523, report.total_clients, "Total", 3805, report.total_aps
    );

    compare(
        "devices discovered",
        "5,328",
        &report.discovered.to_string(),
    );
    compare(
        "discovered devices that ACKed our fakes",
        "all (100%)",
        &format!(
            "{}/{} ({:.1}%)",
            report.verified,
            report.discovered,
            100.0 * report.verified as f64 / report.discovered.max(1) as f64
        ),
    );
    compare(
        "client vendors / AP vendors / total",
        "147 / 94 / 186",
        &format!(
            "{} / {} / {}",
            report.client_vendor_count, report.ap_vendor_count, report.distinct_vendor_count
        ),
    );
    compare(
        "APs advertising 802.11w (PMF) — all polite anyway",
        "footnote 2",
        &format!("{} of {} verified APs", report.pmf_aps, report.total_aps),
    );

    if args.faults.is_clean() {
        assert_eq!(
            report.verified, report.discovered,
            "a discovered device failed to ACK"
        );
    } else if report.quarantined > 0 {
        println!(
            "({} target(s) quarantined under the `{}` fault profile)",
            report.quarantined, args.faults
        );
    }
    if !args.quick && args.faults.is_clean() {
        // The shape of Table 2 must reproduce: ≥99% of each population
        // discovered and verified (probe collisions may hide a handful).
        assert!(
            report.total_clients as usize >= 1500,
            "clients {}",
            report.total_clients
        );
        assert!(
            report.total_aps as usize >= 3790,
            "APs {}",
            report.total_aps
        );
    }
    exp.finish_with_status(
        if args.quick {
            "table2_wardrive_quick"
        } else {
            "table2_wardrive"
        },
        &report,
    )
}
