//! RSSI-based ranging to an unassociated victim — the direction the
//! Wi-Peep follow-up took Polite WiFi.
//!
//! Because the victim answers every fake frame, the attacker can collect
//! an arbitrarily dense stream of ACK RSSI samples and invert the path
//! loss model to estimate distance. Per-frame fading makes single
//! samples noisy; aggregating the elicited stream (median of dB values)
//! is exactly the lever Polite WiFi provides — the attacker chooses the
//! sample count.

use polite_wifi_frame::{ControlFrame, Frame, MacAddr};
use polite_wifi_pcap::capture::Capture;
use polite_wifi_phy::pathloss::PathLoss;
use serde::{Deserialize, Serialize};

/// A distance estimate from elicited ACK RSSI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeEstimate {
    /// Number of ACK RSSI samples used.
    pub samples: usize,
    /// Median received power, dBm.
    pub median_rssi_dbm: f64,
    /// Estimated distance, metres.
    pub distance_m: f64,
}

/// Inverts a path-loss model: the distance at which `model` predicts
/// `loss_db` of attenuation. Monotonicity (tested in the PHY crate)
/// makes bisection exact.
pub fn invert_path_loss(model: &PathLoss, loss_db: f64) -> f64 {
    let (mut lo, mut hi) = (0.1f64, 10_000.0f64);
    if model.loss_db(lo) >= loss_db {
        return lo;
    }
    if model.loss_db(hi) <= loss_db {
        return hi;
    }
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if model.loss_db(mid) < loss_db {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Estimates the distance to the victim from the ACKs in a capture.
///
/// * `attacker` — the forged address ACKs come back to;
/// * `victim_tx_power_dbm` — assumed victim transmit power (20 dBm is
///   the common default; errors here shift the estimate multiplicatively);
/// * `model` — the propagation model to invert.
pub fn estimate_range(
    capture: &Capture,
    attacker: MacAddr,
    victim_tx_power_dbm: f64,
    model: &PathLoss,
) -> Option<RangeEstimate> {
    let mut rssi: Vec<f64> = capture
        .frames()
        .iter()
        .filter(|cf| matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == attacker))
        .filter_map(|cf| cf.radiotap.as_ref()?.antenna_signal_dbm)
        .map(|s| s as f64)
        .collect();
    if rssi.is_empty() {
        return None;
    }
    rssi.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_rssi_dbm = rssi[rssi.len() / 2];
    let loss_db = victim_tx_power_dbm - median_rssi_dbm;
    Some(RangeEstimate {
        samples: rssi.len(),
        median_rssi_dbm,
        distance_m: invert_path_loss(model, loss_db),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{FakeFrameInjector, InjectionKind, InjectionPlan};
    use polite_wifi_mac::StationConfig;
    use polite_wifi_phy::rate::BitRate;
    use polite_wifi_sim::{SimConfig, Simulator};

    #[test]
    fn inversion_matches_forward_model() {
        for model in [PathLoss::free_space_2ghz4(), PathLoss::indoor_2ghz4()] {
            for d in [0.5, 2.0, 10.0, 50.0, 300.0] {
                let loss = model.loss_db(d);
                let back = invert_path_loss(&model, loss);
                assert!(
                    (back - d).abs() / d < 1e-6,
                    "{model:?}: {d} m → {loss} dB → {back} m"
                );
            }
        }
    }

    #[test]
    fn inversion_clamps_extremes() {
        let m = PathLoss::indoor_2ghz4();
        assert_eq!(invert_path_loss(&m, -100.0), 0.1);
        assert_eq!(invert_path_loss(&m, 1e6), 10_000.0);
    }

    fn range_to_victim_at(true_distance: f64, seed: u64) -> RangeEstimate {
        let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
        let mut sim = Simulator::new(SimConfig::default(), seed);
        let _v = sim.add_node(StationConfig::client(victim_mac), (true_distance, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (0.0, 0.0));
        sim.set_monitor(attacker, true);
        let plan = InjectionPlan {
            victim: victim_mac,
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: 200,
            start_us: 0,
            duration_us: 3_000_000,
            bitrate: BitRate::Mbps1,
        };
        FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
        sim.run_until(4_000_000);
        let model = sim.path_loss();
        estimate_range(&sim.node(attacker).capture, MacAddr::FAKE, 20.0, &model)
            .expect("ACKs collected")
    }

    #[test]
    fn ranging_recovers_distance_within_tolerance() {
        for true_d in [3.0, 8.0, 15.0] {
            let est = range_to_victim_at(true_d, 17);
            assert!(est.samples > 400, "samples {}", est.samples);
            let rel = (est.distance_m - true_d).abs() / true_d;
            // Rician fading (K=8) plus 1 dB RSSI quantisation: the
            // median-aggregated estimate lands well within ±40%.
            assert!(
                rel < 0.4,
                "true {true_d} m, estimated {:.2} m ({} samples)",
                est.distance_m,
                est.samples
            );
        }
    }

    #[test]
    fn farther_victims_estimate_farther() {
        let near = range_to_victim_at(3.0, 23);
        let far = range_to_victim_at(20.0, 23);
        assert!(far.distance_m > 2.0 * near.distance_m);
        assert!(far.median_rssi_dbm < near.median_rssi_dbm);
    }

    #[test]
    fn empty_capture_gives_none() {
        let cap = Capture::new();
        assert!(estimate_range(&cap, MacAddr::FAKE, 20.0, &PathLoss::indoor_2ghz4()).is_none());
    }
}
