//! Cross-crate integration: the battery-drain attack through the sim
//! ledger and the energy model, checked against the paper's Figure 6
//! shape and §4.2 projections.

use polite_wifi::core::BatteryDrainAttack;
use polite_wifi::power::{Battery, PowerProfile, StateDurations};

fn measure(rate_pps: u32) -> polite_wifi::core::DrainMeasurement {
    BatteryDrainAttack {
        rate_pps,
        warmup_us: 3_000_000,
        measure_us: 8_000_000,
        seed: 77,
        ..BatteryDrainAttack::default()
    }
    .run()
}

#[test]
fn figure6_shape_holds_end_to_end() {
    let m0 = measure(0);
    let m20 = measure(20);
    let m900 = measure(900);

    // Anchor 1: power save works without the attack.
    assert!(
        (5.0..20.0).contains(&m0.average_power_mw),
        "{}",
        m0.average_power_mw
    );
    // Anchor 2: the >10 pps knee.
    assert!(
        (200.0..260.0).contains(&m20.average_power_mw),
        "{}",
        m20.average_power_mw
    );
    assert!(m20.sleep_fraction < 0.02);
    // Anchor 3: 900 pps, ~35x.
    assert!(
        (320.0..400.0).contains(&m900.average_power_mw),
        "{}",
        m900.average_power_mw
    );
    let factor = m900.average_power_mw / m0.average_power_mw;
    assert!((20.0..50.0).contains(&factor), "factor {factor}");
}

#[test]
fn ledger_and_profile_agree_on_energy() {
    // The measurement's average power must equal the profile applied to
    // its own durations (no hidden bookkeeping).
    let m = measure(100);
    let p = PowerProfile::esp8266();
    let recomputed = p.average_power_mw(&m.durations);
    assert!((recomputed - m.average_power_mw).abs() < 1e-9);
    // And the durations cover the measurement window.
    assert!((m.durations.total_us() as i64 - 8_000_000i64).abs() < 1_000);
}

#[test]
fn acks_track_injection_rate_once_awake() {
    let m = measure(300);
    // 11 s of injection at 300 pps; the victim is pinned awake, so it
    // acknowledges nearly everything that arrives during the run.
    assert!(
        m.acks_sent > 2_900,
        "only {} ACKs for a 300 pps × 11 s attack",
        m.acks_sent
    );
}

#[test]
fn paper_projection_numbers() {
    let m = measure(900);
    let projections = BatteryDrainAttack::project_batteries(&m);
    let circle2 = &projections[0];
    let xt2 = &projections[1];
    assert!(
        (5.5..8.0).contains(&circle2.attacked_life_hours),
        "{}",
        circle2.attacked_life_hours
    );
    assert!(
        (14.0..19.5).contains(&xt2.attacked_life_hours),
        "{}",
        xt2.attacked_life_hours
    );
    // Both drain hundreds to thousands of times faster than advertised.
    assert!(circle2.speedup > 100.0);
    assert!(xt2.speedup > 500.0);
}

#[test]
fn power_model_is_pure_given_durations() {
    // Determinism across the crate boundary: identical durations =>
    // identical energy, regardless of where they came from.
    let d = StateDurations {
        sleep_us: 500_000,
        idle_us: 300_000,
        rx_us: 150_000,
        tx_us: 50_000,
    };
    let p = PowerProfile::esp8266();
    assert_eq!(p.average_power_mw(&d), p.average_power_mw(&d));
    let b = Battery::logitech_circle2();
    let life = b.life_hours(p.average_power_mw(&d));
    assert!(life.is_finite() && life > 0.0);
}
