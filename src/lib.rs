//! # polite-wifi
//!
//! A full reproduction of **"WiFi Says 'Hi!' Back to Strangers!"**
//! (Abedi & Abari, HotNets 2020) as a Rust workspace: the *Polite WiFi*
//! behaviour — every 802.11 device acknowledges any frame addressed to
//! it, even unauthenticated fakes from strangers — together with the
//! attacks and sensing opportunities the paper builds on top of it, all
//! running on an in-crate 802.11 MAC/PHY discrete-event simulation
//! substrate (no radio hardware required).
//!
//! This crate is the facade: it re-exports every workspace crate under
//! one roof. See the README for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! ```
//! use polite_wifi::frame::{builder, MacAddr};
//! use polite_wifi::mac::StationConfig;
//! use polite_wifi::phy::rate::BitRate;
//! use polite_wifi::sim::{SimConfig, Simulator};
//!
//! // A WPA2 "victim" and a stranger with no credentials whatsoever.
//! let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
//! let mut sim = Simulator::new(SimConfig::default(), 1);
//! let victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
//! let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
//!
//! sim.inject(0, attacker, builder::fake_null_frame(victim_mac, MacAddr::FAKE), BitRate::Mbps1);
//! sim.run_until(10_000);
//!
//! // WiFi says "Hi!" back.
//! assert_eq!(sim.station(victim).stats.acks_sent, 1);
//! ```

/// 802.11 frame model and byte codec.
pub use polite_wifi_frame as frame;

/// Radiotap capture headers.
pub use polite_wifi_radiotap as radiotap;

/// pcap capture files and Wireshark-style traces.
pub use polite_wifi_pcap as pcap;

/// PHY substrate: timing, rates, propagation, link model, CSI.
pub use polite_wifi_phy as phy;

/// MAC state machines (the Polite WiFi receive path lives here).
pub use polite_wifi_mac as mac;

/// Discrete-event radio simulator.
pub use polite_wifi_sim as sim;

/// CSI processing and inference.
pub use polite_wifi_sensing as sensing;

/// Energy model and battery projections.
pub use polite_wifi_power as power;

/// OUI registry, device profiles, Table 2 population.
pub use polite_wifi_devices as devices;

/// Experiment lifecycle: scenario builder, metrics ledger, parallel
/// deterministic runner, unified JSON results.
pub use polite_wifi_harness as harness;

/// Structured tracing and metrics (spans, counters, histograms, the
/// Chrome-trace exporter).
pub use polite_wifi_obs as obs;

/// The Polite WiFi toolkit: injector, scanner, attacks, sensing hub.
pub use polite_wifi_core as core;
