//! Shared plumbing for the experiment regenerators.
//!
//! Each paper table/figure has a binary under `src/bin/` (see DESIGN.md
//! §4 for the index). Binaries print the human-readable rows the paper
//! reports *and* drop a machine-readable JSON next to them under
//! `results/`, which EXPERIMENTS.md references.

use serde::Serialize;
use std::path::PathBuf;

/// Directory experiment JSON results are written to (workspace-relative).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("POLITE_WIFI_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serialises an experiment result to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialise result");
    std::fs::write(&path, json).expect("write result json");
    println!("\n[result JSON written to {}]", path.display());
}

/// Prints a section header in a consistent style.
pub fn header(experiment: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{experiment}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(72));
}

/// Prints a paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<12} measured: {measured}");
}

/// An ASCII bar for quick figure-shaped output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = "█".repeat(filled);
    s.push_str(&"·".repeat(width - filled));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10.0, 10), "··········");
        assert_eq!(bar(10.0, 10.0, 10), "██████████");
        assert_eq!(bar(5.0, 10.0, 10).chars().filter(|&c| c == '█').count(), 5);
        // Overflow clamps.
        assert_eq!(bar(20.0, 10.0, 4), "████");
    }
}
