//! Control frames: RTS, CTS, ACK, PS-Poll, BlockAck and CF-End.
//!
//! Control frames are the paper's trump card (Section 2.2): they *cannot*
//! be encrypted, because every station in the vicinity must decode them to
//! honour channel reservations. Even if a future MAC validated data frames
//! before acknowledging, a forged [`ControlFrame::Rts`] still elicits a
//! [`ControlFrame::Cts`] from an unassociated victim.

use crate::addr::MacAddr;
use crate::control::{ctrl_subtype, FrameControl, FrameType};
use crate::error::FrameError;
use serde::{Deserialize, Serialize};

/// A decoded control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlFrame {
    /// Request To Send: reserves the medium for `duration_us`.
    Rts {
        /// NAV reservation in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
    },
    /// Clear To Send: the response an RTS elicits — even from strangers.
    Cts {
        /// Remaining NAV reservation in microseconds.
        duration_us: u16,
        /// Receiver address (copied from the RTS transmitter).
        ra: MacAddr,
    },
    /// Acknowledgement: the "Hi!" the paper's title refers to.
    Ack {
        /// Receiver address (copied from the acknowledged frame's TA).
        ra: MacAddr,
    },
    /// PS-Poll: a dozing station asking its AP for buffered frames.
    PsPoll {
        /// Association id (with the two high bits set on air).
        aid: u16,
        /// BSSID of the AP being polled.
        bssid: MacAddr,
        /// Transmitter (the polling station).
        ta: MacAddr,
    },
    /// BlockAck request (basic variant).
    BlockAckReq {
        /// NAV in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
        /// BAR control field.
        control: u16,
        /// Starting sequence control.
        start_seq: u16,
    },
    /// BlockAck (compressed bitmap variant).
    BlockAck {
        /// NAV in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
        /// BA control field.
        control: u16,
        /// Starting sequence control.
        start_seq: u16,
        /// 64-frame compressed acknowledgement bitmap.
        bitmap: u64,
    },
    /// CF-End: truncates a NAV reservation.
    CfEnd {
        /// Receiver address (broadcast on air).
        ra: MacAddr,
        /// BSSID.
        bssid: MacAddr,
    },
}

impl ControlFrame {
    /// The subtype this frame encodes as.
    pub fn subtype(&self) -> u8 {
        match self {
            ControlFrame::Rts { .. } => ctrl_subtype::RTS,
            ControlFrame::Cts { .. } => ctrl_subtype::CTS,
            ControlFrame::Ack { .. } => ctrl_subtype::ACK,
            ControlFrame::PsPoll { .. } => ctrl_subtype::PS_POLL,
            ControlFrame::BlockAckReq { .. } => ctrl_subtype::BLOCK_ACK_REQ,
            ControlFrame::BlockAck { .. } => ctrl_subtype::BLOCK_ACK,
            ControlFrame::CfEnd { .. } => ctrl_subtype::CF_END,
        }
    }

    /// The receiver address (address 1) of this frame.
    pub fn ra(&self) -> MacAddr {
        match *self {
            ControlFrame::Rts { ra, .. }
            | ControlFrame::Cts { ra, .. }
            | ControlFrame::Ack { ra }
            | ControlFrame::BlockAckReq { ra, .. }
            | ControlFrame::BlockAck { ra, .. }
            | ControlFrame::CfEnd { ra, .. } => ra,
            ControlFrame::PsPoll { bssid, .. } => bssid,
        }
    }

    /// The transmitter address, when the subtype carries one.
    pub fn ta(&self) -> Option<MacAddr> {
        match *self {
            ControlFrame::Rts { ta, .. }
            | ControlFrame::PsPoll { ta, .. }
            | ControlFrame::BlockAckReq { ta, .. }
            | ControlFrame::BlockAck { ta, .. } => Some(ta),
            ControlFrame::CfEnd { bssid, .. } => Some(bssid),
            ControlFrame::Cts { .. } | ControlFrame::Ack { .. } => None,
        }
    }

    /// Encodes header + body (no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let fc = FrameControl::new(FrameType::Control, self.subtype());
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&fc.encode());
        match *self {
            ControlFrame::Rts {
                duration_us,
                ra,
                ta,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
            }
            ControlFrame::Cts { duration_us, ra } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::Ack { ra } => {
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::PsPoll { aid, bssid, ta } => {
                out.extend_from_slice(&(aid | 0xc000).to_le_bytes());
                out.extend_from_slice(&bssid.octets());
                out.extend_from_slice(&ta.octets());
            }
            ControlFrame::BlockAckReq {
                duration_us,
                ra,
                ta,
                control,
                start_seq,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
                out.extend_from_slice(&control.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
            }
            ControlFrame::BlockAck {
                duration_us,
                ra,
                ta,
                control,
                start_seq,
                bitmap,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
                out.extend_from_slice(&control.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
                out.extend_from_slice(&bitmap.to_le_bytes());
            }
            ControlFrame::CfEnd { ra, bssid } => {
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&bssid.octets());
            }
        }
        out
    }

    /// Parses a control frame given its already-decoded Frame Control.
    pub fn parse(fc: FrameControl, buf: &[u8]) -> Result<Self, FrameError> {
        let need = |needed: usize, context: &'static str| -> Result<(), FrameError> {
            if buf.len() < needed {
                Err(FrameError::Truncated {
                    context,
                    needed,
                    available: buf.len(),
                })
            } else {
                Ok(())
            }
        };
        let duration = if buf.len() >= 4 {
            u16::from_le_bytes([buf[2], buf[3]])
        } else {
            0
        };
        match fc.subtype {
            ctrl_subtype::RTS => {
                need(16, "RTS")?;
                Ok(ControlFrame::Rts {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                })
            }
            ctrl_subtype::CTS => {
                need(10, "CTS")?;
                Ok(ControlFrame::Cts {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                })
            }
            ctrl_subtype::ACK => {
                need(10, "ACK")?;
                Ok(ControlFrame::Ack {
                    ra: MacAddr::parse(&buf[4..])?,
                })
            }
            ctrl_subtype::PS_POLL => {
                need(16, "PS-Poll")?;
                Ok(ControlFrame::PsPoll {
                    aid: duration & 0x3fff,
                    bssid: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                })
            }
            ctrl_subtype::BLOCK_ACK_REQ => {
                need(20, "BlockAckReq")?;
                Ok(ControlFrame::BlockAckReq {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                    control: u16::from_le_bytes([buf[16], buf[17]]),
                    start_seq: u16::from_le_bytes([buf[18], buf[19]]),
                })
            }
            ctrl_subtype::BLOCK_ACK => {
                need(28, "BlockAck")?;
                Ok(ControlFrame::BlockAck {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                    control: u16::from_le_bytes([buf[16], buf[17]]),
                    start_seq: u16::from_le_bytes([buf[18], buf[19]]),
                    bitmap: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
                })
            }
            ctrl_subtype::CF_END => {
                need(16, "CF-End")?;
                Ok(ControlFrame::CfEnd {
                    ra: MacAddr::parse(&buf[4..])?,
                    bssid: MacAddr::parse(&buf[10..])?,
                })
            }
            other => Err(FrameError::UnsupportedSubtype {
                ftype: FrameType::Control.bits(),
                subtype: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, last])
    }

    fn round_trip(frame: ControlFrame) {
        let bytes = frame.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert_eq!(ControlFrame::parse(fc, &bytes).unwrap(), frame);
    }

    #[test]
    fn ack_is_ten_bytes_without_fcs() {
        let ack = ControlFrame::Ack { ra: MacAddr::FAKE };
        assert_eq!(ack.encode().len(), 10);
        round_trip(ack);
    }

    #[test]
    fn rts_is_sixteen_bytes_without_fcs() {
        let rts = ControlFrame::Rts {
            duration_us: 248,
            ra: addr(1),
            ta: MacAddr::FAKE,
        };
        assert_eq!(rts.encode().len(), 16);
        round_trip(rts);
    }

    #[test]
    fn cts_round_trip() {
        round_trip(ControlFrame::Cts {
            duration_us: 200,
            ra: MacAddr::FAKE,
        });
    }

    #[test]
    fn ps_poll_aid_masking() {
        let frame = ControlFrame::PsPoll {
            aid: 7,
            bssid: addr(1),
            ta: addr(2),
        };
        let bytes = frame.encode();
        // On air the AID carries 0xc000.
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 7 | 0xc000);
        round_trip(frame);
    }

    #[test]
    fn block_ack_round_trip() {
        round_trip(ControlFrame::BlockAck {
            duration_us: 0,
            ra: addr(1),
            ta: addr(2),
            control: 0x0005,
            start_seq: 100 << 4,
            bitmap: 0xffff_0000_ff00_00ff,
        });
        round_trip(ControlFrame::BlockAckReq {
            duration_us: 32,
            ra: addr(1),
            ta: addr(2),
            control: 0x0004,
            start_seq: 100 << 4,
        });
    }

    #[test]
    fn cf_end_round_trip() {
        round_trip(ControlFrame::CfEnd {
            ra: MacAddr::BROADCAST,
            bssid: addr(1),
        });
    }

    #[test]
    fn truncated_ack_rejected() {
        let ack = ControlFrame::Ack { ra: addr(1) };
        let bytes = ack.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert!(ControlFrame::parse(fc, &bytes[..8]).is_err());
    }

    #[test]
    fn ra_and_ta_accessors() {
        let rts = ControlFrame::Rts {
            duration_us: 0,
            ra: addr(1),
            ta: addr(2),
        };
        assert_eq!(rts.ra(), addr(1));
        assert_eq!(rts.ta(), Some(addr(2)));
        let ack = ControlFrame::Ack { ra: addr(3) };
        assert_eq!(ack.ra(), addr(3));
        assert_eq!(ack.ta(), None);
    }
}
