//! Shared plumbing for the experiment regenerators.
//!
//! Each paper table/figure has a binary under `src/bin/` (see DESIGN.md
//! §4 for the index). Since the Scenario DSL landed, every `exp_*`
//! binary is a thin wrapper embedding its `scenarios/<slug>.json` spec
//! and dispatching through [`polite_wifi_scenario`]; the experiment
//! logic lives in that crate's `experiments` modules and
//! `exp_run SCENARIO.json` is the equivalent invocation. This crate
//! keeps the analysis binaries (`bench_report`, `trace_query`), the
//! Criterion micro-benchmarks, and re-exports the harness entry points
//! plus the display helpers (now in `polite_wifi_scenario::support`)
//! so existing imports keep working.

pub use polite_wifi_harness::{
    derive_trial_seed, Experiment, MetricsLedger, RunArgs, Runner, ScenarioBuilder, TrialCtx,
    TrialFailure,
};
pub use polite_wifi_scenario::support::{
    bar, compare, ensure_results_dir, results_dir, write_json,
};
pub use polite_wifi_sim::FaultProfile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_creates_the_directory() {
        let dir = std::env::temp_dir().join("polite-wifi-bench-write-json");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("POLITE_WIFI_RESULTS", &dir);
        let path = write_json("probe", &42u32).unwrap();
        assert!(path.ends_with("probe.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "42");
        std::env::remove_var("POLITE_WIFI_RESULTS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
