//! Vendored, API-compatible subset of `serde`.
//!
//! The build environment for this repository has no registry access, so
//! the workspace vendors the serialization surface it actually uses: a
//! JSON-shaped [`Value`] data model, a [`Serialize`] trait that lowers
//! any value into it, a [`Deserialize`] marker (derived throughout the
//! workspace but never invoked at runtime — nothing deserializes), and
//! the `#[derive(Serialize, Deserialize)]` macros re-exported from the
//! vendored `serde_derive`.
//!
//! The derive follows upstream conventions: structs become objects with
//! fields in declaration order, newtype structs serialize transparently,
//! enums are externally tagged (`"Variant"` / `{"Variant": ...}`).

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The JSON-shaped data model every [`Serialize`] impl lowers into.
///
/// Objects are ordered pairs (declaration order for derived structs), so
/// serialized output is deterministic — a property the workspace's
/// byte-identical-reports tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Lowers `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker for types the workspace derives deserialization for.
///
/// Nothing in the workspace deserializes at runtime (`serde_json` is
/// write-only here), so the derive emits only this marker impl.
pub trait Deserialize: Sized {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort map entries by key.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_impls_compose() {
        let v = vec![(String::from("Apple"), 143u32)];
        match v.to_value() {
            Value::Array(items) => match &items[0] {
                Value::Array(pair) => {
                    assert_eq!(pair[0], Value::String("Apple".into()));
                    assert_eq!(pair[1], Value::UInt(143));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn option_and_array() {
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            [1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
