//! Aligned little-endian readers and writers.
//!
//! Radiotap fields are aligned to their natural size *relative to the start
//! of the radiotap header* — the detail most ad-hoc parsers get wrong.

use crate::header::RadiotapError;

/// A reading cursor that tracks its offset from the header start so it can
/// insert alignment skips.
pub struct ReadCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ReadCursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ReadCursor { buf, pos: 0 }
    }

    /// Current offset from the header start.
    #[cfg(test)]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Skips forward so the next read is `align`-aligned.
    pub fn align(&mut self, align: usize) -> Result<(), RadiotapError> {
        let rem = self.pos % align;
        if rem != 0 {
            self.skip(align - rem)?;
        }
        Ok(())
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), RadiotapError> {
        if self.pos + n > self.buf.len() {
            return Err(RadiotapError::Truncated {
                at: self.pos,
                needed: n,
            });
        }
        self.pos += n;
        Ok(())
    }

    /// Jumps to an absolute offset (used to honour the declared header
    /// length even when we did not parse every field).
    #[cfg(test)]
    pub fn seek(&mut self, pos: usize) -> Result<(), RadiotapError> {
        if pos > self.buf.len() {
            return Err(RadiotapError::Truncated {
                at: self.pos,
                needed: pos - self.pos,
            });
        }
        self.pos = pos;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RadiotapError> {
        if self.pos + n > self.buf.len() {
            return Err(RadiotapError::Truncated {
                at: self.pos,
                needed: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_u8(&mut self) -> Result<u8, RadiotapError> {
        Ok(self.take(1)?[0])
    }

    pub fn read_i8(&mut self) -> Result<i8, RadiotapError> {
        Ok(self.take(1)?[0] as i8)
    }

    pub fn read_u16(&mut self) -> Result<u16, RadiotapError> {
        self.align(2)?;
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub fn read_u32(&mut self) -> Result<u32, RadiotapError> {
        self.align(4)?;
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn read_u64(&mut self) -> Result<u64, RadiotapError> {
        self.align(8)?;
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
}

/// A writing cursor that inserts zero padding to keep fields naturally
/// aligned relative to the header start.
#[derive(Default)]
pub struct WriteCursor {
    buf: Vec<u8>,
}

impl WriteCursor {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn align(&mut self, align: usize) {
        while self.buf.len() % align != 0 {
            self.buf.push(0);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn write_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Overwrites two bytes at `offset` (for patching the length field).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_alignment_skips_padding() {
        // u8 at 0, then u16 must skip to offset 2.
        let buf = [0x01, 0xff, 0x34, 0x12];
        let mut c = ReadCursor::new(&buf);
        assert_eq!(c.read_u8().unwrap(), 1);
        assert_eq!(c.read_u16().unwrap(), 0x1234);
        assert_eq!(c.pos(), 4);
    }

    #[test]
    fn write_alignment_inserts_padding() {
        let mut w = WriteCursor::new();
        w.write_u8(1);
        w.write_u64(0x0807060504030201);
        // u64 starts at offset 8 after 7 pad bytes.
        assert_eq!(w.len(), 16);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[1..8], &[0u8; 7]);
        assert_eq!(bytes[8], 0x01);
    }

    #[test]
    fn truncated_reads_error() {
        let buf = [0x01];
        let mut c = ReadCursor::new(&buf);
        assert!(c.read_u16().is_err());
    }

    #[test]
    fn seek_validates_bounds() {
        let buf = [0u8; 4];
        let mut c = ReadCursor::new(&buf);
        assert!(c.seek(4).is_ok());
        let mut c = ReadCursor::new(&buf);
        assert!(c.seek(5).is_err());
    }

    #[test]
    fn patch_u16_rewrites_in_place() {
        let mut w = WriteCursor::new();
        w.write_u32(0);
        w.patch_u16(2, 0xbeef);
        assert_eq!(w.into_bytes(), vec![0, 0, 0xef, 0xbe]);
    }
}
