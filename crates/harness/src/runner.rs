//! Deterministic parallel trial execution.
//!
//! The [`Runner`] fans independent units of work across a scoped worker
//! pool. Two properties make parallelism invisible to results:
//!
//! 1. every unit derives its own seed from the base seed and its index
//!    ([`derive_trial_seed`]), never from shared RNG state, and
//! 2. results are merged **in index order** after all workers join,
//!
//! so a 1-worker run and an N-worker run of the same base seed produce
//! byte-identical reports.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the seed for one trial (or shard) from the experiment's base
/// seed. XOR with the index is injective for a fixed base, so no two
/// trials of a run ever share a seed.
pub fn derive_trial_seed(base_seed: u64, index: u64) -> u64 {
    base_seed ^ index
}

/// Per-trial context handed to the trial closure.
pub struct TrialCtx {
    /// Trial index in `0..trials`.
    pub index: usize,
    /// This trial's derived seed; feed it to anything seedable.
    pub seed: u64,
    /// A ChaCha8 stream seeded from [`TrialCtx::seed`], for trial-local
    /// randomness (positions, jitter) that must not depend on scheduling.
    pub rng: ChaCha8Rng,
}

/// A scoped worker pool executing independent units of work.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    workers: usize,
}

impl Runner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Runner {
        Runner {
            workers: workers.max(1),
        }
    }

    /// Worker count this runner fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `count` units of work, calling `work(index)` for each, and
    /// returns the results in index order regardless of which worker
    /// ran which unit or in what order they finished.
    pub fn run_indexed<T, F>(&self, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        if self.workers == 1 || count == 1 {
            return (0..count).map(&work).collect();
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
        let threads = self.workers.min(count);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= count {
                            break;
                        }
                        local.push((idx, work(idx)));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        })
        .expect("runner worker panicked");

        let mut results = collected.into_inner().unwrap();
        results.sort_by_key(|(idx, _)| *idx);
        debug_assert_eq!(results.len(), count);
        results.into_iter().map(|(_, value)| value).collect()
    }

    /// Runs `trials` independent trials of an experiment. Each trial
    /// gets a [`TrialCtx`] with its derived seed and a fresh ChaCha8
    /// stream; results come back in trial order.
    pub fn run_trials<T, F>(&self, base_seed: u64, trials: usize, trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        self.run_indexed(trials, |index| {
            let seed = derive_trial_seed(base_seed, index as u64);
            trial(TrialCtx {
                index,
                seed,
                rng: ChaCha8Rng::seed_from_u64(seed),
            })
        })
    }
}

/// Command-line arguments shared by every experiment binary.
///
/// Recognised flags: `--trials N`, `--workers M`, `--seed S`, `--quick`,
/// `--trace-out FILE`. Unrecognised flags abort with a usage message
/// rather than being silently ignored — and *all* of them are reported
/// at once, so a typo'd invocation is fixed in one round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    pub trials: usize,
    pub workers: usize,
    pub seed: u64,
    pub quick: bool,
    /// Where to write the Chrome-trace span dump, if anywhere. Setting
    /// this also turns span recording on for the whole run.
    pub trace_out: Option<std::path::PathBuf>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            trials: 1,
            workers: 1,
            seed: 7,
            quick: false,
            trace_out: None,
        }
    }
}

impl RunArgs {
    /// Parses flags from an iterator (first element must already be
    /// stripped of the program name). Returns an error message on
    /// malformed input.
    pub fn parse<I: Iterator<Item = String>>(
        mut args: I,
        defaults: RunArgs,
    ) -> Result<RunArgs, String> {
        let mut out = defaults;
        let mut unknown: Vec<String> = Vec::new();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trials" => out.trials = next_value(&mut args, "--trials")?,
                "--workers" => out.workers = next_value(&mut args, "--workers")?,
                "--seed" => out.seed = next_value(&mut args, "--seed")?,
                "--quick" => out.quick = true,
                "--trace-out" => {
                    let raw = args
                        .next()
                        .ok_or_else(|| "--trace-out needs a value".to_string())?;
                    out.trace_out = Some(std::path::PathBuf::from(raw));
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--trials N] [--workers M] [--seed S] [--quick] [--trace-out FILE]"
                            .to_string(),
                    )
                }
                other => unknown.push(format!("`{other}`")),
            }
        }
        if !unknown.is_empty() {
            let plural = if unknown.len() == 1 { "" } else { "s" };
            return Err(format!(
                "unknown flag{plural} {} (try --help)",
                unknown.join(", ")
            ));
        }
        if out.trials == 0 {
            return Err("--trials must be at least 1".to_string());
        }
        if out.workers == 0 {
            return Err("--workers must be at least 1".to_string());
        }
        Ok(out)
    }

    /// Parses the process's own arguments, exiting with a message on
    /// malformed input.
    pub fn from_env(defaults: RunArgs) -> RunArgs {
        match Self::parse(std::env::args().skip(1), defaults) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// A runner sized to these arguments.
    pub fn runner(&self) -> Runner {
        Runner::new(self.workers)
    }
}

fn next_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    args: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let runner = Runner::new(workers);
            let out = runner.run_indexed(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn trial_streams_are_scheduling_independent() {
        let sample = |workers: usize| -> Vec<u64> {
            Runner::new(workers).run_trials(99, 16, |mut trial| trial.rng.gen::<u64>())
        };
        let one = sample(1);
        assert_eq!(one, sample(4));
        assert_eq!(one, sample(16));
        // Distinct trials see distinct streams.
        assert!(one.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn derive_trial_seed_is_injective_per_base() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_trial_seed(base, i)));
        }
    }

    #[test]
    fn parse_run_args() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        assert_eq!(
            parse(&["--trials", "8", "--workers", "4", "--seed", "3", "--quick"]).unwrap(),
            RunArgs {
                trials: 8,
                workers: 4,
                seed: 3,
                quick: true,
                trace_out: None,
            }
        );
        assert_eq!(parse(&[]).unwrap(), RunArgs::default());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "zero"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert_eq!(
            parse(&["--trace-out", "/tmp/t.json"]).unwrap().trace_out,
            Some(std::path::PathBuf::from("/tmp/t.json"))
        );
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn parse_reports_all_unknown_flags_at_once() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        let err = parse(&["--frobnicate", "--trials", "3", "--wrokers", "2"]).unwrap_err();
        assert!(err.contains("`--frobnicate`"), "{err}");
        assert!(err.contains("`--wrokers`"), "{err}");
        assert!(err.contains("`2`"), "{err}"); // --wrokers ate no value
        assert!(err.starts_with("unknown flags"), "{err}");
        // A single unknown flag stays singular.
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.starts_with("unknown flag `--frobnicate`"), "{err}");
    }

    #[test]
    fn work_actually_fans_out_across_os_threads() {
        // A barrier with as many parties as workers can only release if
        // every unit runs on its own thread concurrently — so this hangs
        // (and the harness timeout fails it) unless the fan-out is real.
        // Wall-clock speedup depends on the host's core count; thread
        // fan-out does not, so this is the portable half of the claim.
        let workers = 4;
        let barrier = std::sync::Barrier::new(workers);
        let ids = Runner::new(workers).run_indexed(workers, |_| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), workers);
    }

    #[test]
    fn panicking_work_unit_propagates() {
        let result = std::panic::catch_unwind(|| {
            Runner::new(3).run_indexed(8, |i| {
                if i == 5 {
                    panic!("unit failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
