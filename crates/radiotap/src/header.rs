//! The radiotap header structure, its fields, and the wire codec.

use crate::cursor::{ReadCursor, WriteCursor};
use crate::present_bit;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Errors produced while parsing radiotap headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadiotapError {
    /// Buffer ended inside a field.
    Truncated {
        /// Offset at which the read was attempted.
        at: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// First byte was not version 0.
    BadVersion(u8),
    /// The declared header length is impossible.
    BadLength {
        /// Length declared in the header.
        declared: u16,
        /// Bytes available in the buffer.
        available: usize,
    },
}

impl fmt::Display for RadiotapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadiotapError::Truncated { at, needed } => {
                write!(
                    f,
                    "radiotap truncated at offset {at}, needed {needed} more bytes"
                )
            }
            RadiotapError::BadVersion(v) => write!(f, "unsupported radiotap version {v}"),
            RadiotapError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "radiotap declares {declared} bytes but buffer holds {available}"
            ),
        }
    }
}

impl std::error::Error for RadiotapError {}

/// The radiotap `Flags` field (bit 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags(pub u8);

impl Flags {
    /// Frame includes the FCS at the end (0x10). Set by our capture taps so
    /// Wireshark verifies the FCS we computed.
    pub const FCS_AT_END: Flags = Flags(0x10);
    /// Frame was received with a bad FCS (0x40).
    pub const BAD_FCS: Flags = Flags(0x40);
    /// Short preamble (0x02).
    pub const SHORT_PREAMBLE: Flags = Flags(0x02);

    /// True if all bits of `other` are set in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }
}

/// The radiotap `Channel` field: centre frequency plus band/modulation bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelInfo {
    /// Centre frequency in MHz.
    pub freq_mhz: u16,
    /// Channel flags (band and modulation).
    pub flags: u16,
}

impl ChannelInfo {
    /// 2.4 GHz band bit.
    pub const FLAG_2GHZ: u16 = 0x0080;
    /// 5 GHz band bit.
    pub const FLAG_5GHZ: u16 = 0x0100;
    /// CCK modulation bit.
    pub const FLAG_CCK: u16 = 0x0020;
    /// OFDM modulation bit.
    pub const FLAG_OFDM: u16 = 0x0040;

    /// A 2.4 GHz channel by number (1..=14), flagged CCK — the band whose
    /// 10 µs SIFS the paper quotes.
    pub fn ghz2(channel: u8) -> ChannelInfo {
        let freq_mhz = match channel {
            14 => 2484,
            c => 2407 + 5 * c as u16,
        };
        ChannelInfo {
            freq_mhz,
            flags: Self::FLAG_2GHZ | Self::FLAG_CCK,
        }
    }

    /// A 5 GHz channel by number (e.g. 36, 149), flagged OFDM.
    pub fn ghz5(channel: u8) -> ChannelInfo {
        ChannelInfo {
            freq_mhz: 5000 + 5 * channel as u16,
            flags: Self::FLAG_5GHZ | Self::FLAG_OFDM,
        }
    }

    /// True for 2.4 GHz channels.
    pub fn is_2ghz(&self) -> bool {
        self.flags & Self::FLAG_2GHZ != 0
    }

    /// Recovers the channel number from the frequency.
    pub fn channel_number(&self) -> u8 {
        if self.is_2ghz() {
            if self.freq_mhz == 2484 {
                14
            } else {
                ((self.freq_mhz - 2407) / 5) as u8
            }
        } else {
            ((self.freq_mhz.saturating_sub(5000)) / 5) as u8
        }
    }
}

/// The radiotap `MCS` field (bit 19) for 802.11n frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct McsInfo {
    /// Which sub-fields are known.
    pub known: u8,
    /// Bandwidth / guard-interval / format flags.
    pub flags: u8,
    /// MCS index.
    pub index: u8,
}

/// A parsed or to-be-encoded radiotap header. Every field is optional; the
/// presence mask is derived from which options are set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Radiotap {
    /// TSFT: microseconds the first bit of the MPDU arrived at the MAC.
    pub tsft_us: Option<u64>,
    /// Flags bitfield.
    pub flags: Option<Flags>,
    /// Legacy rate in 500 kb/s units. ACKs ride legacy rates — the reason
    /// the paper measured CSI on an ESP32 rather than the Intel CSI tool.
    pub rate_500kbps: Option<u8>,
    /// Channel frequency and band flags.
    pub channel: Option<ChannelInfo>,
    /// FHSS hop set/pattern (legacy, carried opaquely).
    pub fhss: Option<u16>,
    /// RF signal power at the antenna in dBm.
    pub antenna_signal_dbm: Option<i8>,
    /// RF noise power at the antenna in dBm.
    pub antenna_noise_dbm: Option<i8>,
    /// Signal quality metric (unitless).
    pub lock_quality: Option<u16>,
    /// Transmit attenuation (unitless).
    pub tx_attenuation: Option<u16>,
    /// Transmit attenuation in dB.
    pub tx_attenuation_db: Option<u16>,
    /// Transmit power in dBm.
    pub tx_power_dbm: Option<i8>,
    /// Antenna index.
    pub antenna: Option<u8>,
    /// Signal in dB above an arbitrary reference.
    pub antenna_signal_db: Option<u8>,
    /// Noise in dB above an arbitrary reference.
    pub antenna_noise_db: Option<u8>,
    /// RX flags.
    pub rx_flags: Option<u16>,
    /// TX flags.
    pub tx_flags: Option<u16>,
    /// Number of data retries.
    pub data_retries: Option<u8>,
    /// 802.11n MCS information.
    pub mcs: Option<McsInfo>,
}

impl Radiotap {
    /// The minimal capture header our simulator taps attach to received
    /// frames: timestamp, FCS-present flag, legacy rate, channel and RSSI.
    pub fn capture(
        tsft_us: u64,
        rate_500kbps: u8,
        channel: ChannelInfo,
        signal_dbm: i8,
        noise_dbm: i8,
    ) -> Radiotap {
        Radiotap {
            tsft_us: Some(tsft_us),
            flags: Some(Flags::FCS_AT_END),
            rate_500kbps: Some(rate_500kbps),
            channel: Some(channel),
            antenna_signal_dbm: Some(signal_dbm),
            antenna_noise_dbm: Some(noise_dbm),
            antenna: Some(0),
            ..Radiotap::default()
        }
    }

    /// Computes the presence bitmask implied by the populated fields.
    pub fn present_mask(&self) -> u32 {
        let mut m = 0u32;
        let mut set = |bit: u32, present: bool| {
            if present {
                m |= 1 << bit;
            }
        };
        set(present_bit::TSFT, self.tsft_us.is_some());
        set(present_bit::FLAGS, self.flags.is_some());
        set(present_bit::RATE, self.rate_500kbps.is_some());
        set(present_bit::CHANNEL, self.channel.is_some());
        set(present_bit::FHSS, self.fhss.is_some());
        set(
            present_bit::ANTENNA_SIGNAL_DBM,
            self.antenna_signal_dbm.is_some(),
        );
        set(
            present_bit::ANTENNA_NOISE_DBM,
            self.antenna_noise_dbm.is_some(),
        );
        set(present_bit::LOCK_QUALITY, self.lock_quality.is_some());
        set(present_bit::TX_ATTENUATION, self.tx_attenuation.is_some());
        set(
            present_bit::TX_ATTENUATION_DB,
            self.tx_attenuation_db.is_some(),
        );
        set(present_bit::TX_POWER_DBM, self.tx_power_dbm.is_some());
        set(present_bit::ANTENNA, self.antenna.is_some());
        set(
            present_bit::ANTENNA_SIGNAL_DB,
            self.antenna_signal_db.is_some(),
        );
        set(
            present_bit::ANTENNA_NOISE_DB,
            self.antenna_noise_db.is_some(),
        );
        set(present_bit::RX_FLAGS, self.rx_flags.is_some());
        set(present_bit::TX_FLAGS, self.tx_flags.is_some());
        set(present_bit::DATA_RETRIES, self.data_retries.is_some());
        set(present_bit::MCS, self.mcs.is_some());
        m
    }

    /// Encodes the header: version, length, presence word and aligned
    /// fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WriteCursor::new();
        w.write_u8(0); // version
        w.write_u8(0); // pad
        w.write_u16(0); // length, patched below
        w.write_u32(self.present_mask());

        if let Some(v) = self.tsft_us {
            w.write_u64(v);
        }
        if let Some(v) = self.flags {
            w.write_u8(v.0);
        }
        if let Some(v) = self.rate_500kbps {
            w.write_u8(v);
        }
        if let Some(v) = self.channel {
            w.write_u16(v.freq_mhz);
            w.write_u16(v.flags);
        }
        if let Some(v) = self.fhss {
            w.write_u16(v);
        }
        if let Some(v) = self.antenna_signal_dbm {
            w.write_i8(v);
        }
        if let Some(v) = self.antenna_noise_dbm {
            w.write_i8(v);
        }
        if let Some(v) = self.lock_quality {
            w.write_u16(v);
        }
        if let Some(v) = self.tx_attenuation {
            w.write_u16(v);
        }
        if let Some(v) = self.tx_attenuation_db {
            w.write_u16(v);
        }
        if let Some(v) = self.tx_power_dbm {
            w.write_i8(v);
        }
        if let Some(v) = self.antenna {
            w.write_u8(v);
        }
        if let Some(v) = self.antenna_signal_db {
            w.write_u8(v);
        }
        if let Some(v) = self.antenna_noise_db {
            w.write_u8(v);
        }
        if let Some(v) = self.rx_flags {
            w.write_u16(v);
        }
        if let Some(v) = self.tx_flags {
            w.write_u16(v);
        }
        if let Some(v) = self.data_retries {
            w.write_u8(v);
        }
        if let Some(v) = self.mcs {
            w.write_u8(v.known);
            w.write_u8(v.flags);
            w.write_u8(v.index);
        }

        let len = w.len() as u16;
        w.patch_u16(2, len);
        w.into_bytes()
    }

    /// Parses a radiotap header from the front of `buf`.
    ///
    /// Returns the header and the number of bytes it occupied (the offset
    /// at which the 802.11 frame begins). Unknown presence bits are skipped
    /// by trusting the declared header length; chained extended presence
    /// words and vendor namespaces are consumed correctly.
    pub fn parse(buf: &[u8]) -> Result<(Radiotap, usize), RadiotapError> {
        if buf.len() < 8 {
            return Err(RadiotapError::Truncated {
                at: 0,
                needed: 8 - buf.len(),
            });
        }
        if buf[0] != 0 {
            return Err(RadiotapError::BadVersion(buf[0]));
        }
        let declared_len = u16::from_le_bytes([buf[2], buf[3]]) as usize;
        if declared_len < 8 || declared_len > buf.len() {
            return Err(RadiotapError::BadLength {
                declared: declared_len as u16,
                available: buf.len(),
            });
        }

        let header = &buf[..declared_len];
        let mut c = ReadCursor::new(header);
        c.skip(4)?; // version, pad, len

        // Presence words: first is the radiotap namespace; bit 31 chains.
        let mut presents = Vec::new();
        loop {
            let word = c.read_u32()?;
            presents.push(word);
            if word & (1 << present_bit::EXT) == 0 {
                break;
            }
            if presents.len() > 16 {
                // Malformed chain; refuse rather than loop forever.
                return Err(RadiotapError::BadLength {
                    declared: declared_len as u16,
                    available: buf.len(),
                });
            }
        }

        let mut rt = Radiotap::default();
        // Only the first (radiotap-namespace) word's fields are decoded;
        // later namespaces are honoured via the declared length.
        let present = presents[0];
        let has = |bit: u32| present & (1 << bit) != 0;

        if has(present_bit::TSFT) {
            rt.tsft_us = Some(c.read_u64()?);
        }
        if has(present_bit::FLAGS) {
            rt.flags = Some(Flags(c.read_u8()?));
        }
        if has(present_bit::RATE) {
            rt.rate_500kbps = Some(c.read_u8()?);
        }
        if has(present_bit::CHANNEL) {
            let freq_mhz = c.read_u16()?;
            let flags = c.read_u16()?;
            rt.channel = Some(ChannelInfo { freq_mhz, flags });
        }
        if has(present_bit::FHSS) {
            rt.fhss = Some(c.read_u16()?);
        }
        if has(present_bit::ANTENNA_SIGNAL_DBM) {
            rt.antenna_signal_dbm = Some(c.read_i8()?);
        }
        if has(present_bit::ANTENNA_NOISE_DBM) {
            rt.antenna_noise_dbm = Some(c.read_i8()?);
        }
        if has(present_bit::LOCK_QUALITY) {
            rt.lock_quality = Some(c.read_u16()?);
        }
        if has(present_bit::TX_ATTENUATION) {
            rt.tx_attenuation = Some(c.read_u16()?);
        }
        if has(present_bit::TX_ATTENUATION_DB) {
            rt.tx_attenuation_db = Some(c.read_u16()?);
        }
        if has(present_bit::TX_POWER_DBM) {
            rt.tx_power_dbm = Some(c.read_i8()?);
        }
        if has(present_bit::ANTENNA) {
            rt.antenna = Some(c.read_u8()?);
        }
        if has(present_bit::ANTENNA_SIGNAL_DB) {
            rt.antenna_signal_db = Some(c.read_u8()?);
        }
        if has(present_bit::ANTENNA_NOISE_DB) {
            rt.antenna_noise_db = Some(c.read_u8()?);
        }
        if has(present_bit::RX_FLAGS) {
            rt.rx_flags = Some(c.read_u16()?);
        }
        if has(present_bit::TX_FLAGS) {
            rt.tx_flags = Some(c.read_u16()?);
        }
        if has(present_bit::DATA_RETRIES) {
            rt.data_retries = Some(c.read_u8()?);
        }
        if has(present_bit::MCS) {
            rt.mcs = Some(McsInfo {
                known: c.read_u8()?,
                flags: c.read_u8()?,
                index: c.read_u8()?,
            });
        }

        Ok((rt, declared_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_header_is_eight_bytes() {
        let rt = Radiotap::default();
        let bytes = rt.encode();
        assert_eq!(bytes.len(), 8);
        let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(consumed, 8);
        assert_eq!(parsed, rt);
    }

    #[test]
    fn capture_header_round_trips() {
        let rt = Radiotap::capture(1_234_567, 2, ChannelInfo::ghz2(6), -55, -92);
        let bytes = rt.encode();
        let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(parsed, rt);
    }

    #[test]
    fn tsft_is_8_aligned() {
        let rt = Radiotap {
            tsft_us: Some(42),
            ..Radiotap::default()
        };
        let bytes = rt.encode();
        // 4-byte preamble + 4-byte presence puts TSFT at offset 8 (aligned).
        assert_eq!(bytes.len(), 16);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 42);
    }

    #[test]
    fn channel_alignment_after_flags_and_rate() {
        // flags(1) + rate(1) end at offset 10; channel u16 starts at 10
        // (already aligned).
        let rt = Radiotap {
            flags: Some(Flags::FCS_AT_END),
            rate_500kbps: Some(4),
            channel: Some(ChannelInfo::ghz2(1)),
            ..Radiotap::default()
        };
        let bytes = rt.encode();
        let (parsed, _) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(parsed.channel.unwrap().freq_mhz, 2412);
    }

    #[test]
    fn odd_alignment_padded() {
        // flags(1) at 8, then lock_quality u16 must pad to 10.
        let rt = Radiotap {
            flags: Some(Flags(0)),
            lock_quality: Some(0x1234),
            ..Radiotap::default()
        };
        let bytes = rt.encode();
        let (parsed, _) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(parsed.lock_quality, Some(0x1234));
    }

    #[test]
    fn channel_helpers() {
        assert_eq!(ChannelInfo::ghz2(1).freq_mhz, 2412);
        assert_eq!(ChannelInfo::ghz2(6).freq_mhz, 2437);
        assert_eq!(ChannelInfo::ghz2(11).freq_mhz, 2462);
        assert_eq!(ChannelInfo::ghz2(14).freq_mhz, 2484);
        assert_eq!(ChannelInfo::ghz5(36).freq_mhz, 5180);
        assert_eq!(ChannelInfo::ghz2(6).channel_number(), 6);
        assert_eq!(ChannelInfo::ghz2(14).channel_number(), 14);
        assert_eq!(ChannelInfo::ghz5(149).channel_number(), 149);
        assert!(ChannelInfo::ghz2(6).is_2ghz());
        assert!(!ChannelInfo::ghz5(36).is_2ghz());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Radiotap::default().encode();
        bytes[0] = 1;
        assert!(matches!(
            Radiotap::parse(&bytes),
            Err(RadiotapError::BadVersion(1))
        ));
    }

    #[test]
    fn declared_length_beyond_buffer_rejected() {
        let mut bytes = Radiotap::default().encode();
        bytes[2] = 200;
        assert!(matches!(
            Radiotap::parse(&bytes),
            Err(RadiotapError::BadLength { .. })
        ));
    }

    #[test]
    fn extended_presence_word_skipped() {
        // Build a header with an EXT-chained second presence word that our
        // encoder never produces, and verify the parser still finds TSFT.
        let mut bytes = vec![0u8, 0]; // version, pad
        bytes.extend_from_slice(&24u16.to_le_bytes()); // len
        let present0 = (1u32 << present_bit::TSFT) | (1 << present_bit::EXT);
        bytes.extend_from_slice(&present0.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // second presence word (empty)
        bytes.extend_from_slice(&0u32.to_le_bytes()); // pad to 8-align TSFT at 16
        bytes.extend_from_slice(&99u64.to_le_bytes()[..8]);
        assert_eq!(bytes.len(), 24);
        let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.tsft_us, Some(99));
    }

    #[test]
    fn trailing_frame_bytes_not_consumed() {
        let rt = Radiotap::capture(0, 2, ChannelInfo::ghz2(1), -40, -90);
        let mut bytes = rt.encode();
        let header_len = bytes.len();
        bytes.extend_from_slice(&[0xd4, 0x00, 0x00, 0x00]); // an ACK begins
        let (_, consumed) = Radiotap::parse(&bytes).unwrap();
        assert_eq!(consumed, header_len);
    }

    #[test]
    fn flags_ops() {
        let f = Flags::FCS_AT_END.union(Flags::SHORT_PREAMBLE);
        assert!(f.contains(Flags::FCS_AT_END));
        assert!(f.contains(Flags::SHORT_PREAMBLE));
        assert!(!f.contains(Flags::BAD_FCS));
    }

    #[test]
    fn mcs_round_trips() {
        let rt = Radiotap {
            mcs: Some(McsInfo {
                known: 0x07,
                flags: 0x00,
                index: 7,
            }),
            ..Radiotap::default()
        };
        let (parsed, _) = Radiotap::parse(&rt.encode()).unwrap();
        assert_eq!(parsed.mcs.unwrap().index, 7);
    }

    #[test]
    fn runaway_ext_chain_rejected() {
        // 20 chained EXT words with a big declared length.
        let mut bytes = vec![0u8, 0];
        let len = 4 + 4 * 20;
        bytes.extend_from_slice(&(len as u16).to_le_bytes());
        for _ in 0..20 {
            bytes.extend_from_slice(&(1u32 << present_bit::EXT).to_le_bytes());
        }
        assert!(Radiotap::parse(&bytes).is_err());
    }
}
