//! A minimal complex-number type for channel modelling.
//!
//! Kept in-house (rather than pulling `num-complex`) to stay within the
//! approved dependency set; only the operations the channel models need
//! are implemented.

use core::ops::{Add, AddAssign, Mul, Sub};
use serde::{Deserialize, Serialize};

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Builds from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Builds from polar form.
    pub fn from_polar(magnitude: f64, phase_rad: f64) -> Complex {
        Complex {
            re: magnitude * phase_rad.cos(),
            im: magnitude * phase_rad.sin(),
        }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (power).
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in (-π, π].
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn polar_round_trip() {
        let c = Complex::from_polar(2.0, FRAC_PI_2);
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - FRAC_PI_2).abs() < 1e-12);
        assert!(c.re.abs() < 1e-12);
    }

    #[test]
    fn multiplication_adds_phases() {
        let a = Complex::from_polar(1.0, PI / 3.0);
        let b = Complex::from_polar(2.0, PI / 6.0);
        let p = a * b;
        assert!((p.abs() - 2.0).abs() < 1e-12);
        assert!((p.arg() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn conj_negates_phase() {
        let c = Complex::new(3.0, 4.0);
        assert_eq!(c.conj(), Complex::new(3.0, -4.0));
        assert!((c.norm_sq() - 25.0).abs() < 1e-12);
        assert!(((c * c.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }
}
