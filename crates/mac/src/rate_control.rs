//! Transmit rate adaptation (ARF — Automatic Rate Fallback).
//!
//! Real stations pick their data rate by probing: climb after a streak of
//! acknowledged frames, fall back after consecutive losses, and retreat
//! immediately if the first frame after a climb fails. The paper's
//! injector deliberately pins a *low* legacy rate instead (robust ACK
//! elicitation beats throughput for an attacker), which this module lets
//! experiments demonstrate by contrast.

use polite_wifi_phy::rate::BitRate;
use serde::{Deserialize, Serialize};

/// ARF parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArfConfig {
    /// Consecutive successes required to try the next rate up.
    pub up_after: u32,
    /// Consecutive failures required to fall back one rate.
    pub down_after: u32,
}

impl Default for ArfConfig {
    fn default() -> Self {
        ArfConfig {
            up_after: 10,
            down_after: 2,
        }
    }
}

/// ARF state for one transmitter.
#[derive(Debug, Clone)]
pub struct Arf {
    ladder: Vec<BitRate>,
    index: usize,
    config: ArfConfig,
    successes: u32,
    failures: u32,
    /// True right after climbing: the next failure retreats immediately.
    probing: bool,
}

impl Arf {
    /// ARF over the legacy OFDM ladder (6→54 Mb/s), starting at the
    /// lowest rate.
    pub fn ofdm() -> Arf {
        Arf::with_ladder(vec![
            BitRate::Mbps6,
            BitRate::Mbps9,
            BitRate::Mbps12,
            BitRate::Mbps18,
            BitRate::Mbps24,
            BitRate::Mbps36,
            BitRate::Mbps48,
            BitRate::Mbps54,
        ])
    }

    /// ARF over the DSSS/CCK ladder (1→11 Mb/s).
    pub fn dsss() -> Arf {
        Arf::with_ladder(vec![
            BitRate::Mbps1,
            BitRate::Mbps2,
            BitRate::Mbps5_5,
            BitRate::Mbps11,
        ])
    }

    /// ARF over an explicit rate ladder (must be non-empty, ascending).
    pub fn with_ladder(ladder: Vec<BitRate>) -> Arf {
        assert!(!ladder.is_empty(), "empty rate ladder");
        debug_assert!(ladder.windows(2).all(|w| w[0].bps() < w[1].bps()));
        Arf {
            ladder,
            index: 0,
            config: ArfConfig::default(),
            successes: 0,
            failures: 0,
            probing: false,
        }
    }

    /// The rate to transmit the next frame at.
    pub fn rate(&self) -> BitRate {
        self.ladder[self.index]
    }

    /// Records an acknowledged transmission.
    pub fn on_success(&mut self) {
        self.failures = 0;
        self.probing = false;
        self.successes += 1;
        if self.successes >= self.config.up_after && self.index + 1 < self.ladder.len() {
            self.index += 1;
            self.successes = 0;
            self.probing = true;
        }
    }

    /// Records a failed (unacknowledged) transmission.
    pub fn on_failure(&mut self) {
        self.successes = 0;
        if self.probing {
            // The probe at the higher rate failed: retreat immediately.
            self.index = self.index.saturating_sub(1);
            self.probing = false;
            self.failures = 0;
            return;
        }
        self.failures += 1;
        if self.failures >= self.config.down_after {
            self.index = self.index.saturating_sub(1);
            self.failures = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climbs_after_streak() {
        let mut arf = Arf::ofdm();
        assert_eq!(arf.rate(), BitRate::Mbps6);
        for _ in 0..10 {
            arf.on_success();
        }
        assert_eq!(arf.rate(), BitRate::Mbps9);
    }

    #[test]
    fn probe_failure_retreats_immediately() {
        let mut arf = Arf::ofdm();
        for _ in 0..10 {
            arf.on_success();
        }
        assert_eq!(arf.rate(), BitRate::Mbps9);
        arf.on_failure(); // first frame at the new rate fails
        assert_eq!(arf.rate(), BitRate::Mbps6);
    }

    #[test]
    fn established_rate_needs_two_failures() {
        let mut arf = Arf::ofdm();
        for _ in 0..10 {
            arf.on_success();
        }
        arf.on_success(); // rate 9 established
        arf.on_failure();
        assert_eq!(arf.rate(), BitRate::Mbps9, "one failure tolerated");
        arf.on_failure();
        assert_eq!(arf.rate(), BitRate::Mbps6);
    }

    #[test]
    fn clamped_at_ladder_ends() {
        let mut arf = Arf::dsss();
        for _ in 0..10 {
            arf.on_failure();
        }
        assert_eq!(arf.rate(), BitRate::Mbps1);
        for _ in 0..200 {
            arf.on_success();
        }
        assert_eq!(arf.rate(), BitRate::Mbps11);
    }

    #[test]
    fn converges_under_lossy_channel() {
        // 9 Mb/s always fails; 6 Mb/s always works: ARF oscillates but
        // spends the vast majority of attempts at 6 Mb/s.
        let mut arf = Arf::ofdm();
        let mut at_6 = 0;
        let total = 1_000;
        for _ in 0..total {
            if arf.rate() == BitRate::Mbps6 {
                at_6 += 1;
                arf.on_success();
            } else {
                arf.on_failure();
            }
        }
        assert!(at_6 > total * 8 / 10, "only {at_6}/{total} at 6 Mb/s");
    }
}
