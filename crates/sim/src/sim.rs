//! The simulator: event loop, transmissions, receptions, retries.

use crate::arena::{CellGrid, NodeArena};
use crate::event::{Event, EventQueue, SchedulerKind};
use crate::faults::{FaultPlan, StallSchedule};
use crate::medium::{Medium, MediumConfig, RxOutcome, Transmission, Tune};
use crate::node::{AckWait, Node, NodeId, QueuedFrame};
use polite_wifi_frame::{ControlFrame, Frame};
use polite_wifi_mac::{MacAction, RadioState, Station, StationConfig};
use polite_wifi_obs::frametrace::hop;
use polite_wifi_obs::{names, Obs};
use polite_wifi_pcap::capture::Capture;
use polite_wifi_phy::airtime;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_radiotap::{ChannelInfo, Radiotap};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How a transmission finds its receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Every node evaluates every transmission, with fading/FER draws
    /// on the shared sequential propagation stream — the mode every
    /// pinned result was produced under. The default.
    #[default]
    AllPairs,
    /// All-pairs enumeration with the per-reception keyed draw scheme
    /// and the `max_range_m` cutoff — the brute-force oracle the cell
    /// grid mode is tested against.
    OracleAllPairs,
    /// Spatial interference-cell enumeration with keyed draws: a
    /// transmission only evaluates co-channel receivers in the 3×3
    /// cell neighbourhood around the transmitter (city scale).
    CellGrid,
}

impl PropagationMode {
    /// Whether fading/FER draws are keyed per reception instead of
    /// riding the shared sequential stream.
    pub fn keyed_draws(self) -> bool {
        self != PropagationMode::AllPairs
    }
}

/// Simulator-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Radio environment.
    pub medium: MediumConfig,
    /// Event-queue backend (identical dispatch order either way).
    pub scheduler: SchedulerKind,
    /// Receiver-enumeration strategy.
    pub propagation: PropagationMode,
}

/// A frame mid-transmission at a node.
#[derive(Debug, Clone)]
struct CurrentTx {
    frame: Frame,
    rate: BitRate,
    is_response: bool,
    start_us: u64,
}

/// Runtime state of a scheduled stall fault: the resolved target plus
/// how many stalls have fired (for the reboot cadence).
#[derive(Debug, Clone, Copy)]
struct StallState {
    node: NodeId,
    schedule: StallSchedule,
    count: u32,
}

/// The discrete-event radio simulator. See the crate docs for an example.
pub struct Simulator {
    config: SimConfig,
    now_us: u64,
    queue: EventQueue,
    nodes: Vec<Node>,
    /// Hot per-node state (positions, tunes, timing guards, ACK waits)
    /// in SoA layout, indexed by `NodeId`.
    hot: NodeArena,
    /// The spatial cell grid, present only in `CellGrid` mode.
    grid: Option<CellGrid>,
    /// Reusable receiver-candidate buffer for the grid fan-out.
    scratch: Vec<NodeId>,
    current_tx: Vec<Option<CurrentTx>>,
    medium: Medium,
    rng: ChaCha8Rng,
    global_capture: Capture,
    next_token: u64,
    last_prune_us: u64,
    obs: Obs,
    seed: u64,
    fault_plan: FaultPlan,
    clock_drift_ppm: f64,
    /// The node whose clock drifts (the attacker's dongle); `None`
    /// disables drift entirely.
    drift_node: Option<NodeId>,
    stall: Option<StallState>,
    /// Next causal trace ID: the injection ordinal within this trial.
    next_trace_id: u64,
    /// Events handled since construction (or the last reset).
    events_dispatched: u64,
}

impl Simulator {
    /// Builds an empty simulator with a deterministic seed.
    pub fn new(config: SimConfig, seed: u64) -> Simulator {
        Simulator {
            config,
            now_us: 0,
            queue: EventQueue::with_scheduler(config.scheduler),
            nodes: Vec::new(),
            hot: NodeArena::new(),
            grid: (config.propagation == PropagationMode::CellGrid)
                .then(|| CellGrid::new(config.medium.max_range_m)),
            scratch: Vec::new(),
            current_tx: Vec::new(),
            medium: Medium::new(config.medium, seed),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5349_4d55_4c41_544f), // "SIMULATO"
            global_capture: Capture::new(),
            next_token: 0,
            last_prune_us: 0,
            obs: Obs::new(),
            seed,
            fault_plan: FaultPlan::clean(),
            clock_drift_ppm: 0.0,
            drift_node: None,
            stall: None,
            next_trace_id: 0,
            events_dispatched: 0,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Events handled since construction (or the last reset).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Non-empty interference cells on the spatial grid (0 outside
    /// `CellGrid` mode).
    pub fn occupied_cells(&self) -> usize {
        self.grid.as_ref().map_or(0, |g| g.occupied_cells())
    }

    /// The seed this simulator was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault plan this simulator runs under (clean by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Installs a fault plan. Call *after* the scenario's nodes exist:
    /// the device-level faults (stall schedule and clock drift) target
    /// the first monitor-mode node (the attacker's dongle) and are
    /// silently dropped when there is none. A clean plan is a no-op,
    /// leaving the run byte-identical to a simulator without the fault
    /// layer. [`reset`](Self::reset) re-installs the plan for the new
    /// trial.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.fault_plan = *plan;
        self.medium.set_faults(plan.burst_loss, plan.snr);
        self.clock_drift_ppm = plan.clock_drift_ppm;
        self.stall = None;
        let dongle = self.nodes.iter().position(|n| n.monitor).map(NodeId);
        self.drift_node = if plan.clock_drift_ppm != 0.0 {
            dongle
        } else {
            None
        };
        if let Some(schedule) = plan.stall {
            if let Some(node) = dongle {
                self.stall = Some(StallState {
                    node,
                    schedule,
                    count: 0,
                });
                self.queue
                    .push(self.now_us + schedule.period_us, Event::StallStart { node });
            }
        }
    }

    /// Applies the configured clock drift to one of `id`'s timer
    /// intervals: the drifting node's timers run slow by
    /// `clock_drift_ppm` parts per million. Identity for every other
    /// node and under a clean plan — drift models the *dongle's* cheap
    /// oscillator, so a victim's SIFS response latency (the
    /// fingerprinting signal) is never perturbed.
    fn drifted(&self, id: NodeId, interval_us: u64) -> u64 {
        if self.drift_node != Some(id) || self.clock_drift_ppm == 0.0 {
            return interval_us;
        }
        interval_us + ((interval_us as f64 * self.clock_drift_ppm) / 1e6).round() as u64
    }

    /// Adds a node at a position (metres) and returns its id.
    pub fn add_node(&mut self, cfg: StationConfig, position: (f64, f64)) -> NodeId {
        let tune = (cfg.band, cfg.channel);
        let station = Station::new(cfg);
        let id = NodeId(self.nodes.len());
        let node = Node::new(station);
        // Bootstrap the station's timers.
        let poll_at = node.station.next_poll_at(self.now_us);
        if let Some(at) = poll_at {
            self.queue.push(at, Event::Poll { node: id });
        }
        self.nodes.push(node);
        self.hot.push(position, tune);
        if self.config.propagation.keyed_draws() {
            // Register the bootstrap chain with the poll dedup.
            self.hot.poll_at[id.0] = poll_at.unwrap_or(u64::MAX);
        }
        if let Some(grid) = &mut self.grid {
            grid.insert(id, tune, position, false);
        }
        self.current_tx.push(None);
        id
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of pending events in the queue — a regression guard
    /// against event-chain leaks (a healthy simulation keeps this small
    /// and bounded regardless of how long it has run).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to a node's station.
    pub fn station(&self, id: NodeId) -> &Station {
        &self.nodes[id.0].station
    }

    /// Mutable access to a node's station (associate peers, block MACs...).
    pub fn station_mut(&mut self, id: NodeId) -> &mut Station {
        &mut self.nodes[id.0].station
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Puts a node's radio in monitor mode (captures everything it hears).
    pub fn set_monitor(&mut self, id: NodeId, monitor: bool) {
        self.nodes[id.0].monitor = monitor;
    }

    /// Enables or disables transmitter-side retries for a node (the
    /// paper's Scapy injector fires and forgets).
    pub fn set_retries(&mut self, id: NodeId, enabled: bool) {
        self.nodes[id.0].retries_enabled = enabled;
    }

    /// Sets a node's velocity in m/s (constant linear motion from its
    /// configured position).
    pub fn set_velocity(&mut self, id: NodeId, velocity: (f64, f64)) {
        self.hot.set_velocity(id, velocity);
        if let Some(grid) = &mut self.grid {
            let moving = velocity != (0.0, 0.0);
            grid.set_moving(id, self.hot.tune(id), self.hot.base_position(id), moving);
        }
    }

    /// Sets a node's transmit power in dBm.
    pub fn set_tx_power(&mut self, id: NodeId, dbm: f64) {
        self.hot.set_tx_power_dbm(id, dbm);
    }

    /// Enables ARF rate adaptation on a node's queued transmissions.
    pub fn enable_rate_adaptation(&mut self, id: NodeId, arf: polite_wifi_mac::rate_control::Arf) {
        self.nodes[id.0].rate_ctrl = Some(arf);
    }

    /// The ideal-observer capture of every completed transmission.
    pub fn global_capture(&self) -> &Capture {
        &self.global_capture
    }

    /// The propagation model in use (e.g. for inverting RSSI to range).
    pub fn path_loss(&self) -> polite_wifi_phy::pathloss::PathLoss {
        self.medium.config().path_loss
    }

    /// The band/channel a node's radio is tuned to.
    pub fn tune_of(&self, id: NodeId) -> Tune {
        self.hot.tune(id)
    }

    /// Retunes a node's radio (the wardriving dongle hops channels).
    pub fn retune(&mut self, id: NodeId, band: polite_wifi_phy::band::Band, channel: u8) {
        let old = self.hot.tune(id);
        self.nodes[id.0].station.retune(band, channel);
        let new = (band, channel);
        self.hot.set_tune(id, new);
        if let Some(grid) = &mut self.grid {
            grid.retune(id, old, new, self.hot.base_position(id));
        }
    }

    /// Kicks off a client's on-air join sequence (authentication →
    /// association) with the AP at `ap_mac`.
    pub fn start_join(&mut self, client: NodeId, ap_mac: polite_wifi_frame::MacAddr) {
        let actions = self.nodes[client.0].station.start_join(ap_mac);
        self.apply_actions(client, actions, None);
    }

    /// Schedules a frame to be handed to `node`'s transmit queue at
    /// `at_us` (contends via CSMA from then on).
    pub fn inject(&mut self, at_us: u64, node: NodeId, frame: Frame, rate: BitRate) {
        self.queue
            .push(at_us.max(self.now_us), Event::Inject { node, frame, rate });
    }

    /// Like [`Simulator::inject`], but data frames larger than
    /// `threshold` payload bytes are MAC-fragmented first; each fragment
    /// contends (and is acknowledged) separately. Returns the fragment
    /// count.
    pub fn inject_fragmented(
        &mut self,
        at_us: u64,
        node: NodeId,
        frame: Frame,
        rate: BitRate,
        threshold: usize,
    ) -> usize {
        match frame {
            Frame::Data(d) => {
                let frags = polite_wifi_mac::fragment::fragment(&d, threshold);
                let n = frags.len();
                for f in frags {
                    self.inject(at_us, node, Frame::Data(f), rate);
                }
                n
            }
            other => {
                self.inject(at_us, node, other, rate);
                1
            }
        }
    }

    /// Runs the event loop until simulated time reaches `t_us`.
    ///
    /// Every handled event feeds the scheduler self-profiler: the event
    /// kind is attributed the virtual time it advanced the clock by
    /// (deterministic — part of canonical exports) and the wall-clock
    /// time its handler took (machine-dependent — kept out of them).
    pub fn run_until(&mut self, t_us: u64) {
        let mut dispatched = 0u64;
        while let Some(at) = self.queue.peek_time() {
            if at > t_us {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            let virt_us = ev.at_us.saturating_sub(self.now_us);
            let kind = ev.event.kind_name();
            self.now_us = ev.at_us;
            let t0 = std::time::Instant::now();
            self.handle(ev.event);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            self.obs.prof(kind, virt_us, wall_ns);
            dispatched += 1;
            if self.now_us.saturating_sub(self.last_prune_us) > 1_000_000 {
                self.medium.prune(self.now_us);
                self.last_prune_us = self.now_us;
            } else if self.config.propagation.keyed_draws()
                && self.medium.active_len() > 64
                && self.now_us.saturating_sub(self.last_prune_us) > 1_000
            {
                // City scale: the collision and carrier-sense scans are
                // linear in the active list, so the keyed modes prune
                // aggressively (the grace window in `Medium::prune`
                // keeps any transmission an arrival could still need).
                // The legacy mode keeps its exact 1 s cadence — prune
                // timing is observable through long-airtime overlaps,
                // and pinned results depend on it. Purely a function of
                // simulated time and the active list, so determinism is
                // untouched.
                self.medium.prune(self.now_us);
                self.last_prune_us = self.now_us;
            }
        }
        self.now_us = self.now_us.max(t_us);
        self.events_dispatched += dispatched;
        if dispatched > 0 {
            self.obs.add(names::SIM_EVENTS_DISPATCHED, dispatched);
        }
    }

    /// Runs until the event queue drains completely (useful in tests).
    pub fn run_to_completion(&mut self) {
        self.run_until(u64::MAX);
    }

    /// Resets the simulator to time zero under a new seed, keeping the
    /// declared population: every node is rebuilt from its original
    /// `StationConfig` at its t=0 position, with monitor mode, retry
    /// policy, velocity and transmit power preserved. Station-level
    /// runtime state (associations, joins, power-save, captures,
    /// ledgers) restarts from cold boot — the point is a fresh,
    /// independently-seeded trial over the same scenario.
    pub fn reset(&mut self, seed: u64) {
        let specs: Vec<_> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let id = NodeId(i);
                (
                    n.station.config().clone(),
                    self.hot.base_position(id),
                    self.hot.velocity(id),
                    n.monitor,
                    n.retries_enabled,
                    self.hot.tx_power_dbm(id),
                )
            })
            .collect();
        let plan = self.fault_plan;
        *self = Simulator::new(self.config, seed);
        for (cfg, position, velocity, monitor, retries, tx_power_dbm) in specs {
            let id = self.add_node(cfg, position);
            self.set_velocity(id, velocity);
            self.nodes[id.0].monitor = monitor;
            self.nodes[id.0].retries_enabled = retries;
            self.hot.set_tx_power_dbm(id, tx_power_dbm);
        }
        // The fault plan is part of the scenario, not the trial: the
        // fresh trial runs under the same plan with its new seed.
        if !plan.is_clean() {
            self.install_faults(&plan);
        }
    }

    /// Snapshot of a node's radio-state time accounting up to now —
    /// the tap the harness's metrics ledger reads energy figures from.
    pub fn activity_totals(&self, id: NodeId) -> crate::ledger::StateTotals {
        self.nodes[id.0].ledger.snapshot(self.now_us)
    }

    /// This simulator's observability scope: counters, histograms, spans
    /// and the event ring accumulated since construction (or the last
    /// [`reset`](Self::reset), which starts a fresh scope).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the observability scope, for experiment-level
    /// counters recorded alongside the simulator's own.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Takes the accumulated observability scope, leaving a fresh one.
    /// The harness calls this at the end of each trial and absorbs the
    /// snapshot in trial order.
    pub fn take_obs(&mut self) -> Obs {
        std::mem::replace(&mut self.obs, Obs::new())
    }

    /// Records the time since the soliciting frame began transmitting as
    /// a completed `frame.exchange` and bumps `counter`. On a traced
    /// exchange this is the injector's "verify" hop: the response came
    /// back, `arg` carries the round-trip.
    fn note_exchange_done(
        &mut self,
        id: NodeId,
        started_us: u64,
        counter: &str,
        trace: Option<u64>,
    ) {
        let dur = self.now_us.saturating_sub(started_us);
        self.obs.incr(counter);
        self.obs.observe("sim.exchange_rtt_us", dur);
        self.obs
            .span("frame.exchange", id.0 as u64, started_us, dur);
        if let Some(tid) = trace {
            self.obs
                .trace_hop(tid, self.now_us, id.0 as u64, hop::ACK_RX, dur);
        }
    }

    /// Assigns the next trace ID to a frame injected at `node` and, when
    /// the deterministic `(seed, id)` sampling keeps it, opens the trace
    /// with its `inject` hop. Unsampled frames cost one branch.
    fn begin_frame_trace(&mut self, node: NodeId) -> Option<u64> {
        let tid = self.next_trace_id;
        self.next_trace_id += 1;
        if !self.obs.trace_sampled(self.seed, tid) {
            return None;
        }
        self.obs.trace_begin(tid);
        self.obs
            .trace_hop(tid, self.now_us, node.0 as u64, hop::INJECT, 0);
        Some(tid)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Inject { node, frame, rate } => {
                self.obs.incr("sim.frames_injected");
                let trace = self.begin_frame_trace(node);
                self.nodes[node.0].tx_queue.push_back(QueuedFrame {
                    frame,
                    rate,
                    attempts: 0,
                    trace,
                });
                self.schedule_tx_attempt(node);
            }
            Event::Poll { node } => self.do_poll(node),
            Event::TxAttempt { node } => self.do_tx_attempt(node),
            Event::ResponseTx {
                node,
                frame,
                rate,
                trace,
            } => {
                // A stalled device's firmware schedules no responses —
                // the SIFS-timed ACK/CTS silently never airs.
                if self.is_stalled(node) {
                    self.obs.incr(names::FAULT_DEVICE_RESPONSES_SUPPRESSED);
                    self.obs.incr(names::FRAME_FATE_FAULT_SUPPRESSED);
                    if let Some(tid) = trace {
                        self.obs.trace_hop(
                            tid,
                            self.now_us,
                            node.0 as u64,
                            hop::FATE_FAULT_SUPPRESSED,
                            0,
                        );
                    }
                    return;
                }
                self.start_transmission(node, frame, rate, true, trace);
            }
            Event::StallStart { node } => self.do_stall_start(node),
            Event::StallEnd { node, reboot } => self.do_stall_end(node, reboot),
            Event::TxEnd { node } => self.do_tx_end(node),
            Event::Arrival {
                node,
                from,
                frame,
                rate,
                start_us,
                tune,
                trace,
            } => self.do_arrival(node, from, frame, rate, start_us, tune, trace),
            Event::AckTimeout { node, token } => self.do_ack_timeout(node, token),
        }
    }

    fn do_poll(&mut self, id: NodeId) {
        // This chain is consumed (cleared even on the stall path below,
        // so a stale marker can't block do_stall_end's fresh chain).
        self.hot.poll_at[id.0] = u64::MAX;
        if self.is_stalled(id) {
            // Frozen firmware runs no timers: this poll chain dies here
            // and do_stall_end starts a fresh one on recovery.
            // (Re-queueing it as well would leak one chain per stall.)
            return;
        }
        let now = self.now_us;
        let actions = self.nodes[id.0].station.poll(now);
        self.apply_actions(id, actions, None);
        self.reschedule_poll(id);
    }

    /// True while a fault-injected stall freezes the node.
    fn is_stalled(&self, id: NodeId) -> bool {
        self.now_us < self.hot.stalled_until[id.0]
    }

    fn reschedule_poll(&mut self, id: NodeId) {
        if let Some(at) = self.nodes[id.0].station.next_poll_at(self.now_us) {
            // Never schedule a poll at the current instant again, or a
            // timer that stays due would spin forever. Clock drift
            // stretches the interval (identity under a clean plan).
            let at = at.max(self.now_us + 1);
            let at = self.now_us + self.drifted(id, at - self.now_us);
            if self.config.propagation.keyed_draws() {
                // Poll dedup: reschedule_poll also runs after every
                // received frame, and without this guard each overheard
                // frame would spawn another self-perpetuating poll chain
                // — at city density, hundreds per node. A chain already
                // pending at or before `at` will run and reschedule
                // itself, so this push would be redundant. The legacy
                // mode keeps the duplicate chains: dropping them shifts
                // event sequence numbers, which reorders same-time
                // events and would drift every pinned result.
                if self.hot.poll_at[id.0] <= at {
                    return;
                }
                self.hot.poll_at[id.0] = at;
            }
            self.queue.push(at, Event::Poll { node: id });
        }
    }

    fn do_stall_start(&mut self, id: NodeId) {
        let Some(state) = &mut self.stall else { return };
        if state.node != id {
            return;
        }
        state.count += 1;
        let schedule = state.schedule;
        let reboot = schedule.reboot_every > 0 && state.count % schedule.reboot_every == 0;
        let now = self.now_us;
        self.hot.stalled_until[id.0] = now + schedule.duration_us;
        self.obs.incr(names::FAULT_DEVICE_STALLS);
        self.obs
            .observe(names::FAULT_DEVICE_STALL_US, schedule.duration_us);
        self.obs.event(now, id.0 as u64, "fault.stall");
        self.queue.push(
            now + schedule.duration_us,
            Event::StallEnd { node: id, reboot },
        );
        self.queue
            .push(now + schedule.period_us, Event::StallStart { node: id });
    }

    fn do_stall_end(&mut self, id: NodeId, reboot: bool) {
        let now = self.now_us;
        if reboot {
            // Cold boot: the station state machine restarts from its
            // declared config; queued frames and pending waits are lost.
            let cfg = self.nodes[id.0].station.config().clone();
            let band = cfg.band;
            let node = &mut self.nodes[id.0];
            node.station = Station::new(cfg);
            node.tx_queue.clear();
            node.tx_attempt_pending = false;
            node.csma = polite_wifi_mac::csma::Csma::new(band);
            self.hot.ack_wait[id.0] = None;
            self.obs.incr(names::FAULT_DEVICE_REBOOTS);
            self.obs.event(now, id.0 as u64, "fault.reboot");
        }
        self.reschedule_poll(id);
        self.schedule_tx_attempt(id);
    }

    fn schedule_tx_attempt(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.0];
        if node.tx_attempt_pending || node.tx_queue.is_empty() {
            return;
        }
        node.tx_attempt_pending = true;
        let draw: u16 = self.rng.gen();
        let defer = node.csma.defer_us(draw) as u64;
        self.obs.observe("mac.csma_defer_us", defer);
        self.queue
            .push(self.now_us + defer, Event::TxAttempt { node: id });
    }

    fn do_tx_attempt(&mut self, id: NodeId) {
        self.nodes[id.0].tx_attempt_pending = false;
        if self.nodes[id.0].tx_queue.is_empty() {
            return;
        }
        // A stalled device transmits nothing; try again on recovery.
        if self.is_stalled(id) {
            let at = self.hot.stalled_until[id.0];
            self.nodes[id.0].tx_attempt_pending = true;
            self.queue.push(at, Event::TxAttempt { node: id });
            return;
        }
        // Half-duplex: if mid-transmission, try again after it ends.
        if self.hot.tx_busy_until[id.0] > self.now_us {
            let at = self.hot.tx_busy_until[id.0];
            self.nodes[id.0].tx_attempt_pending = true;
            self.queue.push(at, Event::TxAttempt { node: id });
            return;
        }
        // An outstanding ACK wait means the head frame is in flight.
        if self.hot.ack_wait[id.0].is_some() {
            return;
        }
        // Virtual carrier sense: the NAV set by overheard Duration fields
        // defers contended transmissions (SIFS responses are exempt).
        if self.hot.nav_until[id.0] > self.now_us {
            let at = self.hot.nav_until[id.0];
            self.nodes[id.0].tx_attempt_pending = true;
            self.queue.push(at, Event::TxAttempt { node: id });
            return;
        }
        // Carrier sense: O(active transmissions), distances on demand.
        // The keyed modes take the distance-domain scan (no `log10` or
        // `sqrt` per active entry); the legacy mode keeps the exact
        // power-domain scan its pinned results were produced with.
        let busy = {
            let now = self.now_us;
            let my_pos = self.hot.position_at(id, now);
            let hot = &self.hot;
            if self.config.propagation.keyed_draws() {
                self.medium
                    .channel_busy_ranged(now, id, self.hot.tune(id), |other| {
                        hot.distance_sq_to_point(my_pos, other, now)
                    })
            } else {
                self.medium
                    .channel_busy(now, id, self.hot.tune(id), |other| {
                        hot.distance_to_point(my_pos, other, now)
                    })
            }
        };
        if busy {
            // Busy: back off and retry.
            let draw: u16 = self.rng.gen();
            let defer = self.nodes[id.0].csma.defer_us(draw) as u64;
            self.obs.incr("mac.csma_busy_backoffs");
            self.obs.observe("mac.csma_backoff_us", defer);
            self.nodes[id.0].tx_attempt_pending = true;
            self.queue
                .push(self.now_us + defer, Event::TxAttempt { node: id });
            return;
        }
        let head = self.nodes[id.0].tx_queue.front().cloned().expect("checked");
        let rate = match &self.nodes[id.0].rate_ctrl {
            Some(arf) => arf.rate(),
            None => head.rate,
        };
        let mut frame = head.frame.clone();
        // Mark MAC-level retries.
        if head.attempts > 0 {
            match &mut frame {
                Frame::Data(d) => d.fc.retry = true,
                Frame::Mgmt(m) => m.fc.retry = true,
                Frame::Ctrl(_) => {}
            }
        }
        if let Some(tid) = head.trace {
            self.obs
                .trace_hop(tid, self.now_us, id.0 as u64, hop::TX, head.attempts as u64);
        }
        self.start_transmission(id, frame, rate, false, head.trace);
    }

    fn start_transmission(
        &mut self,
        id: NodeId,
        frame: Frame,
        rate: BitRate,
        is_response: bool,
        trace: Option<u64>,
    ) {
        if !is_response {
            // Initiating a transmission wakes (and keeps awake) a
            // power-save radio; answering with an ACK does not.
            let actions = self.nodes[id.0].station.on_transmit(self.now_us, &frame);
            self.apply_actions(id, actions, trace);
        } else if let Some(tid) = trace {
            self.obs
                .trace_hop(tid, self.now_us, id.0 as u64, hop::RESPONSE_TX, 0);
        }
        let duration = airtime::frame_duration_us(frame.air_len(), rate, false) as u64;
        let end = self.now_us + duration;
        let tx_power = self.hot.tx_power_dbm(id);
        self.hot.tx_busy_until[id.0] = end;
        {
            let node = &mut self.nodes[id.0];
            node.tx_count += 1;
            node.ledger.begin_busy(self.now_us, RadioState::Tx);
        }
        self.current_tx[id.0] = Some(CurrentTx {
            frame: frame.clone(),
            rate,
            is_response,
            start_us: self.now_us,
        });
        let tune = self.hot.tune(id);
        self.medium.begin_transmission(Transmission {
            from: id,
            start_us: self.now_us,
            end_us: end,
            tx_power_dbm: tx_power,
            tune,
        });
        self.queue.push(end, Event::TxEnd { node: id });
        // Receiver fan-out. All modes enumerate effectful receivers in
        // ascending NodeId order; the spatial modes drop receivers past
        // the hard `max_range_m` cutoff (evaluated at arrival time,
        // like the oracle), which in keyed-draw mode cannot perturb
        // anyone else's randomness.
        let start_us = self.now_us;
        let push_arrival = |queue: &mut EventQueue, rx: NodeId| {
            queue.push(
                end,
                Event::Arrival {
                    node: rx,
                    from: id,
                    frame: frame.clone(),
                    rate,
                    start_us,
                    tune,
                    trace,
                },
            );
        };
        match self.config.propagation {
            PropagationMode::AllPairs => {
                for i in 0..self.nodes.len() {
                    if i != id.0 {
                        push_arrival(&mut self.queue, NodeId(i));
                    }
                }
            }
            PropagationMode::OracleAllPairs => {
                let max_range = self.config.medium.max_range_m;
                let tx_pos = self.hot.position_at(id, end);
                for i in 0..self.nodes.len() {
                    if i != id.0 && self.hot.distance_to_point(tx_pos, NodeId(i), end) <= max_range
                    {
                        push_arrival(&mut self.queue, NodeId(i));
                    }
                }
            }
            PropagationMode::CellGrid => {
                let max_range = self.config.medium.max_range_m;
                let tx_pos = self.hot.position_at(id, end);
                let mut cands = std::mem::take(&mut self.scratch);
                self.grid
                    .as_ref()
                    .expect("grid mode")
                    .candidates(tx_pos, tune, id, max_range, end, &self.hot, &mut cands);
                for &rx in &cands {
                    push_arrival(&mut self.queue, rx);
                }
                self.scratch = cands;
            }
        }
    }

    fn do_tx_end(&mut self, id: NodeId) {
        let now = self.now_us;
        self.nodes[id.0].ledger.end_busy(now);
        let tx = match self.current_tx[id.0].take() {
            Some(tx) => tx,
            None => return,
        };
        self.obs.incr("sim.frames_txed");
        self.obs.span(
            if tx.is_response {
                "frame.tx_response"
            } else {
                "frame.tx"
            },
            id.0 as u64,
            tx.start_us,
            now.saturating_sub(tx.start_us),
        );
        // The ideal observer logs every completed transmission.
        self.global_capture.record_frame(now, &tx.frame);
        // A monitor-mode radio also captures its own transmissions, the
        // way a real monitor-mode dongle's sniffer sees injected frames.
        if self.nodes[id.0].monitor {
            self.nodes[id.0].capture.record_frame(now, &tx.frame);
        }

        if tx.is_response {
            return;
        }
        let solicits = tx.frame.solicits_ack() || tx.frame.solicits_cts();
        if solicits && self.nodes[id.0].retries_enabled {
            let token = self.next_token;
            self.next_token += 1;
            self.hot.ack_wait[id.0] = Some(AckWait {
                token,
                satisfied: false,
                started_us: tx.start_us,
            });
            let band = self.nodes[id.0].station.config().band;
            let timeout = airtime::ack_timeout_us(band, tx.rate) as u64;
            self.queue
                .push(now + timeout, Event::AckTimeout { node: id, token });
        } else {
            // Fire-and-forget: the frame is done, move on.
            self.nodes[id.0].tx_queue.pop_front();
            self.schedule_tx_attempt(id);
        }
    }

    fn do_ack_timeout(&mut self, id: NodeId, token: u64) {
        let wait = match &self.hot.ack_wait[id.0] {
            Some(w) if w.token == token => w.clone(),
            _ => return, // stale timeout
        };
        self.hot.ack_wait[id.0] = None;
        if wait.satisfied {
            return;
        }
        let node = &mut self.nodes[id.0];
        // No response: binary exponential backoff, retry or drop.
        if let Some(arf) = &mut node.rate_ctrl {
            arf.on_failure();
        }
        let head_info = node.tx_queue.front().map(|f| (f.trace, f.attempts));
        let keep = node.csma.on_failure();
        if keep {
            if let Some(head) = node.tx_queue.front_mut() {
                head.attempts += 1;
            }
        } else {
            node.tx_queue.pop_front();
            node.tx_failures += 1;
        }
        let now = self.now_us;
        self.obs.incr("sim.ack_timeouts");
        if keep {
            self.obs.incr("sim.tx_retries");
            self.obs.event(now, id.0 as u64, "ack.timeout");
            if let Some((Some(tid), attempts)) = head_info {
                self.obs
                    .trace_hop(tid, now, id.0 as u64, hop::RETRY, attempts as u64 + 1);
            }
        } else {
            self.obs.incr("sim.tx_drops");
            self.obs.event(now, id.0 as u64, "frame.dropped");
            if let Some((trace, attempts)) = head_info {
                self.obs
                    .observe(names::SIM_RETRY_CHAIN_DEPTH, attempts as u64);
                if let Some(tid) = trace {
                    self.obs
                        .trace_hop(tid, now, id.0 as u64, hop::DROP, attempts as u64);
                }
            }
        }
        self.schedule_tx_attempt(id);
    }

    /// Classifies an addressed reception's medium fate — the
    /// `frame.fate.*` taxonomy DESIGN.md §10 documents — bumping the
    /// always-on fate counter and, for a traced frame, recording the
    /// fate hop (`arg` 1 on `fate.fer_dropped` marks the injected
    /// burst-loss fault rather than the channel's intrinsic FER draw).
    fn note_arrival_fate(&mut self, id: NodeId, outcome: &RxOutcome, trace: Option<u64>) {
        let (counter, kind, arg) = if outcome.collided {
            (names::FRAME_FATE_COLLIDED, hop::FATE_COLLIDED, 0)
        } else if outcome.fault_dropped {
            (names::FRAME_FATE_FER_DROPPED, hop::FATE_FER_DROPPED, 1)
        } else if !outcome.detectable {
            (names::FRAME_FATE_UNDETECTED, hop::FATE_UNDETECTED, 0)
        } else if !outcome.fcs_ok {
            (names::FRAME_FATE_FER_DROPPED, hop::FATE_FER_DROPPED, 0)
        } else {
            (names::FRAME_FATE_DELIVERED, hop::FATE_DELIVERED, 0)
        };
        self.obs.incr(counter);
        if let Some(tid) = trace {
            self.obs.trace_hop(tid, self.now_us, id.0 as u64, kind, arg);
        }
    }

    /// Evaluates one reception on the medium, with distances computed
    /// on demand from the arena (no per-arrival allocation). Dispatches
    /// to sequential-stream or keyed draws per the propagation mode.
    fn eval_rx(
        &mut self,
        from: NodeId,
        id: NodeId,
        start_us: u64,
        psdu_len: usize,
        rate: BitRate,
        tune: Tune,
    ) -> RxOutcome {
        let now = self.now_us;
        let my_pos = self.hot.position_at(id, now);
        let d = self.hot.distance_between(id, from, now);
        let tx_power = self.hot.tx_power_dbm(from);
        let hot = &self.hot;
        let dist = |other: NodeId| hot.distance_to_point(my_pos, other, now);
        if self.config.propagation.keyed_draws() {
            self.medium.evaluate_rx_keyed(
                from, id, start_us, now, tx_power, d, psdu_len, rate, tune, dist,
            )
        } else {
            self.medium.evaluate_rx(
                from, id, start_us, now, tx_power, d, psdu_len, rate, tune, dist,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_arrival(
        &mut self,
        id: NodeId,
        from: NodeId,
        frame: Frame,
        rate: BitRate,
        start_us: u64,
        tune: Tune,
        trace: Option<u64>,
    ) {
        let now = self.now_us;
        // A radio tuned elsewhere hears nothing of this frame. This
        // check precedes every draw and fault-chain step, so the
        // all-pairs oracle delivering arrivals to off-tune nodes stays
        // draw-for-draw identical to the grid never scheduling them.
        if self.hot.tune(id) != tune {
            return;
        }
        // Fate hops and counters describe what happened at the frame's
        // *addressed* receiver; bystander copies stay untraced.
        let for_me = frame.receiver() == Some(self.nodes[id.0].station.mac());
        let ftrace = if for_me { trace } else { None };
        // A stalled device's radio is deaf until recovery.
        if self.is_stalled(id) {
            self.obs.incr(names::FAULT_DEVICE_RX_DROPPED_STALLED);
            if for_me {
                self.obs.incr(names::FRAME_FATE_STALL_SWALLOWED);
                if let Some(tid) = ftrace {
                    self.obs
                        .trace_hop(tid, now, id.0 as u64, hop::FATE_STALL_SWALLOWED, 0);
                }
            }
            return;
        }
        // Half-duplex: a radio that was transmitting during any part of
        // the frame cannot have received it.
        if self.hot.tx_busy_until[id.0] > start_us && id != from {
            let own_tx_overlaps = self.hot.tx_busy_until[id.0] > start_us;
            if own_tx_overlaps && self.current_or_recent_tx_overlap(id, start_us) {
                if for_me {
                    self.obs.incr(names::FRAME_FATE_COLLIDED);
                    if let Some(tid) = ftrace {
                        self.obs
                            .trace_hop(tid, now, id.0 as u64, hop::FATE_COLLIDED, 1);
                    }
                }
                return;
            }
        }
        // A dozing radio hears nothing — with one exception: the ACK for
        // the frame it just transmitted. Real radios finish the exchange
        // (PM=1 null → ACK) before powering down; without this, the doze
        // announcement would retry-storm into the attacker's power books.
        if !self.nodes[id.0].station.is_awake() {
            let my_mac = self.nodes[id.0].station.mac();
            let is_my_ack = matches!(
                &frame,
                Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == my_mac
            );
            if is_my_ack && self.hot.ack_wait[id.0].is_some() {
                let outcome = self.eval_rx(from, id, start_us, frame.air_len(), rate, tune);
                if outcome.fault_dropped {
                    self.obs.incr(names::FAULT_MEDIUM_FRAMES_DROPPED);
                }
                self.note_arrival_fate(id, &outcome, ftrace);
                if outcome.fcs_ok {
                    let mut completed_at = None;
                    let depth = self.nodes[id.0]
                        .tx_queue
                        .front()
                        .map(|f| f.attempts)
                        .unwrap_or(0);
                    if let Some(mut wait) = self.hot.ack_wait[id.0].take() {
                        if !wait.satisfied {
                            wait.satisfied = true;
                            completed_at = Some(wait.started_us);
                            let node = &mut self.nodes[id.0];
                            node.acks_received += 1;
                            node.csma.on_success();
                            if let Some(arf) = &mut node.rate_ctrl {
                                arf.on_success();
                            }
                            node.tx_queue.pop_front();
                        } else {
                            self.hot.ack_wait[id.0] = Some(wait);
                        }
                    }
                    if let Some(started_us) = completed_at {
                        self.obs.observe(names::SIM_RETRY_CHAIN_DEPTH, depth as u64);
                        self.note_exchange_done(id, started_us, "sim.acks_received", ftrace);
                        self.schedule_tx_attempt(id);
                    }
                }
            } else if for_me {
                self.obs.incr(names::FRAME_FATE_DOZING);
                if let Some(tid) = ftrace {
                    self.obs
                        .trace_hop(tid, now, id.0 as u64, hop::FATE_DOZING, 0);
                }
            }
            return;
        }

        let outcome = self.eval_rx(from, id, start_us, frame.air_len(), rate, tune);
        if outcome.fault_dropped {
            self.obs.incr(names::FAULT_MEDIUM_FRAMES_DROPPED);
        }
        if for_me {
            self.note_arrival_fate(id, &outcome, ftrace);
        }

        if !outcome.detectable {
            return;
        }

        // Account RX time (the energy model charges for listening to the
        // attacker's frames as well as answering them).
        {
            let node = &mut self.nodes[id.0];
            node.ledger.begin_busy(start_us, RadioState::Rx);
            node.ledger.end_busy(now);
        }

        // Capture taps: monitor nodes record everything that decodes.
        if outcome.fcs_ok && (self.nodes[id.0].monitor || for_me) {
            let cfg = self.nodes[id.0].station.config();
            let chan = match cfg.band {
                polite_wifi_phy::band::Band::Ghz2 => ChannelInfo::ghz2(cfg.channel),
                polite_wifi_phy::band::Band::Ghz5 => ChannelInfo::ghz5(cfg.channel),
            };
            let signal = (self.medium.noise_dbm() + outcome.snr_db) as i8;
            let rt = Radiotap::capture(
                now,
                rate.radiotap_500kbps(),
                chan,
                signal,
                self.medium.noise_dbm() as i8,
            );
            self.nodes[id.0]
                .capture
                .record_with_radiotap(now, rt, &frame);
        }

        // Virtual carrier sense: frames addressed to OTHERS set this
        // node's NAV from their Duration field. This is the mechanism a
        // forged-RTS attacker abuses: the victim's automatic CTS makes
        // every bystander defer (PS-Poll's Duration field is an AID and
        // is exempt).
        if outcome.fcs_ok && !for_me {
            let nav_us = match &frame {
                Frame::Ctrl(ControlFrame::Rts { duration_us, .. })
                | Frame::Ctrl(ControlFrame::Cts { duration_us, .. }) => *duration_us as u64,
                Frame::Ctrl(_) => 0,
                Frame::Data(d) => d.duration as u64,
                Frame::Mgmt(m) => m.duration as u64,
            };
            if nav_us > 0 {
                let nav = &mut self.hot.nav_until[id.0];
                *nav = (*nav).max(now + nav_us);
            }
        }

        // Transmitter-side response matching: an ACK/CTS addressed to me
        // satisfies my outstanding wait.
        if outcome.fcs_ok && for_me {
            let my_mac = self.nodes[id.0].station.mac();
            let is_response_to_me = matches!(
                &frame,
                Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == my_mac
            ) || matches!(
                &frame,
                Frame::Ctrl(ControlFrame::Cts { ra, .. }) if *ra == my_mac
            );
            if is_response_to_me {
                let mut completed_at = None;
                let depth = self.nodes[id.0]
                    .tx_queue
                    .front()
                    .map(|f| f.attempts)
                    .unwrap_or(0);
                if let Some(mut wait) = self.hot.ack_wait[id.0].take() {
                    if !wait.satisfied {
                        wait.satisfied = true;
                        completed_at = Some(wait.started_us);
                        let node = &mut self.nodes[id.0];
                        match &frame {
                            Frame::Ctrl(ControlFrame::Ack { .. }) => node.acks_received += 1,
                            Frame::Ctrl(ControlFrame::Cts { .. }) => node.cts_received += 1,
                            _ => {}
                        }
                        node.csma.on_success();
                        if let Some(arf) = &mut node.rate_ctrl {
                            arf.on_success();
                        }
                        node.tx_queue.pop_front();
                    } else {
                        self.hot.ack_wait[id.0] = Some(wait);
                    }
                } else {
                    // Fire-and-forget senders (retries off — the usual
                    // injection mode) still count their responses.
                    match &frame {
                        Frame::Ctrl(ControlFrame::Ack { .. }) => {
                            self.nodes[id.0].acks_received += 1;
                            self.obs.incr("sim.acks_received");
                        }
                        Frame::Ctrl(ControlFrame::Cts { .. }) => {
                            self.nodes[id.0].cts_received += 1;
                            self.obs.incr("sim.cts_received");
                        }
                        _ => {}
                    }
                    // The attacker-verify hop: the injector saw its
                    // forged frame answered (no wait, so no RTT arg).
                    if let Some(tid) = ftrace {
                        self.obs.trace_hop(tid, now, id.0 as u64, hop::ACK_RX, 0);
                    }
                }
                if let Some(started_us) = completed_at {
                    let counter = match &frame {
                        Frame::Ctrl(ControlFrame::Cts { .. }) => "sim.cts_received",
                        _ => "sim.acks_received",
                    };
                    self.obs.observe(names::SIM_RETRY_CHAIN_DEPTH, depth as u64);
                    self.note_exchange_done(id, started_us, counter, ftrace);
                    self.schedule_tx_attempt(id);
                }
            }
        }

        // Hand the frame to the MAC state machine. Reactions (SIFS
        // responses, enqueued deauth bursts) inherit the causal trace of
        // the frame that provoked them.
        let actions = self.nodes[id.0]
            .station
            .on_receive(now, &frame, outcome.fcs_ok, rate);
        self.apply_actions(id, actions, ftrace);
        self.reschedule_poll(id);
    }

    /// True when the node's own transmission overlapped `[start_us, now]`.
    fn current_or_recent_tx_overlap(&self, id: NodeId, start_us: u64) -> bool {
        // tx_busy_until > start_us means some transmission of ours ended
        // after the incoming frame began.
        self.hot.tx_busy_until[id.0] > start_us
    }

    fn apply_actions(&mut self, id: NodeId, actions: Vec<MacAction>, trace: Option<u64>) {
        let sifs_us = self.nodes[id.0].station.config().band.sifs_us();
        polite_wifi_mac::obs::observe_actions(&mut self.obs, sifs_us, &actions);
        for action in actions {
            match action {
                MacAction::Respond {
                    frame,
                    delay_us,
                    rate,
                } => {
                    if let Some(tid) = trace {
                        self.obs.trace_hop(
                            tid,
                            self.now_us,
                            id.0 as u64,
                            hop::SIFS_ACK,
                            delay_us as u64,
                        );
                    }
                    self.queue.push(
                        self.now_us + self.drifted(id, delay_us as u64),
                        Event::ResponseTx {
                            node: id,
                            frame,
                            rate,
                            trace,
                        },
                    );
                }
                MacAction::Enqueue { frame, rate } => {
                    self.nodes[id.0].tx_queue.push_back(QueuedFrame {
                        frame,
                        rate,
                        attempts: 0,
                        trace,
                    });
                    self.schedule_tx_attempt(id);
                }
                MacAction::Radio(state) => match state {
                    RadioState::Sleep | RadioState::Idle => {
                        let now = self.now_us;
                        let node = &mut self.nodes[id.0];
                        let prev = node.ledger.base_state();
                        node.ledger.set_base(now, state);
                        if prev != state {
                            let dwell = now.saturating_sub(node.last_base_change_us);
                            node.last_base_change_us = now;
                            let dwell_metric = match prev {
                                RadioState::Sleep => "power.dwell_sleep_us",
                                _ => "power.dwell_awake_us",
                            };
                            self.obs.observe(dwell_metric, dwell);
                            self.obs.incr("power.transitions");
                            let label = if state == RadioState::Sleep {
                                "power.doze"
                            } else {
                                "power.wake"
                            };
                            self.obs.event(now, id.0 as u64, label);
                        }
                    }
                    _ => {}
                },
                MacAction::Deliver(_) | MacAction::Discard { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::{builder, MacAddr};
    use polite_wifi_mac::Behavior;

    fn victim_mac() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    fn two_node_sim() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_monitor(attacker, true);
        (sim, victim, attacker)
    }

    #[test]
    fn fake_frame_elicits_ack_end_to_end() {
        let (mut sim, victim, attacker) = two_node_sim();
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(1_000, attacker, fake, BitRate::Mbps1);
        sim.run_until(50_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 1);
        assert_eq!(sim.node(attacker).acks_received, 1);
    }

    #[test]
    fn obs_records_the_exchange() {
        let (mut sim, _victim, attacker) = two_node_sim();
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(1_000, attacker, fake, BitRate::Mbps1);
        sim.run_until(50_000);
        let obs = sim.obs();
        assert_eq!(obs.counters.get("sim.frames_injected"), 1);
        assert_eq!(obs.counters.get("sim.acks_received"), 1);
        assert_eq!(obs.counters.get("mac.acks_scheduled"), 1);
        assert_eq!(obs.counters.get("mac.sifs_deadline_met"), 1);
        assert_eq!(obs.counters.get("mac.discard.not_associated"), 1);
        // The ACK was scheduled exactly at the 2.4 GHz SIFS.
        let t = obs.histograms.get("mac.ack_turnaround_us").unwrap();
        assert_eq!((t.count, t.min, t.max), (1, 10, 10));
        // RTT = fake airtime (416 µs) + SIFS (10) + ACK airtime (304).
        let rtt = obs.histograms.get("sim.exchange_rtt_us").unwrap();
        assert_eq!(rtt.max, 416 + 10 + 304);
        // Spans are off without an installed tracing config.
        assert!(obs.spans.is_empty());
    }

    #[test]
    fn take_obs_leaves_a_fresh_scope() {
        let (mut sim, _victim, attacker) = two_node_sim();
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(1_000, attacker, fake, BitRate::Mbps1);
        sim.run_until(50_000);
        let snapshot = sim.take_obs();
        assert!(snapshot.counters.get("sim.frames_txed") >= 2);
        assert!(sim.obs().is_empty());
    }

    #[test]
    fn ack_arrives_sifs_after_frame_end() {
        let (mut sim, _victim, attacker) = two_node_sim();
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(50_000);
        let cap = sim.global_capture();
        assert_eq!(cap.len(), 2);
        let fake_end = cap.frames()[0].ts_us;
        let ack_end = cap.frames()[1].ts_us;
        // ACK occupies SIFS + 304 µs (14 bytes at 1 Mb/s) after frame end.
        assert_eq!(ack_end - fake_end, 10 + 304);
    }

    #[test]
    fn attacker_capture_contains_the_ack() {
        let (mut sim, _victim, attacker) = two_node_sim();
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(50_000);
        let cap = &sim.node(attacker).capture;
        let ack = cap
            .frames()
            .iter()
            .find(|cf| matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE))
            .expect("ACK captured");
        // Received frames carry radiotap metadata; the attacker's own
        // injected frame is logged without it (own TX has no RX info).
        assert!(ack.radiotap.is_some());
        assert!(cap
            .frames()
            .iter()
            .any(|cf| cf.frame.frame_control().is_null_data() && cf.radiotap.is_none()));
    }

    #[test]
    fn injection_burst_all_acked() {
        let (mut sim, victim, attacker) = two_node_sim();
        for i in 0..100u64 {
            let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
            sim.inject(i * 5_000, attacker, fake, BitRate::Mbps1);
        }
        sim.run_until(2_000_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 100);
        assert_eq!(sim.node(attacker).acks_received, 100);
        assert_eq!(sim.node(attacker).tx_failures, 0);
    }

    #[test]
    fn rts_elicits_cts_end_to_end() {
        let (mut sim, victim, attacker) = two_node_sim();
        let rts = builder::fake_rts(victim_mac(), MacAddr::FAKE, 300);
        sim.inject(0, attacker, rts, BitRate::Mbps1);
        sim.run_until(50_000);
        assert_eq!(sim.station(victim).stats.cts_sent, 1);
        assert_eq!(sim.node(attacker).cts_received, 1);
    }

    #[test]
    fn out_of_range_victim_never_acks() {
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5_000.0, 0.0));
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(100_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 0);
        assert_eq!(sim.node(attacker).acks_received, 0);
    }

    #[test]
    fn fire_and_forget_does_not_retry() {
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let _victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (3_000.0, 0.0));
        sim.set_retries(attacker, false);
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(1_000_000);
        assert_eq!(sim.node(attacker).tx_count, 1, "exactly one attempt");
    }

    #[test]
    fn retries_happen_when_no_ack() {
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let _victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        // Victim is unreachable; attacker retries up to the limit.
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (3_000.0, 0.0));
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(5_000_000);
        assert!(
            sim.node(attacker).tx_count >= 8,
            "tx_count {}",
            sim.node(attacker).tx_count
        );
        assert_eq!(sim.node(attacker).tx_failures, 1);
    }

    #[test]
    fn deauthing_ap_scenario_matches_figure3() {
        let mut sim = Simulator::new(SimConfig::default(), 11);
        let mut ap_cfg = StationConfig::access_point(victim_mac(), "PrivateNet");
        ap_cfg.behavior = Behavior::deauthing_ap();
        ap_cfg.beacon_interval_us = None; // keep the trace clean
        let ap = sim.add_node(ap_cfg, (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_monitor(attacker, true);
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(10_000, attacker, fake, BitRate::Mbps1);
        sim.run_until(1_000_000);
        // The AP deauthed AND acked.
        assert_eq!(sim.station(ap).stats.acks_sent, 1);
        assert!(sim.station(ap).stats.deauths_sent >= 3);
        // Attacker's capture contains both deauths and its own ACK.
        let cap = &sim.node(attacker).capture;
        let deauths = cap
            .frames()
            .iter()
            .filter(|cf| cf.frame.info_column().starts_with("Deauthentication"))
            .count();
        assert!(deauths >= 3, "captured {deauths} deauths");
    }

    #[test]
    fn power_save_station_dozes_and_ledger_accounts_it() {
        let mut sim = Simulator::new(SimConfig::default(), 3);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let iot = sim.add_node(cfg, (0.0, 0.0));
        sim.run_until(1_000_000);
        let totals = sim.node(iot).ledger.snapshot(sim.now_us());
        // Awake 100 ms (idle timeout) plus ~9 beacon windows of 3 ms.
        let awake = totals.idle_us + totals.rx_us + totals.tx_us;
        assert!(
            (100_000..200_000).contains(&awake),
            "awake {awake} µs in 1 s"
        );
        assert!(totals.sleep_us > 800_000, "sleep {} µs", totals.sleep_us);
    }

    #[test]
    fn fake_frame_flood_keeps_radio_awake() {
        let mut sim = Simulator::new(SimConfig::default(), 3);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let iot = sim.add_node(cfg, (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_retries(attacker, false);
        // 50 pps for 1 s.
        for i in 0..50u64 {
            let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
            sim.inject(i * 20_000, attacker, fake, BitRate::Mbps1);
        }
        sim.run_until(1_000_000);
        let totals = sim.node(iot).ledger.snapshot(sim.now_us());
        assert!(
            totals.sleep_us < 120_000,
            "victim slept {} µs under 50 pps flood",
            totals.sleep_us
        );
        assert!(sim.station(iot).stats.acks_sent > 40);
    }

    #[test]
    fn drive_by_attacker_gets_acks_only_in_range() {
        // A wardriving car passes a house: out of range, in range, out
        // again. ACKs arrive only during the middle of the pass.
        let mut sim = Simulator::new(SimConfig::default(), 71);
        let _victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 10.0));
        // Car starts 400 m west, drives east at 20 m/s along the street.
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (-400.0, 0.0));
        sim.set_velocity(attacker, (20.0, 0.0));
        sim.set_retries(attacker, false);
        // Inject 4 fakes per second for 40 s of driving.
        for i in 0..160u64 {
            sim.inject(
                i * 250_000,
                attacker,
                builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
                BitRate::Mbps1,
            );
        }
        sim.run_until(40_000_000);

        let ack_times: Vec<u64> = sim
            .node(attacker)
            .capture
            .frames()
            .iter()
            .filter(|cf| matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { .. })))
            .map(|cf| cf.ts_us)
            .collect();
        assert!(!ack_times.is_empty(), "the pass never got in range");
        // Closest approach is at t = 20 s; the indoor detection radius is
        // ~100 m, so ACKs fall within roughly t ∈ [15 s, 25 s].
        let first = *ack_times.first().unwrap();
        let last = *ack_times.last().unwrap();
        assert!(first > 10_000_000, "first ACK at {first} — too early");
        assert!(last < 30_000_000, "last ACK at {last} — too late");
        // And the window straddles the closest approach.
        assert!(first < 20_000_000 && last > 20_000_000);
        // Far fewer than the 160 injected fakes got answered.
        assert!(
            (ack_times.len() as u64) < 100,
            "{} ACKs for a drive-by",
            ack_times.len()
        );
    }

    #[test]
    fn overheard_cts_sets_nav_and_defers_bystander() {
        let mut sim = Simulator::new(SimConfig::default(), 51);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let bystander_mac: MacAddr = "02:00:00:00:00:66".parse().unwrap();
        let bystander = sim.add_node(StationConfig::client(bystander_mac), (0.0, 5.0));
        sim.set_retries(bystander, false);
        sim.set_retries(attacker, false);

        // Attacker reserves the channel with a huge NAV; the victim's
        // automatic CTS relays the reservation.
        sim.inject(
            0,
            attacker,
            builder::fake_rts(victim_mac(), MacAddr::FAKE, 30_000),
            BitRate::Mbps1,
        );
        // The bystander tries to send shortly after the exchange.
        sim.inject(
            2_000,
            bystander,
            builder::fake_null_frame(victim_mac(), bystander_mac),
            BitRate::Mbps1,
        );
        sim.run_until(60_000);

        // The bystander's frame completed only after the NAV expired
        // (~30 ms), not at ~2.5 ms as it would have without NAV.
        let bystander_tx_end = sim
            .global_capture()
            .frames()
            .iter()
            .find(|cf| cf.frame.transmitter() == Some(bystander_mac))
            .map(|cf| cf.ts_us)
            .expect("bystander transmitted");
        assert!(
            bystander_tx_end > 30_000,
            "bystander transmitted at {bystander_tx_end} µs despite NAV"
        );
        assert!(sim.station(victim).stats.cts_sent >= 1);
    }

    #[test]
    fn arf_climbs_on_a_clean_short_link() {
        use polite_wifi_mac::rate_control::Arf;
        let peer_mac: MacAddr = "02:00:00:00:00:77".parse().unwrap();
        let mut sim = Simulator::new(SimConfig::default(), 41);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let peer = sim.add_node(StationConfig::client(peer_mac), (2.0, 0.0));
        sim.station_mut(victim).associate(peer_mac);
        sim.enable_rate_adaptation(peer, Arf::ofdm());
        assert_eq!(
            sim.node(peer).rate_ctrl.as_ref().unwrap().rate(),
            BitRate::Mbps6
        );
        for i in 0..120u64 {
            sim.inject(
                i * 3_000,
                peer,
                builder::protected_qos_data(victim_mac(), peer_mac, peer_mac, i as u16, 100),
                BitRate::Mbps6, // ignored: ARF picks the rate
            );
        }
        sim.run_until(2_000_000);
        // 2 m, clean channel: ARF should have climbed to the top.
        assert_eq!(
            sim.node(peer).rate_ctrl.as_ref().unwrap().rate(),
            BitRate::Mbps54,
            "acks_received {}",
            sim.node(peer).acks_received
        );
        assert!(sim.node(peer).acks_received >= 110);
    }

    #[test]
    fn arf_stays_low_on_a_marginal_link() {
        use polite_wifi_mac::rate_control::Arf;
        let peer_mac: MacAddr = "02:00:00:00:00:78".parse().unwrap();
        let mut sim = Simulator::new(SimConfig::default(), 43);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        // ~70 m indoors: 48/54 Mb/s frames essentially always fail,
        // mid-ladder rates mostly work.
        let peer = sim.add_node(StationConfig::client(peer_mac), (70.0, 0.0));
        sim.station_mut(victim).associate(peer_mac);
        sim.enable_rate_adaptation(peer, Arf::ofdm());
        for i in 0..150u64 {
            sim.inject(
                i * 10_000,
                peer,
                builder::protected_qos_data(victim_mac(), peer_mac, peer_mac, i as u16, 400),
                BitRate::Mbps6,
            );
        }
        sim.run_until(5_000_000);
        let final_rate = sim.node(peer).rate_ctrl.as_ref().unwrap().rate();
        assert!(
            final_rate.bps() <= BitRate::Mbps36.bps(),
            "marginal link settled at {final_rate:?}"
        );
    }

    #[test]
    fn fragmented_msdu_each_fragment_acked_one_delivery() {
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
        let mut sim = Simulator::new(SimConfig::default(), 31);
        let mut ap_cfg = StationConfig::access_point(ap_mac, "Net");
        ap_cfg.beacon_interval_us = None;
        let ap = sim.add_node(ap_cfg, (0.0, 0.0));
        let victim = sim.add_node(StationConfig::client(victim_mac()), (4.0, 0.0));
        sim.station_mut(victim).associate(ap_mac);
        sim.station_mut(ap).associate(victim_mac());

        let frame = builder::protected_qos_data(victim_mac(), ap_mac, ap_mac, 30, 1200);
        let n = sim.inject_fragmented(0, ap, frame, BitRate::Mbps24, 256);
        assert_eq!(n, 5); // 1200 bytes / 256 per fragment
        sim.run_until(2_000_000);

        // Every fragment individually acknowledged, one MSDU delivered.
        assert_eq!(sim.station(victim).stats.acks_sent, 5);
        assert_eq!(sim.station(victim).stats.delivered, 1);
        assert_eq!(sim.node(ap).acks_received, 5);
    }

    #[test]
    fn off_channel_victim_hears_nothing() {
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.channel = 11; // attacker stays on the default channel 6
        let victim = sim.add_node(cfg, (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        sim.inject(0, attacker, fake, BitRate::Mbps1);
        sim.run_until(1_000_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 0);
    }

    #[test]
    fn retuning_brings_victim_into_range() {
        use polite_wifi_phy::band::Band;
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.band = Band::Ghz5;
        cfg.channel = 36;
        let victim = sim.add_node(cfg, (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        // First fake on the wrong channel, then hop and try again.
        sim.inject(
            0,
            attacker,
            builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
            BitRate::Mbps1,
        );
        sim.run_until(500_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 0);
        sim.retune(attacker, Band::Ghz5, 36);
        assert_eq!(sim.tune_of(attacker), (Band::Ghz5, 36));
        sim.inject(
            500_000,
            attacker,
            builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
            BitRate::Mbps6,
        );
        sim.run_until(1_000_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 1);
    }

    #[test]
    fn co_channel_only_collisions() {
        // Two transmitters on different channels never collide with each
        // other even when both are close to the same receiver.
        let mut sim = Simulator::new(SimConfig::default(), 21);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let a1 = sim.add_node(StationConfig::client(MacAddr::FAKE), (4.0, 0.0));
        let mut cfg5 = StationConfig::client("aa:bb:bb:bb:bb:05".parse().unwrap());
        cfg5.band = polite_wifi_phy::band::Band::Ghz5;
        cfg5.channel = 36;
        let a5 = sim.add_node(cfg5, (0.0, 4.0));
        // Both transmit at overlapping times; victim (on 2.4/6) hears a1.
        for i in 0..20u64 {
            sim.inject(
                i * 10_000,
                a1,
                builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
                BitRate::Mbps1,
            );
            sim.inject(
                i * 10_000 + 50, // deliberately overlapping
                a5,
                builder::fake_null_frame(
                    "02:00:00:00:00:aa".parse().unwrap(),
                    "aa:bb:bb:bb:bb:05".parse().unwrap(),
                ),
                BitRate::Mbps6,
            );
        }
        sim.run_until(2_000_000);
        assert_eq!(
            sim.station(victim).stats.acks_sent,
            20,
            "cross-channel traffic must not corrupt co-channel frames"
        );
    }

    #[test]
    fn determinism_same_seed_same_capture() {
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig::default(), seed);
            let _v = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
            let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 0.0));
            for i in 0..20u64 {
                let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
                sim.inject(i * 10_000, a, fake, BitRate::Mbps1);
            }
            sim.run_until(500_000);
            sim.global_capture()
                .frames()
                .iter()
                .map(|cf| cf.ts_us)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn clean_fault_plan_changes_nothing() {
        use crate::faults::FaultProfile;
        let run = |install_clean: bool| {
            let mut sim = Simulator::new(SimConfig::default(), 7);
            let _v = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
            let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 0.0));
            sim.set_monitor(a, true);
            if install_clean {
                sim.install_faults(&FaultProfile::Clean.plan());
            }
            for i in 0..30u64 {
                let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
                sim.inject(i * 10_000, a, fake, BitRate::Mbps1);
            }
            sim.run_until(500_000);
            sim.global_capture()
                .frames()
                .iter()
                .map(|cf| cf.ts_us)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn burst_loss_degrades_the_exchange_and_is_counted() {
        use crate::faults::FaultProfile;
        let run = |profile: FaultProfile| {
            let mut sim = Simulator::new(SimConfig::default(), 7);
            let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
            let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 0.0));
            sim.set_monitor(a, true);
            sim.set_retries(a, false);
            sim.install_faults(&profile.plan());
            for i in 0..200u64 {
                let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
                sim.inject(i * 5_000, a, fake, BitRate::Mbps1);
            }
            sim.run_until(2_000_000);
            let dropped = sim.obs().counters.get("fault.medium.frames_dropped");
            (sim.station(victim).stats.acks_sent, dropped)
        };
        let (clean_acks, clean_dropped) = run(FaultProfile::Clean);
        let (faulty_acks, faulty_dropped) = run(FaultProfile::UrbanDrive);
        assert_eq!(clean_dropped, 0);
        assert!(faulty_dropped > 0, "no burst drops under urban-drive");
        assert!(
            faulty_acks < clean_acks,
            "urban-drive {faulty_acks} acks vs clean {clean_acks}"
        );
        // Degraded, not dead: the attack still works through the noise.
        assert!(faulty_acks > clean_acks / 4);
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        use crate::faults::FaultProfile;
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig::default(), seed);
            let _v = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
            let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 0.0));
            sim.set_monitor(a, true);
            sim.install_faults(&FaultProfile::UrbanDrive.plan());
            for i in 0..50u64 {
                let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
                sim.inject(i * 10_000, a, fake, BitRate::Mbps1);
            }
            sim.run_until(1_000_000);
            sim.global_capture()
                .frames()
                .iter()
                .map(|cf| cf.ts_us)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn flaky_dongle_stalls_and_reboots_the_monitor() {
        use crate::faults::FaultProfile;
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_monitor(a, true);
        sim.install_faults(&FaultProfile::FlakyDongle.plan());
        for i in 0..300u64 {
            let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
            sim.inject(i * 100_000, a, fake, BitRate::Mbps1);
        }
        sim.run_until(30_000_000);
        let obs = sim.obs();
        // 30 s at one stall per 2 s: ~14 stalls, ~2 reboots (every 5th).
        assert!(obs.counters.get("fault.device.stalls") >= 10);
        assert!(obs.counters.get("fault.device.reboots") >= 2);
        // The run degrades but completes.
        assert!(sim.station(victim).stats.acks_sent > 100);
    }

    #[test]
    fn stalls_do_not_leak_poll_chains() {
        use crate::faults::FaultProfile;
        // A beaconing monitor dongle under flaky-dongle stalls ~30
        // times in 60 s. A regression once re-queued the stalled poll
        // *and* restarted the chain on recovery, leaking one redundant
        // poll chain (and one pending event) per stall.
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let cfg = StationConfig::access_point("68:02:b8:00:00:07".parse().unwrap(), "Rig");
        let dongle = sim.add_node(cfg, (0.0, 0.0));
        sim.set_monitor(dongle, true);
        sim.install_faults(&FaultProfile::FlakyDongle.plan());
        sim.run_until(60_000_000);
        assert!(
            sim.queue_len() < 12,
            "event queue grew to {} — poll chains leak per stall",
            sim.queue_len()
        );
    }

    #[test]
    fn clock_drift_applies_only_to_the_dongle() {
        use crate::faults::FaultPlan;
        let plan = FaultPlan {
            clock_drift_ppm: 100_000.0, // exaggerated 10% for visibility
            ..FaultPlan::clean()
        };
        let (mut sim, victim, attacker) = two_node_sim();
        sim.install_faults(&plan);
        // The monitor dongle's timers stretch; the victim's do not.
        assert_eq!(sim.drifted(attacker, 1_000), 1_100);
        assert_eq!(sim.drifted(victim, 1_000), 1_000);

        // Without a monitor node, drift has no target and is inert.
        let mut bare = Simulator::new(SimConfig::default(), 7);
        let v = bare.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        bare.install_faults(&plan);
        assert_eq!(bare.drifted(v, 1_000), 1_000);
    }

    #[test]
    fn clock_drift_never_perturbs_victim_sifs_timing() {
        use crate::faults::FaultPlan;
        // The SIFS-timing fingerprint treats victim response latency as
        // a device signature, so a drifting dongle clock must leave the
        // exchange timeline byte-identical to a clean run.
        let run = |plan: Option<FaultPlan>| {
            let (mut sim, _victim, attacker) = two_node_sim();
            if let Some(p) = plan {
                sim.install_faults(&p);
            }
            let fake = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
            sim.inject(0, attacker, fake, BitRate::Mbps1);
            sim.run_until(50_000);
            sim.global_capture()
                .frames()
                .iter()
                .map(|cf| cf.ts_us)
                .collect::<Vec<_>>()
        };
        let clean = run(None);
        let drifted = run(Some(FaultPlan {
            clock_drift_ppm: 100_000.0,
            ..FaultPlan::clean()
        }));
        assert_eq!(clean, drifted);
        // The ACK still lands exactly SIFS + ACK airtime after the fake.
        assert_eq!(drifted[1] - drifted[0], 10 + 304);
    }

    #[test]
    fn stall_schedule_without_a_monitor_is_ignored() {
        use crate::faults::FaultProfile;
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let _v = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        sim.install_faults(&FaultProfile::FlakyDongle.plan());
        sim.run_until(10_000_000);
        assert_eq!(sim.obs().counters.get("fault.device.stalls"), 0);
    }

    #[test]
    fn reset_preserves_the_fault_plan() {
        use crate::faults::FaultProfile;
        let (mut sim, _victim, _attacker) = two_node_sim();
        sim.install_faults(&FaultProfile::UrbanDrive.plan());
        sim.reset(99);
        assert_eq!(sim.seed(), 99);
        assert_eq!(*sim.fault_plan(), FaultProfile::UrbanDrive.plan());
    }

    #[test]
    fn two_attackers_contend_without_livelock() {
        let mut sim = Simulator::new(SimConfig::default(), 13);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let a1 = sim.add_node(StationConfig::client(MacAddr::FAKE), (4.0, 0.0));
        let a2 = sim.add_node(
            StationConfig::client("aa:bb:bb:bb:bb:01".parse().unwrap()),
            (0.0, 4.0),
        );
        for i in 0..50u64 {
            sim.inject(
                i * 2_000,
                a1,
                builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
                BitRate::Mbps1,
            );
            sim.inject(
                i * 2_000 + 500,
                a2,
                builder::fake_null_frame(victim_mac(), "aa:bb:bb:bb:bb:01".parse().unwrap()),
                BitRate::Mbps1,
            );
        }
        sim.run_until(5_000_000);
        // Both attackers eventually delivered everything (retries cover
        // collisions) or dropped a few; the victim acked a lot.
        assert!(sim.station(victim).stats.acks_sent >= 90);
    }
}
