//! Hot per-node state in SoA layout, plus the spatial interference
//! cell grid.
//!
//! The simulator's inner loops (carrier sense, arrival fan-out,
//! collision scans) touch a handful of per-node fields — position,
//! velocity, tune, transmit power, the radio's timing guards and the
//! pending ACK wait — millions of times per second at city scale.
//! [`NodeArena`] keeps those in parallel `Vec`s indexed by
//! [`NodeId`] so the scans are cache-linear; everything cold (the MAC
//! state machine, queues, captures, ledgers) stays on
//! [`Node`](crate::node::Node).
//!
//! [`CellGrid`] shards space into uniform cells of the medium's
//! `max_range_m` keyed by `(tune, cell_x, cell_y)`: a transmission only
//! consults co-channel receivers in the 3×3 cell neighbourhood around
//! the transmitter, which covers every point within one cell edge of
//! it. Moving nodes live on a separate always-scanned list so the
//! static buckets never go stale.

use crate::medium::Tune;
use crate::node::{AckWait, NodeId};
use std::collections::HashMap;

/// Hot per-node state, structure-of-arrays.
#[derive(Debug, Default)]
pub struct NodeArena {
    /// Position at t = 0, in metres.
    position: Vec<(f64, f64)>,
    /// Velocity in metres/second (wardriving cars move; houses do not).
    velocity: Vec<(f64, f64)>,
    /// Transmit power in dBm.
    tx_power_dbm: Vec<f64>,
    /// Band/channel the radio is tuned to (mirrors the station config).
    tune: Vec<Tune>,
    /// The radio is mid-transmission until this time.
    pub tx_busy_until: Vec<u64>,
    /// Virtual carrier sense: the NAV set by overheard Duration fields.
    pub nav_until: Vec<u64>,
    /// Fault injection: frozen (deaf and mute) until this time.
    pub stalled_until: Vec<u64>,
    /// Outstanding ACK wait, if any.
    pub ack_wait: Vec<Option<AckWait>>,
    /// Earliest pending `Poll` event for this node, `u64::MAX` when none
    /// — the keyed modes' poll dedup (one timer chain per node instead
    /// of one per overheard frame).
    pub poll_at: Vec<u64>,
}

impl NodeArena {
    /// An empty arena.
    pub fn new() -> NodeArena {
        NodeArena::default()
    }

    /// Appends a node's hot state; its index is the new `NodeId`.
    pub fn push(&mut self, position: (f64, f64), tune: Tune) {
        self.position.push(position);
        self.velocity.push((0.0, 0.0));
        self.tx_power_dbm.push(20.0);
        self.tune.push(tune);
        self.tx_busy_until.push(0);
        self.nav_until.push(0);
        self.stalled_until.push(0);
        self.ack_wait.push(None);
        self.poll_at.push(u64::MAX);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// A node's t = 0 position in metres.
    pub fn base_position(&self, id: NodeId) -> (f64, f64) {
        self.position[id.0]
    }

    /// A node's velocity in m/s.
    pub fn velocity(&self, id: NodeId) -> (f64, f64) {
        self.velocity[id.0]
    }

    /// Sets a node's velocity in m/s.
    pub fn set_velocity(&mut self, id: NodeId, velocity: (f64, f64)) {
        self.velocity[id.0] = velocity;
    }

    /// A node's transmit power in dBm.
    pub fn tx_power_dbm(&self, id: NodeId) -> f64 {
        self.tx_power_dbm[id.0]
    }

    /// Sets a node's transmit power in dBm.
    pub fn set_tx_power_dbm(&mut self, id: NodeId, dbm: f64) {
        self.tx_power_dbm[id.0] = dbm;
    }

    /// The band/channel a node's radio is tuned to.
    pub fn tune(&self, id: NodeId) -> Tune {
        self.tune[id.0]
    }

    /// Records a retune (the caller keeps the station config in sync).
    pub fn set_tune(&mut self, id: NodeId, tune: Tune) {
        self.tune[id.0] = tune;
    }

    /// Position at `now_us`, following the (constant) velocity.
    pub fn position_at(&self, id: NodeId, now_us: u64) -> (f64, f64) {
        let t = now_us as f64 / 1e6;
        let p = self.position[id.0];
        let v = self.velocity[id.0];
        (p.0 + v.0 * t, p.1 + v.1 * t)
    }

    /// Euclidean distance between two nodes at `now_us`, clamped to the
    /// propagation model's 0.1 m near-field floor.
    pub fn distance_between(&self, a: NodeId, b: NodeId, now_us: u64) -> f64 {
        let pa = self.position_at(a, now_us);
        distance_from(pa, self.position_at(b, now_us))
    }

    /// Distance from an arbitrary point to a node at `now_us`, with the
    /// same 0.1 m clamp.
    pub fn distance_to_point(&self, point: (f64, f64), id: NodeId, now_us: u64) -> f64 {
        distance_from(point, self.position_at(id, now_us))
    }

    /// Squared distance from a point to a node at `now_us`, unclamped
    /// and `sqrt`-free — for hot scans that compare against a squared
    /// radius (the radius side applies the 0.1 m near-field floor).
    pub fn distance_sq_to_point(&self, point: (f64, f64), id: NodeId, now_us: u64) -> f64 {
        let p = self.position_at(id, now_us);
        let dx = point.0 - p.0;
        let dy = point.1 - p.1;
        dx * dx + dy * dy
    }
}

/// Clamped Euclidean distance between two points in metres.
fn distance_from(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).hypot(a.1 - b.1).max(0.1)
}

/// The spatial interference cell grid over static nodes, plus the
/// always-scanned list of moving nodes.
#[derive(Debug, Default)]
pub struct CellGrid {
    /// Cell edge length in metres (= the medium's `max_range_m`).
    cell_m: f64,
    /// Static nodes bucketed by (tune, cell) — lookups only, never
    /// iterated, so the `HashMap` costs nothing in determinism.
    cells: HashMap<(Tune, i64, i64), Vec<NodeId>>,
    /// Nodes with nonzero velocity: checked exactly on every query.
    mobile: Vec<NodeId>,
}

impl CellGrid {
    /// An empty grid with the given cell edge length.
    pub fn new(cell_m: f64) -> CellGrid {
        CellGrid {
            cell_m: cell_m.max(1.0),
            cells: HashMap::new(),
            mobile: Vec::new(),
        }
    }

    fn cell_of(&self, p: (f64, f64)) -> (i64, i64) {
        (
            (p.0 / self.cell_m).floor() as i64,
            (p.1 / self.cell_m).floor() as i64,
        )
    }

    /// Registers a node at its t = 0 position.
    pub fn insert(&mut self, id: NodeId, tune: Tune, position: (f64, f64), moving: bool) {
        if moving {
            self.mobile.push(id);
            return;
        }
        let (cx, cy) = self.cell_of(position);
        self.cells.entry((tune, cx, cy)).or_default().push(id);
    }

    /// Moves a static node between tune buckets on retune; moving nodes
    /// need nothing (their tune is checked per query).
    pub fn retune(&mut self, id: NodeId, old: Tune, new: Tune, position: (f64, f64)) {
        if old == new || self.mobile.contains(&id) {
            return;
        }
        let (cx, cy) = self.cell_of(position);
        if let Some(bucket) = self.cells.get_mut(&(old, cx, cy)) {
            bucket.retain(|&n| n != id);
        }
        let bucket = self.cells.entry((new, cx, cy)).or_default();
        let pos = bucket.partition_point(|&n| n < id);
        bucket.insert(pos, id);
    }

    /// Promotes a node to the mobile list when it starts moving (a
    /// moving node's cell changes continuously, so it is scanned
    /// exactly rather than bucketed).
    pub fn set_moving(&mut self, id: NodeId, tune: Tune, position: (f64, f64), moving: bool) {
        let on_mobile = self.mobile.contains(&id);
        if moving && !on_mobile {
            let (cx, cy) = self.cell_of(position);
            if let Some(bucket) = self.cells.get_mut(&(tune, cx, cy)) {
                bucket.retain(|&n| n != id);
            }
            self.mobile.push(id);
        } else if !moving && on_mobile {
            self.mobile.retain(|&n| n != id);
            let (cx, cy) = self.cell_of(position);
            let bucket = self.cells.entry((tune, cx, cy)).or_default();
            let pos = bucket.partition_point(|&n| n < id);
            bucket.insert(pos, id);
        }
    }

    /// Number of non-empty static cells (an occupancy figure for the
    /// progress heartbeat and city metrics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.values().filter(|v| !v.is_empty()).count()
    }

    /// Collects every co-tune node within `max_range` of `center` into
    /// `out`, ascending by `NodeId` — the same effectful order the
    /// all-pairs oracle enumerates receivers in, which is what keeps
    /// the two modes draw-for-draw identical. `exclude` (the
    /// transmitter) is skipped.
    #[allow(clippy::too_many_arguments)]
    pub fn candidates(
        &self,
        center: (f64, f64),
        tune: Tune,
        exclude: NodeId,
        max_range: f64,
        now_us: u64,
        arena: &NodeArena,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let (cx, cy) = self.cell_of(center);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = self.cells.get(&(tune, cx + dx, cy + dy)) else {
                    continue;
                };
                for &id in bucket {
                    if id != exclude && arena.distance_to_point(center, id, now_us) <= max_range {
                        out.push(id);
                    }
                }
            }
        }
        for &id in &self.mobile {
            if id != exclude
                && arena.tune(id) == tune
                && arena.distance_to_point(center, id, now_us) <= max_range
            {
                out.push(id);
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_phy::band::Band;

    const CH6: Tune = (Band::Ghz2, 6);
    const CH11: Tune = (Band::Ghz2, 11);

    fn arena_with(positions: &[(f64, f64)]) -> NodeArena {
        let mut a = NodeArena::new();
        for &p in positions {
            a.push(p, CH6);
        }
        a
    }

    #[test]
    fn distance_is_symmetric_and_clamped() {
        let a = arena_with(&[(0.0, 0.0), (3.0, 4.0)]);
        assert!((a.distance_between(NodeId(0), NodeId(1), 0) - 5.0).abs() < 1e-12);
        assert!((a.distance_between(NodeId(1), NodeId(0), 0) - 5.0).abs() < 1e-12);
        assert!(a.distance_between(NodeId(0), NodeId(0), 0) >= 0.1);
    }

    #[test]
    fn position_follows_velocity() {
        let mut a = arena_with(&[(10.0, 0.0)]);
        a.set_velocity(NodeId(0), (2.0, -1.0));
        let p = a.position_at(NodeId(0), 3_000_000);
        assert!((p.0 - 16.0).abs() < 1e-9);
        assert!((p.1 + 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_finds_exactly_the_in_range_co_tune_nodes() {
        let mut arena = NodeArena::new();
        let mut grid = CellGrid::new(100.0);
        // 0: transmitter at origin; 1: in range; 2: out of range;
        // 3: in range but other channel; 4: mobile, in range.
        let spots = [
            (0.0, 0.0),
            (40.0, 0.0),
            (250.0, 0.0),
            (10.0, 10.0),
            (60.0, 0.0),
        ];
        let tunes = [CH6, CH6, CH6, CH11, CH6];
        for (i, (&p, &t)) in spots.iter().zip(&tunes).enumerate() {
            arena.push(p, t);
            grid.insert(NodeId(i), t, p, i == 4);
        }
        let mut out = Vec::new();
        grid.candidates((0.0, 0.0), CH6, NodeId(0), 100.0, 0, &arena, &mut out);
        assert_eq!(out, vec![NodeId(1), NodeId(4)]);
        assert_eq!(grid.occupied_cells(), 3);
    }

    #[test]
    fn grid_neighbourhood_covers_cell_boundaries() {
        let mut arena = NodeArena::new();
        let mut grid = CellGrid::new(100.0);
        // Receiver just across a cell boundary from the transmitter,
        // and another a cell-diagonal away but still in range.
        let spots = [(99.0, 99.0), (101.0, 99.0), (160.0, 160.0)];
        for (i, &p) in spots.iter().enumerate() {
            arena.push(p, CH6);
            grid.insert(NodeId(i), CH6, p, false);
        }
        let mut out = Vec::new();
        grid.candidates((99.0, 99.0), CH6, NodeId(0), 100.0, 0, &arena, &mut out);
        assert_eq!(out, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn retune_and_set_moving_keep_buckets_consistent() {
        let mut arena = NodeArena::new();
        let mut grid = CellGrid::new(100.0);
        arena.push((5.0, 5.0), CH6);
        arena.push((6.0, 5.0), CH6);
        grid.insert(NodeId(0), CH6, (5.0, 5.0), false);
        grid.insert(NodeId(1), CH6, (6.0, 5.0), false);

        let mut out = Vec::new();
        grid.retune(NodeId(1), CH6, CH11, (6.0, 5.0));
        arena.set_tune(NodeId(1), CH11);
        grid.candidates((5.0, 5.0), CH6, NodeId(0), 100.0, 0, &arena, &mut out);
        assert!(out.is_empty());
        grid.candidates((6.0, 5.0), CH11, NodeId(1), 100.0, 0, &arena, &mut out);
        assert!(out.is_empty(), "node 0 stayed on CH6");

        grid.set_moving(NodeId(1), CH11, (6.0, 5.0), true);
        arena.set_velocity(NodeId(1), (1.0, 0.0));
        grid.candidates((5.0, 5.0), CH11, NodeId(0), 100.0, 0, &arena, &mut out);
        assert_eq!(out, vec![NodeId(1)]);
    }
}
