//! Cooperative cancellation for trial running.
//!
//! A [`CancelToken`] is a shared flag a supervisor (the `polite-wifi-d`
//! daemon's per-job deadline watcher) can raise while a run is in
//! flight. The harness checks it at trial boundaries: when the token is
//! raised, [`check_cancelled`] panics with a *deterministic* message, so
//! the existing `catch_unwind` degradation path turns the cancellation
//! into an ordinary [`TrialFailure`](crate::TrialFailure) record —
//! in-progress work stops at the next checkpoint, the run's envelope is
//! still written, and no worker thread is orphaned.
//!
//! The current token is thread-local. [`Runner`](crate::Runner) captures
//! the spawning thread's token and re-installs it inside every scoped
//! worker, so cancellation reaches trials regardless of which worker
//! picks them up.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The deterministic panic message a cancelled trial degrades with.
/// Deterministic so envelopes containing cancellation failures stay
/// byte-identical across worker counts, like every other trial panic.
pub const CANCELLED_DETAIL: &str = "trial cancelled: job deadline exceeded";

/// A shared cancellation flag. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-raised token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs (or clears, with `None`) this thread's cancellation token.
/// Returns the previously installed token so scoped callers can restore
/// it.
pub fn install_token(token: Option<CancelToken>) -> Option<CancelToken> {
    CURRENT.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), token))
}

/// The token installed on this thread, if any.
pub fn current_token() -> Option<CancelToken> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Trial-boundary checkpoint: panics with [`CANCELLED_DETAIL`] when this
/// thread's token has been raised. A no-op without a token, so batch
/// binaries pay one thread-local read per trial.
pub fn check_cancelled() {
    if current_token().is_some_and(|t| t.is_cancelled()) {
        panic!("{CANCELLED_DETAIL}");
    }
}

/// True when a [`TrialFailure`](crate::TrialFailure) detail records a
/// cancellation rather than a genuine trial crash.
pub fn is_cancellation(detail: &str) -> bool {
    detail == CANCELLED_DETAIL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_a_noop_without_a_token() {
        let _ = install_token(None);
        check_cancelled();
    }

    #[test]
    fn raised_token_panics_with_the_deterministic_detail() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let prev = install_token(Some(token.clone()));
        check_cancelled(); // not yet raised
        token.cancel();
        assert!(token.is_cancelled());
        let err = std::panic::catch_unwind(check_cancelled).unwrap_err();
        let detail = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(is_cancellation(&detail), "{detail:?}");
        let _ = install_token(prev);
    }

    #[test]
    fn cancellation_reaches_scoped_runner_workers() {
        use crate::runner::Runner;
        let token = CancelToken::new();
        token.cancel();
        let prev = install_token(Some(token));
        // Every trial checkpoint fires, so all 8 trials degrade into
        // failures — on 4 workers, proving the token crossed threads.
        let (results, failures) = Runner::new(4).run_trials_checked(7, 8, |ctx| {
            check_cancelled();
            ctx.index
        });
        assert!(results.iter().all(Option::is_none));
        assert_eq!(failures.len(), 8);
        assert!(failures.iter().all(|f| is_cancellation(&f.detail)));
        let _ = install_token(prev);
    }
}
