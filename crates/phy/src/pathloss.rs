//! Large-scale propagation: free-space and log-distance path loss.

use serde::{Deserialize, Serialize};

/// A large-scale path-loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// Free-space (Friis) loss at `freq_mhz`.
    FreeSpace {
        /// Carrier frequency in MHz.
        freq_mhz: f64,
    },
    /// Log-distance: free-space up to `d0_m`, then `10·n·log10(d/d0)` dB
    /// beyond. `n ≈ 3–4` models indoor walls — the paper's keystroke
    /// attacker sits in *a different room*.
    LogDistance {
        /// Carrier frequency in MHz.
        freq_mhz: f64,
        /// Reference distance in metres.
        d0_m: f64,
        /// Path-loss exponent.
        exponent: f64,
    },
}

impl PathLoss {
    /// Free-space at 2.437 GHz (channel 6), the default experiment setup.
    pub fn free_space_2ghz4() -> PathLoss {
        PathLoss::FreeSpace { freq_mhz: 2437.0 }
    }

    /// Indoor log-distance at 2.437 GHz with exponent 3.0.
    pub fn indoor_2ghz4() -> PathLoss {
        PathLoss::LogDistance {
            freq_mhz: 2437.0,
            d0_m: 1.0,
            exponent: 3.0,
        }
    }

    /// Path loss in dB at `distance_m` (clamped below at 0.1 m).
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        match *self {
            PathLoss::FreeSpace { freq_mhz } => fspl_db(d, freq_mhz),
            PathLoss::LogDistance {
                freq_mhz,
                d0_m,
                exponent,
            } => {
                if d <= d0_m {
                    fspl_db(d, freq_mhz)
                } else {
                    fspl_db(d0_m, freq_mhz) + 10.0 * exponent * (d / d0_m).log10()
                }
            }
        }
    }

    /// Received power in dBm given a transmit power.
    pub fn rx_power_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.loss_db(distance_m)
    }

    /// Inverse of [`loss_db`](Self::loss_db): the distance at which the
    /// loss reaches `loss_db` (at least 0.1 m, mirroring the forward
    /// clamp). Monotonicity makes `d <= distance_for_loss_db(L)`
    /// equivalent to `loss_db(d) <= L` — which is what lets hot scans
    /// compare squared distances against one precomputed radius instead
    /// of running a `log10` per candidate.
    pub fn distance_for_loss_db(&self, loss_db: f64) -> f64 {
        let fspl_inverse = |loss: f64, freq_mhz: f64| {
            1000.0 * 10f64.powf((loss - 20.0 * freq_mhz.log10() - 32.44) / 20.0)
        };
        let d = match *self {
            PathLoss::FreeSpace { freq_mhz } => fspl_inverse(loss_db, freq_mhz),
            PathLoss::LogDistance {
                freq_mhz,
                d0_m,
                exponent,
            } => {
                let at_d0 = fspl_db(d0_m, freq_mhz);
                if loss_db <= at_d0 {
                    fspl_inverse(loss_db, freq_mhz).min(d0_m)
                } else {
                    d0_m * 10f64.powf((loss_db - at_d0) / (10.0 * exponent))
                }
            }
        };
        d.max(0.1)
    }
}

/// Friis free-space path loss in dB.
fn fspl_db(distance_m: f64, freq_mhz: f64) -> f64 {
    // FSPL(dB) = 20 log10(d_km) + 20 log10(f_MHz) + 32.44
    20.0 * (distance_m / 1000.0).log10() + 20.0 * freq_mhz.log10() + 32.44
}

/// Thermal noise floor in dBm for a bandwidth in MHz (kTB at 290 K) plus a
/// typical receiver noise figure.
pub fn noise_floor_dbm(bandwidth_mhz: f64, noise_figure_db: f64) -> f64 {
    -174.0 + 10.0 * (bandwidth_mhz * 1e6).log10() + noise_figure_db
}

/// SNR in dB at the receiver.
pub fn snr_db(tx_power_dbm: f64, model: &PathLoss, distance_m: f64, noise_dbm: f64) -> f64 {
    model.rx_power_dbm(tx_power_dbm, distance_m) - noise_dbm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_at_one_metre_2ghz4_is_about_40db() {
        let loss = PathLoss::free_space_2ghz4().loss_db(1.0);
        assert!((39.0..41.5).contains(&loss), "loss {loss}");
    }

    #[test]
    fn fspl_doubles_distance_adds_6db() {
        let m = PathLoss::free_space_2ghz4();
        let d1 = m.loss_db(5.0);
        let d2 = m.loss_db(10.0);
        assert!((d2 - d1 - 6.02).abs() < 0.05);
    }

    #[test]
    fn log_distance_matches_fspl_at_reference() {
        let fs = PathLoss::free_space_2ghz4();
        let ld = PathLoss::indoor_2ghz4();
        assert!((fs.loss_db(1.0) - ld.loss_db(1.0)).abs() < 1e-9);
    }

    #[test]
    fn indoor_exponent_is_steeper() {
        let fs = PathLoss::free_space_2ghz4();
        let ld = PathLoss::indoor_2ghz4();
        assert!(ld.loss_db(20.0) > fs.loss_db(20.0) + 9.0);
    }

    #[test]
    fn noise_floor_20mhz() {
        // kTB for 20 MHz ≈ -101 dBm; +7 dB NF ≈ -94 dBm.
        let nf = noise_floor_dbm(20.0, 7.0);
        assert!((-95.0..-93.0).contains(&nf), "noise floor {nf}");
    }

    #[test]
    fn snr_at_typical_indoor_range_supports_wifi() {
        // 20 dBm AP at 10 m indoors over 20 MHz should be comfortably
        // above the 2 dB minimum for 1 Mb/s.
        let noise = noise_floor_dbm(20.0, 7.0);
        let snr = snr_db(20.0, &PathLoss::indoor_2ghz4(), 10.0, noise);
        assert!(snr > 20.0, "snr {snr}");
    }

    #[test]
    fn distance_for_loss_round_trips() {
        for model in [PathLoss::free_space_2ghz4(), PathLoss::indoor_2ghz4()] {
            for d in [0.5, 1.0, 5.0, 50.0, 115.0, 400.0] {
                let loss = model.loss_db(d);
                let back = model.distance_for_loss_db(loss);
                assert!(
                    (back - d).abs() / d < 1e-9,
                    "{model:?}: {d} m -> {loss} dB -> {back} m"
                );
            }
            // Below the forward clamp, the inverse clamps too.
            assert_eq!(model.distance_for_loss_db(0.0), 0.1);
        }
    }

    #[test]
    fn tiny_distances_clamped() {
        let m = PathLoss::free_space_2ghz4();
        assert_eq!(m.loss_db(0.0), m.loss_db(0.1));
        assert!(m.loss_db(0.0).is_finite());
    }
}
