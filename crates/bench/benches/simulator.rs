//! Criterion benchmarks for the discrete-event simulator: how many
//! fake→ACK exchanges per wall-clock second the substrate sustains, and
//! the collision-model ablation from DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::fading::Fading;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{MediumConfig, SimConfig, Simulator};

fn victim() -> MacAddr {
    "f2:6e:0b:11:22:33".parse().unwrap()
}

fn exchange_sim(config: SimConfig, n_frames: u64) -> Simulator {
    let mut sim = Simulator::new(config, 7);
    let _v = sim.add_node(StationConfig::client(victim()), (0.0, 0.0));
    let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_retries(a, false);
    for i in 0..n_frames {
        sim.inject(
            i * 1_000,
            a,
            builder::fake_null_frame(victim(), MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim
}

fn bench_exchanges(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("1000_fake_ack_exchanges", |b| {
        b.iter_batched(
            || exchange_sim(SimConfig::default(), 1000),
            |mut sim| sim.run_until(2_000_000),
            BatchSize::SmallInput,
        )
    });

    // Ablation: a no-fading medium (cheaper link draws) vs the default
    // Rician medium — documents what the channel realism costs.
    let mut no_fading = SimConfig::default();
    no_fading.medium.fading = Fading::None;
    g.bench_function("1000_exchanges_no_fading", |b| {
        b.iter_batched(
            || exchange_sim(no_fading, 1000),
            |mut sim| sim.run_until(2_000_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dense_cell(c: &mut Criterion) {
    // 40 stations + 1 beaconing AP: the wardriving segment workload.
    let mut g = c.benchmark_group("simulator_dense");
    g.sample_size(10);
    g.bench_function("segment_40_nodes_1s", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(SimConfig::default(), 9);
                let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
                sim.add_node(StationConfig::access_point(ap_mac, "Cell"), (0.0, 0.0));
                for i in 0..40u8 {
                    let mac = MacAddr::new([0x02, 0, 0, 0, 1, i]);
                    let angle = i as f64 * 0.157;
                    sim.add_node(
                        StationConfig::client(mac),
                        (15.0 * angle.cos(), 15.0 * angle.sin()),
                    );
                }
                sim
            },
            |mut sim| sim.run_until(1_000_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_medium_ablation(c: &mut Criterion) {
    use polite_wifi_sim::medium::{Medium, Transmission};
    use polite_wifi_sim::NodeId;
    let mut g = c.benchmark_group("medium");
    g.throughput(Throughput::Elements(1));
    const CH6: polite_wifi_sim::medium::Tune = (polite_wifi_phy::band::Band::Ghz2, 6);
    let mut m = Medium::new(MediumConfig::default(), 3);
    m.begin_transmission(Transmission {
        from: NodeId(9),
        start_us: 0,
        end_us: 1_000_000_000,
        tx_power_dbm: 20.0,
        tune: CH6,
    });
    g.bench_function("evaluate_rx_with_interferer", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 500;
            m.evaluate_rx(
                NodeId(0),
                NodeId(1),
                t,
                t + 400,
                20.0,
                8.0,
                28,
                BitRate::Mbps1,
                CH6,
                |_| 40.0,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_exchanges,
    bench_dense_cell,
    bench_medium_ablation
);
criterion_main!(benches);
