//! Occupancy detection — the other open question of §4.1 ("can an
//! attacker detect occupancy?").
//!
//! A room with people in it perturbs the channel intermittently even
//! when nobody touches the device. The detector slices the CSI series
//! into intervals, measures what fraction of windows inside each
//! interval show motion, and declares the interval occupied when that
//! fraction crosses a threshold.

use crate::features::sliding_features;
use serde::{Deserialize, Serialize};

/// Verdict for one time interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyInterval {
    /// First sample index of the interval.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Fraction of windows with motion activity.
    pub activity_fraction: f64,
    /// The verdict.
    pub occupied: bool,
}

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyConfig {
    /// Samples per verdict interval.
    pub interval_len: usize,
    /// Sliding window length inside an interval.
    pub window_len: usize,
    /// Hop between windows.
    pub hop: usize,
    /// A window counts as "active" when its std exceeds this multiple of
    /// the series-wide noise floor.
    pub active_factor: f64,
    /// Interval is "occupied" when at least this fraction of its windows
    /// are active.
    pub occupied_fraction: f64,
}

impl Default for OccupancyConfig {
    fn default() -> Self {
        OccupancyConfig {
            interval_len: 600, // 4 s at 150 Hz
            window_len: 30,
            hop: 15,
            active_factor: 3.0,
            occupied_fraction: 0.2,
        }
    }
}

/// Runs occupancy detection over a CSI amplitude series.
pub fn detect_occupancy(series: &[f64], config: &OccupancyConfig) -> Vec<OccupancyInterval> {
    if series.len() < config.interval_len {
        return Vec::new();
    }
    // Noise floor from the whole series: median window std.
    let all = sliding_features(series, config.window_len, config.hop);
    if all.is_empty() {
        return Vec::new();
    }
    let mut stds: Vec<f64> = all.iter().map(|(_, f)| f.std_dev).collect();
    stds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = stds[stds.len() / 2].max(1e-9);

    let mut out = Vec::new();
    let mut start = 0;
    while start + config.interval_len <= series.len() {
        let end = start + config.interval_len;
        let windows = sliding_features(&series[start..end], config.window_len, config.hop);
        let active = windows
            .iter()
            .filter(|(_, f)| f.std_dev > config.active_factor * floor)
            .count();
        let activity_fraction = if windows.is_empty() {
            0.0
        } else {
            active as f64 / windows.len() as f64
        };
        out.push(OccupancyInterval {
            start,
            end,
            activity_fraction,
            occupied: activity_fraction >= config.occupied_fraction,
        });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize) -> f64 {
        ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5
    }

    /// Quiet baseline with intermittent motion in `busy` sample ranges.
    fn series(len: usize, busy: &[std::ops::Range<usize>]) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut v = 5.0 + 0.02 * noise(i);
                // Occupants move intermittently: bursts of ~45 samples
                // every ~150 inside busy ranges.
                if busy.iter().any(|r| r.contains(&i)) && (i / 45) % 3 == 0 {
                    v += 1.2 * noise(i * 7 + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn empty_room_reads_vacant() {
        let s = series(3000, &[]);
        let intervals = detect_occupancy(&s, &OccupancyConfig::default());
        assert_eq!(intervals.len(), 5);
        assert!(intervals.iter().all(|i| !i.occupied), "{intervals:?}");
    }

    #[test]
    fn occupied_stretch_detected() {
        // Occupied during samples 600..1800 (intervals 1 and 2).
        let s = series(3000, std::slice::from_ref(&(600..1800)));
        let intervals = detect_occupancy(&s, &OccupancyConfig::default());
        assert!(!intervals[0].occupied);
        assert!(intervals[1].occupied, "{:?}", intervals[1]);
        assert!(intervals[2].occupied, "{:?}", intervals[2]);
        assert!(!intervals[4].occupied);
    }

    #[test]
    fn activity_fraction_reflects_duty() {
        let s = series(1200, std::slice::from_ref(&(600..1200)));
        let intervals = detect_occupancy(&s, &OccupancyConfig::default());
        assert!(intervals[1].activity_fraction > intervals[0].activity_fraction);
    }

    #[test]
    fn short_series_yields_nothing() {
        let s = series(100, &[]);
        assert!(detect_occupancy(&s, &OccupancyConfig::default()).is_empty());
    }
}
