//! The SIFS-vs-decryption feasibility arithmetic (paper Section 2.2).
//!
//! To refuse an ACK for an invalid frame, a receiver would have to decrypt
//! and verify the frame *within SIFS*. Prior measurements put WPA2 frame
//! processing at 200–700 µs — one to two orders of magnitude over budget.
//! This module encodes that argument so the `exp_sifs_timing` harness can
//! print it, and models a hypothetical "validate-then-ACK" MAC to quantify
//! how badly it violates the standard.

use crate::band::Band;
use serde::{Deserialize, Serialize};

/// Lower bound on WPA2 frame decode/verify latency (µs), per the studies
/// the paper cites [15, 17, 22].
pub const WPA2_DECODE_MIN_US: u64 = 200;
/// Upper bound on WPA2 frame decode/verify latency (µs).
pub const WPA2_DECODE_MAX_US: u64 = 700;

/// A receiver design, for the ablation the paper argues about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckPolicy {
    /// Real 802.11: check FCS + receiver address, ACK at SIFS. Polite.
    AckBeforeValidate,
    /// Hypothetical: decrypt and validate first, then ACK. Blows the SIFS
    /// deadline by construction.
    ValidateThenAck {
        /// Assumed decode latency in microseconds.
        decode_us: u64,
    },
}

/// The verdict on whether a policy can meet the standard's deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SifsFeasibility {
    /// The band analysed.
    pub band: Band,
    /// The deadline (SIFS) in µs.
    pub deadline_us: u64,
    /// When the ACK would actually be ready, in µs after frame end.
    pub ack_ready_us: u64,
    /// How many times over budget (1.0 = exactly on time).
    pub overrun_factor: f64,
    /// Whether the transmitter would have already retransmitted (i.e. the
    /// ACK is useless even if eventually sent).
    pub misses_deadline: bool,
}

/// Analyses whether `policy` can produce a standard-compliant ACK on
/// `band`. PHY/MAC header processing for the compliant path is folded into
/// the SIFS itself, as the standard intends.
pub fn analyze(band: Band, policy: AckPolicy) -> SifsFeasibility {
    let deadline_us = band.sifs_us() as u64;
    let ack_ready_us = match policy {
        AckPolicy::AckBeforeValidate => deadline_us,
        AckPolicy::ValidateThenAck { decode_us } => decode_us,
    };
    SifsFeasibility {
        band,
        deadline_us,
        ack_ready_us,
        overrun_factor: ack_ready_us as f64 / deadline_us as f64,
        misses_deadline: ack_ready_us > deadline_us,
    }
}

/// Sweeps the cited WPA2 decode-latency range and returns the feasibility
/// verdicts for a validate-then-ACK MAC, plus the compliant baseline.
pub fn sweep_validate_then_ack(band: Band) -> Vec<SifsFeasibility> {
    let mut out = vec![analyze(band, AckPolicy::AckBeforeValidate)];
    let mut decode = WPA2_DECODE_MIN_US;
    while decode <= WPA2_DECODE_MAX_US {
        out.push(analyze(
            band,
            AckPolicy::ValidateThenAck { decode_us: decode },
        ));
        decode += 100;
    }
    out
}

/// How much faster WPA2 decoding would need to become for validation to
/// fit inside SIFS, at the *optimistic* end of the cited range.
pub fn required_speedup(band: Band) -> f64 {
    WPA2_DECODE_MIN_US as f64 / band.sifs_us() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_policy_meets_deadline() {
        let v = analyze(Band::Ghz2, AckPolicy::AckBeforeValidate);
        assert!(!v.misses_deadline);
        assert!((v.overrun_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_then_ack_always_misses() {
        for band in [Band::Ghz2, Band::Ghz5] {
            for decode in [WPA2_DECODE_MIN_US, 450, WPA2_DECODE_MAX_US] {
                let v = analyze(band, AckPolicy::ValidateThenAck { decode_us: decode });
                assert!(v.misses_deadline, "{band:?} decode={decode}");
            }
        }
    }

    #[test]
    fn overrun_is_orders_of_magnitude() {
        // Paper: "orders of magnitude longer than SIFS".
        let v = analyze(
            Band::Ghz2,
            AckPolicy::ValidateThenAck {
                decode_us: WPA2_DECODE_MIN_US,
            },
        );
        assert!(v.overrun_factor >= 20.0);
        let v = analyze(
            Band::Ghz2,
            AckPolicy::ValidateThenAck {
                decode_us: WPA2_DECODE_MAX_US,
            },
        );
        assert!(v.overrun_factor >= 70.0);
    }

    #[test]
    fn required_speedup_is_20x_or_worse() {
        assert!(required_speedup(Band::Ghz2) >= 20.0);
        assert!(required_speedup(Band::Ghz5) >= 12.0);
    }

    #[test]
    fn sweep_includes_baseline_and_range() {
        let sweep = sweep_validate_then_ack(Band::Ghz2);
        assert_eq!(sweep.len(), 1 + 6); // baseline + 200..=700 step 100
        assert!(!sweep[0].misses_deadline);
        assert!(sweep[1..].iter().all(|v| v.misses_deadline));
    }
}
