//! X2 — extension: RSSI ranging to an unassociated victim (the Wi-Peep
//! direction). The attacker elicits as many ACKs as it wants, so the
//! estimate sharpens with sample count — quantified here. The per-distance
//! measurements are independent, so they fan out over the worker pool.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::{estimate_range, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_frame::MacAddr;
use polite_wifi_harness::{Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_phy::rate::BitRate;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct RangeRow {
    true_distance_m: f64,
    samples: usize,
    median_rssi_dbm: f64,
    estimated_m: f64,
    relative_error: f64,
}

fn measure(
    true_distance: f64,
    rate_pps: u32,
    duration_us: u64,
    seed: u64,
    faults: polite_wifi_sim::FaultProfile,
) -> (RangeRow, polite_wifi_obs::Obs) {
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sb = ScenarioBuilder::new()
        .duration_us(duration_us + 500_000)
        .faults(faults);
    let _v = sb.client(victim_mac, (true_distance, 0.0));
    let attacker = sb.monitor(MacAddr::FAKE, (0.0, 0.0));
    let mut scenario = sb.build_with_seed(seed);
    let plan = InjectionPlan {
        victim: victim_mac,
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::NullData,
        rate_pps,
        start_us: 0,
        duration_us,
        bitrate: BitRate::Mbps1,
    };
    FakeFrameInjector::new(attacker).execute(&mut scenario.sim, &plan);
    let sim = scenario.run();
    let model = sim.path_loss();
    let est = estimate_range(&sim.node(attacker).capture, MacAddr::FAKE, 20.0, &model)
        .expect("ACKs collected");
    let row = RangeRow {
        true_distance_m: true_distance,
        samples: est.samples,
        median_rssi_dbm: est.median_rssi_dbm,
        estimated_m: est.distance_m,
        relative_error: (est.distance_m - true_distance).abs() / true_distance,
    };
    (row, scenario.sim.take_obs())
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let seed = exp.seed();
    let faults = exp.args().faults;
    let distances = [2.0f64, 5.0, 10.0, 20.0];
    let results = exp.runner().run_indexed(distances.len(), |i| {
        measure(distances[i], 200, 3_000_000, seed + i as u64, faults)
    });
    let mut rows = Vec::with_capacity(results.len());
    for (row, obs) in results {
        exp.absorb_obs(obs);
        rows.push(row);
    }
    println!(
        "\n{:>8} {:>8} {:>10} {:>10} {:>8}",
        "true m", "samples", "RSSI dBm", "est. m", "err %"
    );
    for row in &rows {
        println!(
            "{:>8.1} {:>8} {:>10.1} {:>10.2} {:>7.1}%",
            row.true_distance_m,
            row.samples,
            row.median_rssi_dbm,
            row.estimated_m,
            row.relative_error * 100.0
        );
        exp.metrics.record("relative_error", row.relative_error);
    }

    // More elicited samples → tighter estimate (the Polite WiFi lever).
    let (short, short_obs) = measure(10.0, 50, 400_000, seed + 8, faults); // ~20 samples
    let (long, long_obs) = measure(10.0, 200, 10_000_000, seed + 8, faults); // ~2000 samples
    exp.absorb_obs(short_obs);
    exp.absorb_obs(long_obs);
    println!();
    compare(
        "estimate sharpens with elicited sample count",
        "-",
        &format!(
            "{:.0}% err @ {} samples vs {:.0}% err @ {} samples",
            short.relative_error * 100.0,
            short.samples,
            long.relative_error * 100.0,
            long.samples
        ),
    );
    compare(
        "ordering preserved across distances",
        "-",
        if rows.windows(2).all(|w| w[1].estimated_m > w[0].estimated_m) {
            "yes"
        } else {
            "no"
        },
    );

    if faults.is_clean() {
        assert!(rows.iter().all(|r| r.relative_error < 0.45), "{rows:?}");
        assert!(rows.windows(2).all(|w| w[1].estimated_m > w[0].estimated_m));
    }
    exp.finish_with_status(&spec.slug, &rows)
}
