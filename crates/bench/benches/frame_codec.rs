//! Criterion micro-benchmarks for the frame and radiotap codecs — the
//! per-packet hot path of any real injector/sniffer built on this stack.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use polite_wifi_frame::{builder, fcs, Frame, MacAddr};
use polite_wifi_radiotap::{ChannelInfo, Radiotap};

fn victim() -> MacAddr {
    "f2:6e:0b:11:22:33".parse().unwrap()
}

fn bench_frame_codec(c: &mut Criterion) {
    let fake = builder::fake_null_frame(victim(), MacAddr::FAKE);
    let fake_bytes = fake.encode(true);
    let beacon = builder::beacon(victim(), "PrivateNet", 6, 7, 123_456, true);
    let beacon_bytes = beacon.encode(true);

    let mut g = c.benchmark_group("frame_codec");
    g.throughput(Throughput::Bytes(fake_bytes.len() as u64));
    g.bench_function("encode_fake_null", |b| {
        b.iter(|| black_box(&fake).encode(true))
    });
    g.bench_function("parse_fake_null", |b| {
        b.iter(|| Frame::parse(black_box(&fake_bytes), true).unwrap())
    });
    g.throughput(Throughput::Bytes(beacon_bytes.len() as u64));
    g.bench_function("encode_beacon", |b| {
        b.iter(|| black_box(&beacon).encode(true))
    });
    g.bench_function("parse_beacon", |b| {
        b.iter(|| Frame::parse(black_box(&beacon_bytes), true).unwrap())
    });
    g.finish();
}

fn bench_fcs(c: &mut Criterion) {
    let payload_1500 = vec![0xa5u8; 1500];
    let payload_28 = vec![0xa5u8; 28];
    let mut g = c.benchmark_group("fcs_crc32");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("crc32_1500B", |b| {
        b.iter(|| fcs::crc32(black_box(&payload_1500)))
    });
    g.throughput(Throughput::Bytes(28));
    g.bench_function("crc32_28B", |b| {
        b.iter(|| fcs::crc32(black_box(&payload_28)))
    });
    g.finish();
}

fn bench_radiotap(c: &mut Criterion) {
    let rt = Radiotap::capture(1_000_000, 2, ChannelInfo::ghz2(6), -48, -91);
    let bytes = rt.encode();
    let mut g = c.benchmark_group("radiotap");
    g.bench_function("encode_capture_header", |b| {
        b.iter(|| black_box(&rt).encode())
    });
    g.bench_function("parse_capture_header", |b| {
        b.iter(|| Radiotap::parse(black_box(&bytes)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_frame_codec, bench_fcs, bench_radiotap);
criterion_main!(benches);
