//! A pocket-sized wardriving survey (§3): drive past a neighbourhood of
//! the Table 2 city and verify that every discovered device ACKs fakes.
//!
//! The full 5,328-device survey lives in the bench harness
//! (`cargo run --release -p polite-wifi-bench --bin exp_table2_wardrive`);
//! this example scans a 120-device slice so it finishes in seconds.
//!
//! ```sh
//! cargo run --release --example wardriving
//! ```

use polite_wifi::core::WardriveScanner;
use polite_wifi::devices::{CityPopulation, DeviceSpec};

fn main() {
    let full = CityPopulation::table2(11);
    // A representative slice: every 44th device, preserving variety.
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(44).take(120).cloned().collect();
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };

    println!(
        "Scanning {} devices ({} clients, {} APs)...\n",
        slice.devices.len(),
        slice.clients().count(),
        slice.aps().count()
    );

    let scanner = WardriveScanner::default();
    let report = scanner.run(&slice);

    println!(
        "discovered: {}   verified (sent an ACK to our fake frames): {}",
        report.discovered, report.verified
    );
    println!(
        "survey time: {:.1} simulated seconds\n",
        report.survey_time_us as f64 / 1e6
    );

    println!(
        "{:<16} {:>5}    {:<16} {:>5}",
        "Client vendor", "#", "AP vendor", "#"
    );
    let rows = report
        .client_counts
        .len()
        .max(report.ap_counts.len())
        .min(12);
    for i in 0..rows {
        let c = report
            .client_counts
            .get(i)
            .map(|(v, n)| format!("{v:<16} {n:>5}"))
            .unwrap_or_else(|| " ".repeat(22));
        let a = report
            .ap_counts
            .get(i)
            .map(|(v, n)| format!("{v:<16} {n:>5}"))
            .unwrap_or_default();
        println!("{c}    {a}");
    }

    assert_eq!(
        report.verified, report.discovered,
        "every discovered device must be polite"
    );
    println!(
        "\nAll {} discovered devices responded. Polite WiFi everywhere.",
        report.verified
    );
}
