//! `polite-wifi-d` — the serving layer for the scenario pipeline.
//!
//! Everything below this crate is a batch pipeline: `exp_run` loads one
//! scenario, runs it, writes one envelope, exits. This crate wraps that
//! pipeline in a long-running daemon so CI shards, dashboards and
//! sweep drivers can share one warm process:
//!
//! * **Submission** — `POST /submit` with a scenario spec body.
//!   Validation reuses [`ScenarioSpec::parse`], so a bad spec gets the
//!   same aggregated one-line error the CLI prints, as a 400.
//! * **Supervision** — every job runs under the PR 3 `catch_unwind`
//!   contract plus a per-job wall-clock deadline enforced through the
//!   harness's cooperative [`CancelToken`]; failures retry on the
//!   deterministic [`RetryPolicy`] backoff, bounded by `--retries`.
//! * **Backpressure** — a bounded queue; submissions past it are
//!   rejected with 429 + `Retry-After` instead of queueing unboundedly.
//! * **Caching** — results are memoised in a content-addressed
//!   [`ResultStore`] keyed by the spec's workers-invariant
//!   [`canonical_hash`]; determinism makes the cache sound, and a
//!   CRC-32 integrity frame makes it safe (corrupt entries are
//!   recomputed, never served).
//! * **Drain** — `POST /shutdown` (or SIGTERM via the binary) stops
//!   admission, lets in-flight jobs finish, persists the job table
//!   (and each job's event journal) and exits cleanly.
//! * **Observation** — every job carries a bounded flight recorder of
//!   structured progress events (accepted/started/trial boundaries/
//!   retries/finished). `GET /watch/<id>` streams it live as chunked
//!   SSE with `Last-Event-ID` resume, `GET /jobs/<id>/events` replays
//!   the recorded journal, and `GET /metrics/history` serves per-window
//!   counter deltas. All operational-plane: none of it enters the
//!   canonical result envelopes.
//!
//! See DESIGN.md §14 for the job state machine and the soundness
//! argument, and §15 for the live telemetry plane.
//!
//! [`ScenarioSpec::parse`]: polite_wifi_scenario::ScenarioSpec::parse
//! [`CancelToken`]: polite_wifi_harness::CancelToken
//! [`RetryPolicy`]: polite_wifi_core::retry::RetryPolicy
//! [`canonical_hash`]: polite_wifi_scenario::ScenarioSpec::canonical_hash

pub mod cache;
pub mod http;
pub mod jobs;
pub mod server;
pub mod watch;

pub use cache::{corrupt_entry, CacheRead, ResultStore};
pub use http::{request, Request, Response};
pub use jobs::{Job, JobState};
pub use server::{Daemon, DaemonConfig};
pub use watch::{SseClient, SseEvent};
