//! Thin wrapper: runs the committed `scenarios/table1_devices.json` spec
//! through the scenario runner. The experiment logic lives in
//! `polite-wifi-scenario`; `exp_run scenarios/table1_devices.json` is the
//! equivalent invocation.

use polite_wifi_harness::RunArgs;
use polite_wifi_scenario::{run_spec, ScenarioSpec};

fn main() -> std::io::Result<()> {
    let spec = ScenarioSpec::parse(include_str!("../../../../scenarios/table1_devices.json"))
        .expect("committed scenario file is valid");
    let args = RunArgs::from_env(spec.run_args());
    let status = run_spec(&spec, args)?;
    if status != 0 {
        std::process::exit(status);
    }
    Ok(())
}
