//! MAC-level fragmentation and reassembly.
//!
//! 802.11 transmitters may split an MSDU into fragments (same sequence
//! number, increasing fragment numbers, `more_frag` set on all but the
//! last); receivers acknowledge **each fragment individually** — which
//! means a fragmented exchange hands an attacker *more* ACKs per MSDU,
//! not fewer — and reassemble before delivery.

use polite_wifi_frame::data::{DataBody, DataFrame};
use polite_wifi_frame::MacAddr;
use std::collections::HashMap;

/// Splits a payload-carrying data frame into fragments of at most
/// `threshold` payload bytes. Frames at or under the threshold (and null
/// frames) come back unchanged.
///
/// The Sequence Control fragment number is 4 bits wide, so 802.11 caps an
/// MSDU at 16 fragments; a threshold too small for the payload is raised
/// to the smallest value that fits.
pub fn fragment(frame: &DataFrame, threshold: usize) -> Vec<DataFrame> {
    let payload = match &frame.body {
        DataBody::Payload(p) if p.len() > threshold && threshold > 0 => p.clone(),
        _ => return vec![frame.clone()],
    };
    let threshold = threshold.max(payload.len().div_ceil(16));
    let mut fragments = Vec::new();
    let chunks: Vec<&[u8]> = payload.chunks(threshold).collect();
    let n = chunks.len();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let mut f = frame.clone();
        f.body = DataBody::Payload(chunk.to_vec());
        f.seq = polite_wifi_frame::SequenceControl::new(frame.seq.sequence, i as u8);
        f.fc.more_frag = i + 1 < n;
        fragments.push(f);
    }
    fragments
}

/// Reassembly state for one MSDU.
#[derive(Debug, Clone, Default)]
struct PartialMsdu {
    fragments: Vec<Option<Vec<u8>>>,
    last_seen: bool,
    started_us: u64,
}

/// A receiver-side reassembler, keyed by `(transmitter, sequence)`.
/// Incomplete MSDUs are evicted after a timeout, as hardware does.
#[derive(Debug, Clone)]
pub struct Reassembler {
    partial: HashMap<(MacAddr, u16), PartialMsdu>,
    /// Eviction timeout for incomplete MSDUs, µs.
    pub timeout_us: u64,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler {
            partial: HashMap::new(),
            timeout_us: 100_000,
        }
    }
}

impl Reassembler {
    /// A reassembler with the default 100 ms eviction timeout.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feeds one received fragment. Returns the complete reassembled
    /// payload when this fragment finishes its MSDU.
    pub fn push(&mut self, now_us: u64, frame: &DataFrame) -> Option<Vec<u8>> {
        let payload = match &frame.body {
            DataBody::Payload(p) => p.clone(),
            DataBody::Null => return None,
        };
        let key = (frame.addr2, frame.seq.sequence);
        let frag = frame.seq.fragment as usize;
        let entry = self.partial.entry(key).or_insert_with(|| PartialMsdu {
            fragments: Vec::new(),
            last_seen: false,
            started_us: now_us,
        });
        if entry.fragments.len() <= frag {
            entry.fragments.resize(frag + 1, None);
        }
        entry.fragments[frag] = Some(payload);
        if !frame.fc.more_frag {
            entry.last_seen = true;
            // Later fragments than the final one are bogus; drop them.
            entry.fragments.truncate(frag + 1);
        }
        if entry.last_seen && entry.fragments.iter().all(Option::is_some) {
            let entry = self.partial.remove(&key).expect("present");
            let mut out = Vec::new();
            for piece in entry.fragments {
                out.extend_from_slice(&piece.expect("checked"));
            }
            Some(out)
        } else {
            None
        }
    }

    /// Evicts incomplete MSDUs older than the timeout.
    pub fn evict_stale(&mut self, now_us: u64) {
        let timeout = self.timeout_us;
        self.partial
            .retain(|_, p| now_us.saturating_sub(p.started_us) < timeout);
    }

    /// Number of MSDUs currently mid-reassembly.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    fn big_frame(len: usize, seq: u16) -> DataFrame {
        DataFrame::new(
            addr(1),
            addr(2),
            addr(3),
            seq,
            (0..len).map(|i| i as u8).collect(),
        )
    }

    #[test]
    fn fragmentation_layout() {
        let f = big_frame(1000, 42);
        let frags = fragment(&f, 300);
        assert_eq!(frags.len(), 4); // 300+300+300+100
        for (i, frag) in frags.iter().enumerate() {
            assert_eq!(frag.seq.sequence, 42);
            assert_eq!(frag.seq.fragment, i as u8);
            assert_eq!(frag.fc.more_frag, i < 3);
        }
        if let DataBody::Payload(p) = &frags[3].body {
            assert_eq!(p.len(), 100);
        } else {
            panic!("payload expected");
        }
    }

    #[test]
    fn small_frames_untouched() {
        let f = big_frame(100, 1);
        assert_eq!(fragment(&f, 300), vec![f.clone()]);
        let null = DataFrame::null(addr(1), addr(2), 2);
        assert_eq!(fragment(&null, 16), vec![null.clone()]);
        // Zero threshold disables fragmentation rather than looping.
        assert_eq!(fragment(&f, 0).len(), 1);
    }

    #[test]
    fn fragment_count_capped_at_16() {
        // The 4-bit fragment number caps an MSDU at 16 fragments; a tiny
        // threshold is raised instead of wrapping the counter.
        let f = big_frame(2000, 1);
        let frags = fragment(&f, 1);
        assert_eq!(frags.len(), 16);
        let total: usize = frags
            .iter()
            .map(|fr| match &fr.body {
                DataBody::Payload(p) => p.len(),
                DataBody::Null => 0,
            })
            .sum();
        assert_eq!(total, 2000);
        assert!(frags
            .iter()
            .enumerate()
            .all(|(i, fr)| fr.seq.fragment == i as u8));
    }

    #[test]
    fn reassembly_round_trip_in_order() {
        let f = big_frame(1000, 7);
        let frags = fragment(&f, 256);
        let mut r = Reassembler::new();
        let mut out = None;
        for (i, frag) in frags.iter().enumerate() {
            let res = r.push(i as u64 * 100, frag);
            if i + 1 < frags.len() {
                assert!(res.is_none());
            } else {
                out = res;
            }
        }
        let expected: Vec<u8> = (0..1000).map(|i| i as u8).collect();
        assert_eq!(out.unwrap(), expected);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_tolerates_reordering() {
        let f = big_frame(600, 9);
        let frags = fragment(&f, 200);
        let mut r = Reassembler::new();
        assert!(r.push(0, &frags[2]).is_none());
        assert!(r.push(1, &frags[0]).is_none());
        let out = r.push(2, &frags[1]).unwrap();
        assert_eq!(out, (0..600).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    fn interleaved_transmitters_kept_separate() {
        let fa = big_frame(400, 5);
        let mut fb = big_frame(400, 5);
        fb.addr2 = addr(9); // same seq, different TA
        let fa_frags = fragment(&fa, 200);
        let fb_frags = fragment(&fb, 200);
        let mut r = Reassembler::new();
        assert!(r.push(0, &fa_frags[0]).is_none());
        assert!(r.push(1, &fb_frags[0]).is_none());
        assert_eq!(r.pending(), 2);
        assert!(r.push(2, &fa_frags[1]).is_some());
        assert!(r.push(3, &fb_frags[1]).is_some());
    }

    #[test]
    fn stale_partials_evicted() {
        let f = big_frame(600, 3);
        let frags = fragment(&f, 200);
        let mut r = Reassembler::new();
        r.push(0, &frags[0]);
        assert_eq!(r.pending(), 1);
        r.evict_stale(200_000);
        assert_eq!(r.pending(), 0);
        // The late fragments no longer complete anything.
        assert!(r.push(200_001, &frags[1]).is_none());
        assert!(r.push(200_002, &frags[2]).is_none());
    }

    #[test]
    fn duplicate_fragment_is_idempotent() {
        let f = big_frame(400, 11);
        let frags = fragment(&f, 200);
        let mut r = Reassembler::new();
        r.push(0, &frags[0]);
        r.push(1, &frags[0]); // duplicate
        let out = r.push(2, &frags[1]).unwrap();
        assert_eq!(out.len(), 400);
    }
}
