//! Convenience constructors for the frames the paper's experiments use.

use crate::addr::MacAddr;
use crate::control::ControlFrame;
use crate::data::DataFrame;
use crate::frame::Frame;
use crate::ie::InformationElement;
use crate::mgmt::{ManagementBody, ManagementFrame};
use crate::reason::ReasonCode;

/// The fake frame from the paper (Section 2): an unencrypted null-function
/// data frame whose only valid field is the victim's MAC address.
pub fn fake_null_frame(victim: MacAddr, forged_ta: MacAddr) -> Frame {
    Frame::Data(DataFrame::null(victim, forged_ta, 0))
}

/// A fake RTS — the fallback attack of Section 2.2 that works even against
/// a hypothetical validate-before-ACK MAC, because control frames cannot
/// be encrypted.
pub fn fake_rts(victim: MacAddr, forged_ta: MacAddr, duration_us: u16) -> Frame {
    Frame::Ctrl(ControlFrame::Rts {
        duration_us,
        ra: victim,
        ta: forged_ta,
    })
}

/// The ACK a victim sends back after SIFS.
pub fn ack(to: MacAddr) -> Frame {
    Frame::Ctrl(ControlFrame::Ack { ra: to })
}

/// The CTS a victim answers an RTS with.
pub fn cts(to: MacAddr, duration_us: u16) -> Frame {
    Frame::Ctrl(ControlFrame::Cts {
        duration_us,
        ra: to,
    })
}

/// A deauthentication frame, as fired by the confused APs in Figure 3.
pub fn deauth(to: MacAddr, from: MacAddr, bssid: MacAddr, seq: u16, reason: ReasonCode) -> Frame {
    Frame::Mgmt(ManagementFrame::new(
        to,
        from,
        bssid,
        seq,
        ManagementBody::Deauthentication { reason },
    ))
}

/// A WPA2-protected beacon for `ssid` on `channel`. With `pmf` the RSN
/// element also advertises 802.11w management-frame protection.
pub fn beacon(
    bssid: MacAddr,
    ssid: &str,
    channel: u8,
    seq: u16,
    timestamp_us: u64,
    pmf: bool,
) -> Frame {
    let rsn = if pmf {
        InformationElement::rsn_wpa2_psk_pmf()
    } else {
        InformationElement::rsn_wpa2_psk()
    };
    Frame::Mgmt(ManagementFrame::new(
        MacAddr::BROADCAST,
        bssid,
        bssid,
        seq,
        ManagementBody::Beacon {
            timestamp: timestamp_us,
            interval_tu: 100,
            capabilities: 0x0411, // ESS | privacy | short slot
            elements: vec![
                InformationElement::ssid(ssid),
                InformationElement::supported_rates(&[
                    0x82, 0x84, 0x8b, 0x96, 0x0c, 0x12, 0x18, 0x24,
                ]),
                InformationElement::ds_parameter(channel),
                InformationElement::tim(0, 3, 0, &[0x00]),
                rsn,
            ],
        },
    ))
}

/// A broadcast probe request (wildcard SSID), as emitted by scanning
/// clients — one of the signals the wardriving discovery thread sniffs.
pub fn probe_request(from: MacAddr, seq: u16) -> Frame {
    Frame::Mgmt(ManagementFrame::new(
        MacAddr::BROADCAST,
        from,
        MacAddr::BROADCAST,
        seq,
        ManagementBody::ProbeRequest {
            elements: vec![
                InformationElement::ssid(""),
                InformationElement::supported_rates(&[0x82, 0x84, 0x8b, 0x96]),
            ],
        },
    ))
}

/// An encrypted-looking QoS data frame, used to model legitimate in-network
/// traffic around the attack.
pub fn protected_qos_data(
    to: MacAddr,
    from: MacAddr,
    bssid: MacAddr,
    seq: u16,
    ciphertext_len: usize,
) -> Frame {
    let mut f = DataFrame::new(to, from, bssid, seq, vec![0u8; ciphertext_len]);
    f.fc.subtype = crate::control::data_subtype::QOS_DATA;
    f.fc.protected = true;
    f.qos = Some(0);
    Frame::Data(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn victim() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn fake_null_frame_matches_paper_shape() {
        let f = fake_null_frame(victim(), MacAddr::FAKE);
        assert!(f.solicits_ack());
        assert!(!f.frame_control().protected);
        assert_eq!(f.receiver(), Some(victim()));
        assert_eq!(f.transmitter(), Some(MacAddr::FAKE));
        assert_eq!(f.air_len(), 28);
        // Round-trips over the air.
        let bytes = f.encode(true);
        assert_eq!(Frame::parse(&bytes, true).unwrap(), f);
    }

    #[test]
    fn fake_rts_solicits_cts_not_ack() {
        let f = fake_rts(victim(), MacAddr::FAKE, 248);
        assert!(f.solicits_cts());
        assert!(!f.solicits_ack());
    }

    #[test]
    fn beacon_advertises_privacy() {
        let f = beacon(victim(), "PrivateNet", 6, 0, 0, false);
        if let Frame::Mgmt(m) = &f {
            if let ManagementBody::Beacon {
                capabilities,
                elements,
                ..
            } = &m.body
            {
                assert!(capabilities & 0x0010 != 0, "privacy bit set");
                assert!(InformationElement::find(elements, crate::ie::element_id::RSN).is_some());
                return;
            }
        }
        panic!("not a beacon");
    }

    #[test]
    fn pmf_beacon_differs() {
        let plain = beacon(victim(), "X", 1, 0, 0, false);
        let pmf = beacon(victim(), "X", 1, 0, 0, true);
        assert_ne!(plain.encode(false), pmf.encode(false));
    }

    #[test]
    fn protected_data_sets_protected_bit() {
        let f = protected_qos_data(victim(), MacAddr::FAKE, victim(), 1, 100);
        assert!(f.frame_control().protected);
        let bytes = f.encode(true);
        assert_eq!(Frame::parse(&bytes, true).unwrap(), f);
    }

    #[test]
    fn probe_request_is_broadcast() {
        let f = probe_request(victim(), 4);
        assert_eq!(f.receiver(), Some(MacAddr::BROADCAST));
        assert!(!f.solicits_ack());
    }
}
