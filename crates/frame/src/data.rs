//! Data frames, including the null-function "fake frames" the paper injects.

use crate::addr::MacAddr;
use crate::control::{data_subtype, FrameControl, FrameType};
use crate::error::FrameError;
use crate::seq::SequenceControl;
use serde::{Deserialize, Serialize};

/// The payload of a data frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataBody {
    /// Null function (no data) — a header-only frame. This is the fake
    /// frame of Figures 1 and 2: the only valid field is the receiver
    /// address, yet the victim acknowledges it.
    Null,
    /// A payload-carrying frame. When `FrameControl::protected` is set the
    /// bytes are ciphertext (we carry them opaquely).
    Payload(Vec<u8>),
}

impl DataBody {
    /// Payload length in bytes (0 for null frames).
    pub fn len(&self) -> usize {
        match self {
            DataBody::Null => 0,
            DataBody::Payload(p) => p.len(),
        }
    }

    /// True when there is no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A data frame: MAC header (3 or 4 addresses, optional QoS control) plus
/// an optional payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFrame {
    /// Frame Control field.
    pub fc: FrameControl,
    /// Duration/ID in microseconds.
    pub duration: u16,
    /// Address 1 (receiver — the only field Polite WiFi checks).
    pub addr1: MacAddr,
    /// Address 2 (transmitter — forged to `aa:bb:bb:bb:bb:bb` by the paper).
    pub addr2: MacAddr,
    /// Address 3 (BSSID / DA / SA depending on the DS bits).
    pub addr3: MacAddr,
    /// Sequence Control field.
    pub seq: SequenceControl,
    /// Address 4, present only in WDS (to_ds && from_ds) frames.
    pub addr4: Option<MacAddr>,
    /// QoS Control field, present in QoS subtypes.
    pub qos: Option<u16>,
    /// Payload.
    pub body: DataBody,
}

impl DataFrame {
    /// Builds a plain (non-QoS) data frame with payload.
    pub fn new(addr1: MacAddr, addr2: MacAddr, addr3: MacAddr, seq: u16, payload: Vec<u8>) -> Self {
        DataFrame {
            fc: FrameControl::new(FrameType::Data, data_subtype::DATA),
            duration: 0,
            addr1,
            addr2,
            addr3,
            seq: SequenceControl::new(seq, 0),
            addr4: None,
            qos: None,
            body: DataBody::Payload(payload),
        }
    }

    /// Builds a null-function frame — the paper's fake frame. `addr3` (the
    /// BSSID slot) is set to the receiver, matching the Scapy default the
    /// paper used.
    pub fn null(addr1: MacAddr, addr2: MacAddr, seq: u16) -> Self {
        DataFrame {
            fc: FrameControl::new(FrameType::Data, data_subtype::NULL),
            duration: 0,
            addr1,
            addr2,
            addr3: addr1,
            seq: SequenceControl::new(seq, 0),
            addr4: None,
            qos: None,
            body: DataBody::Null,
        }
    }

    /// Builds a QoS-null frame.
    pub fn qos_null(addr1: MacAddr, addr2: MacAddr, seq: u16, tid: u8) -> Self {
        DataFrame {
            fc: FrameControl::new(FrameType::Data, data_subtype::QOS_NULL),
            duration: 0,
            addr1,
            addr2,
            addr3: addr1,
            seq: SequenceControl::new(seq, 0),
            addr4: None,
            qos: Some(tid as u16 & 0x000f),
            body: DataBody::Null,
        }
    }

    /// True for null and QoS-null subtypes.
    pub fn is_null(&self) -> bool {
        self.fc.is_null_data()
    }

    /// Header length implied by the Frame Control flags.
    fn header_len(fc: &FrameControl) -> usize {
        let mut len = 24;
        if fc.to_ds && fc.from_ds {
            len += 6;
        }
        if fc.subtype & 0x08 != 0 {
            len += 2; // QoS Control
        }
        len
    }

    /// Encodes header + body (no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::header_len(&self.fc) + self.body.len());
        out.extend_from_slice(&self.fc.encode());
        out.extend_from_slice(&self.duration.to_le_bytes());
        out.extend_from_slice(&self.addr1.octets());
        out.extend_from_slice(&self.addr2.octets());
        out.extend_from_slice(&self.addr3.octets());
        out.extend_from_slice(&self.seq.encode());
        if let Some(addr4) = self.addr4 {
            out.extend_from_slice(&addr4.octets());
        }
        if let Some(qos) = self.qos {
            out.extend_from_slice(&qos.to_le_bytes());
        }
        if let DataBody::Payload(p) = &self.body {
            out.extend_from_slice(p);
        }
        out
    }

    /// Parses a data frame given its already-decoded Frame Control.
    pub fn parse(fc: FrameControl, buf: &[u8]) -> Result<Self, FrameError> {
        let header_len = Self::header_len(&fc);
        if buf.len() < header_len {
            return Err(FrameError::Truncated {
                context: "data frame header",
                needed: header_len,
                available: buf.len(),
            });
        }
        let duration = u16::from_le_bytes([buf[2], buf[3]]);
        let addr1 = MacAddr::parse(&buf[4..])?;
        let addr2 = MacAddr::parse(&buf[10..])?;
        let addr3 = MacAddr::parse(&buf[16..])?;
        let seq = SequenceControl::parse(&buf[22..])?;
        let mut offset = 24;
        let addr4 = if fc.to_ds && fc.from_ds {
            let a = MacAddr::parse(&buf[offset..])?;
            offset += 6;
            Some(a)
        } else {
            None
        };
        let qos = if fc.subtype & 0x08 != 0 {
            let q = u16::from_le_bytes([buf[offset], buf[offset + 1]]);
            offset += 2;
            Some(q)
        } else {
            None
        };
        let body = if fc.is_null_data() {
            // Null frames carry no payload; tolerate (and drop) stray bytes,
            // as real sniffers do.
            DataBody::Null
        } else {
            DataBody::Payload(buf[offset..].to_vec())
        };
        Ok(DataFrame {
            fc,
            duration,
            addr1,
            addr2,
            addr3,
            seq,
            addr4,
            qos,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, last])
    }

    fn round_trip(frame: &DataFrame) {
        let bytes = frame.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert_eq!(&DataFrame::parse(fc, &bytes).unwrap(), frame);
    }

    #[test]
    fn null_frame_is_24_byte_header_only() {
        let f = DataFrame::null(addr(1), MacAddr::FAKE, 0);
        assert_eq!(f.encode().len(), 24);
        assert!(f.is_null());
        round_trip(&f);
    }

    #[test]
    fn fake_frame_has_receiver_as_only_meaningful_address() {
        let victim = addr(9);
        let f = DataFrame::null(victim, MacAddr::FAKE, 0);
        assert_eq!(f.addr1, victim);
        assert_eq!(f.addr2, MacAddr::FAKE);
        assert_eq!(f.addr3, victim);
    }

    #[test]
    fn qos_null_carries_tid() {
        let f = DataFrame::qos_null(addr(1), addr(2), 5, 6);
        assert_eq!(f.encode().len(), 26);
        assert_eq!(f.qos, Some(6));
        round_trip(&f);
    }

    #[test]
    fn payload_frame_round_trip() {
        let f = DataFrame::new(addr(1), addr(2), addr(3), 77, vec![1, 2, 3, 4, 5]);
        round_trip(&f);
    }

    #[test]
    fn wds_four_address_round_trip() {
        let mut f = DataFrame::new(addr(1), addr(2), addr(3), 7, vec![0xde, 0xad]);
        f.fc.to_ds = true;
        f.fc.from_ds = true;
        f.addr4 = Some(addr(4));
        assert_eq!(f.encode().len(), 24 + 6 + 2);
        round_trip(&f);
    }

    #[test]
    fn protected_payload_carried_opaquely() {
        let mut f = DataFrame::new(addr(1), addr(2), addr(3), 7, vec![0xaa; 48]);
        f.fc.protected = true;
        round_trip(&f);
    }

    #[test]
    fn truncated_rejected() {
        let f = DataFrame::null(addr(1), addr(2), 0);
        let bytes = f.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert!(DataFrame::parse(fc, &bytes[..23]).is_err());
    }

    #[test]
    fn empty_payload_differs_from_null() {
        let f = DataFrame::new(addr(1), addr(2), addr(3), 0, vec![]);
        assert!(!f.is_null());
        assert!(f.body.is_empty());
        round_trip(&f);
    }
}
