//! Property tests for the scenario parser: malformed specs must be
//! rejected with ONE aggregated, single-line error that ends with the
//! grammar pointer — never a panic, never a partial spec, never a
//! cascade of separate errors.

use polite_wifi_scenario::ScenarioSpec;
use proptest::prelude::*;

const GRAMMAR_HINT: &str = "(see DESIGN.md \u{a7}13 for the grammar)";

/// Top-level keys the grammar accepts; generated unknown keys must
/// avoid colliding with them.
const KNOWN_KEYS: &[&str] = &[
    "name",
    "paper_ref",
    "slug",
    "runner",
    "run",
    "topology",
    "attacks",
    "probes",
    "assertions",
    "params",
];

fn valid_slug(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// A minimal, otherwise-valid spec with injection points for the slug
/// and an arbitrary extra top-level key.
fn spec_text(slug: &str, extra_key: Option<&str>) -> String {
    let extra = extra_key
        .map(|k| format!("  {}: 1,\n", serde_json::to_string(k).unwrap()))
        .unwrap_or_default();
    format!(
        "{{\n{extra}  \"name\": \"T\",\n  \"paper_ref\": \"r\",\n  \"slug\": {},\n  \"runner\": \"sifs_timing\"\n}}",
        serde_json::to_string(slug).unwrap()
    )
}

// The vendored proptest has no regex string strategies, so the
// generators are built from char vectors.

/// Arbitrary byte soup decoded lossily — exercises both invalid UTF-8
/// shapes (as replacement chars) and random JSON-ish fragments.
fn arb_any_string(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// `[a-z][a-z0-9_]{0,12}` — a plausible identifier.
fn arb_key() -> impl Strategy<Value = String> {
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    (
        0u8..26,
        proptest::collection::vec(0usize..TAIL.len(), 0..12),
    )
        .prop_map(|(first, rest)| {
            let mut s = String::new();
            s.push((b'a' + first) as char);
            s.extend(rest.into_iter().map(|i| TAIL[i] as char));
            s
        })
}

/// Printable-ASCII strings (space through tilde).
fn arb_printable(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..95, 0..max)
        .prop_map(|v| v.into_iter().map(|b| (b + 0x20) as char).collect())
}

/// `[A-Z][A-Z ]{0,8}` — always a slug violation (uppercase), never empty.
fn arb_bad_slug() -> impl Strategy<Value = String> {
    const CS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ ";
    (0u8..26, proptest::collection::vec(0usize..CS.len(), 0..8)).prop_map(|(first, rest)| {
        let mut s = String::new();
        s.push((b'A' + first) as char);
        s.extend(rest.into_iter().map(|i| CS[i] as char));
        s
    })
}

fn assert_single_aggregated_error(err: &str) {
    assert_eq!(err.lines().count(), 1, "error must be one line: {err:?}");
    assert!(
        err.ends_with(GRAMMAR_HINT),
        "error must end with the grammar pointer: {err:?}"
    );
    assert!(err.starts_with("invalid scenario spec: "), "{err:?}");
}

proptest! {
    /// Arbitrary garbage never panics the parser, and when it fails it
    /// fails with the one-line aggregated error shape.
    #[test]
    fn arbitrary_input_never_panics(input in arb_any_string(200)) {
        if let Err(err) = ScenarioSpec::parse(&input) {
            assert_single_aggregated_error(&err);
        }
    }

    /// An unknown top-level key is rejected and named in the error.
    #[test]
    fn unknown_top_level_keys_are_rejected(key in arb_key()) {
        prop_assume!(!KNOWN_KEYS.contains(&key.as_str()));
        let err = ScenarioSpec::parse(&spec_text("ok", Some(&key)))
            .expect_err("unknown key must be rejected");
        assert_single_aggregated_error(&err);
        prop_assert!(
            err.contains(&format!("unknown key `{key}`")),
            "error must name the key: {:?}",
            err
        );
    }

    /// Slugs are accepted iff they are non-empty snake_case.
    #[test]
    fn slug_validation_matches_the_grammar(slug in arb_printable(16)) {
        // A literal backslash or quote survives JSON escaping fine —
        // the property is purely about the snake_case rule.
        let result = ScenarioSpec::parse(&spec_text(&slug, None));
        if valid_slug(&slug) {
            prop_assert!(result.is_ok(), "valid slug {:?} rejected: {:?}", slug, result);
        } else {
            let err = result.expect_err("invalid slug must be rejected");
            assert_single_aggregated_error(&err);
            prop_assert!(err.contains("snake_case"), "{:?}", err);
        }
    }

    /// Several simultaneous problems still produce ONE error line, with
    /// every problem present in it.
    #[test]
    fn multiple_problems_aggregate_into_one_line(
        key in arb_key(),
        slug in arb_bad_slug(),
    ) {
        prop_assume!(!KNOWN_KEYS.contains(&key.as_str()));
        let err = ScenarioSpec::parse(&spec_text(&slug, Some(&key)))
            .expect_err("two problems must be rejected");
        assert_single_aggregated_error(&err);
        prop_assert!(err.contains(&format!("unknown key `{key}`")), "{:?}", err);
        prop_assert!(err.contains("snake_case"), "{:?}", err);
    }
}
