//! The battery-drain attack of §4.2: sweep fake-frame rates against an
//! ESP8266-class power-save victim and project battery life.
//!
//! ```sh
//! cargo run --release --example battery_drain
//! ```

use polite_wifi::core::BatteryDrainAttack;

fn main() {
    let rates = [0u32, 5, 20, 100, 300, 900];
    println!("Sweeping fake-frame rates against an ESP8266 in power save...\n");
    println!(
        "{:>9} {:>12} {:>10} {:>10}",
        "rate pps", "power mW", "sleep %", "ACKs/s"
    );

    let mut at_900 = None;
    for &rate in &rates {
        let m = BatteryDrainAttack {
            rate_pps: rate,
            warmup_us: 3_000_000,
            measure_us: 10_000_000,
            seed: 99,
            ..BatteryDrainAttack::default()
        }
        .run();
        println!(
            "{:>9} {:>12.1} {:>10.1} {:>10.1}",
            m.rate_pps,
            m.average_power_mw,
            m.sleep_fraction * 100.0,
            m.acks_sent as f64 / 13.0
        );
        if rate == 900 {
            at_900 = Some(m);
        }
    }

    let m = at_900.expect("900 pps measured");
    println!("\nBattery-life projections under the 900 pps attack:");
    for p in BatteryDrainAttack::project_batteries(&m) {
        println!(
            "  {:<20} {:>6.0} mWh  advertised {:>6.0} h  under attack {:>5.1} h  ({}x faster)",
            p.battery.name,
            p.battery.capacity_mwh,
            p.battery.advertised_life_hours,
            p.attacked_life_hours,
            p.speedup.round()
        );
    }
}
