//! Typed metric accumulation for experiments.
//!
//! A [`MetricsLedger`] collects named numeric samples during a trial.
//! Ledgers from parallel trials [`merge`](MetricsLedger::merge) in trial
//! order, so the summary an experiment reports is independent of how
//! many workers ran it.

use serde::Serialize;

/// One named metric: an ordered accumulator over recorded samples.
#[derive(Debug, Clone, PartialEq)]
struct Metric {
    name: String,
    samples: u64,
    total: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl Metric {
    fn new(name: &str) -> Metric {
        Metric {
            name: name.to_string(),
            samples: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        }
    }

    fn push(&mut self, value: f64) {
        self.samples += 1;
        self.total += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }
}

/// Serializable summary of one metric, reported in result JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricSummary {
    pub name: String,
    pub samples: u64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub total: f64,
}

/// Ordered, named metric accumulators.
///
/// Metrics appear in first-recorded order, which together with ordered
/// trial merging keeps the JSON output byte-stable across worker counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsLedger {
    metrics: Vec<Metric>,
}

impl MetricsLedger {
    pub fn new() -> MetricsLedger {
        MetricsLedger::default()
    }

    fn entry(&mut self, name: &str) -> &mut Metric {
        if let Some(idx) = self.metrics.iter().position(|m| m.name == name) {
            &mut self.metrics[idx]
        } else {
            self.metrics.push(Metric::new(name));
            self.metrics.last_mut().unwrap()
        }
    }

    /// Records one sample of a metric.
    pub fn record(&mut self, name: &str, value: f64) {
        self.entry(name).push(value);
    }

    /// Records an integer count as one sample.
    pub fn count(&mut self, name: &str, n: u64) {
        self.record(name, n as f64);
    }

    /// Folds another ledger's samples into this one. Call in trial
    /// order: merged summaries are then identical however trials were
    /// scheduled across workers.
    pub fn merge(&mut self, other: &MetricsLedger) {
        for m in &other.metrics {
            let entry = self.entry(&m.name);
            entry.samples += m.samples;
            entry.total += m.total;
            entry.min = entry.min.min(m.min);
            entry.max = entry.max.max(m.max);
            entry.last = m.last;
        }
    }

    /// Mean of a metric's samples, if any were recorded.
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.samples > 0)
            .map(|m| m.total / m.samples as f64)
    }

    /// Sum of a metric's samples (0.0 when never recorded).
    pub fn total(&self, name: &str) -> f64 {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.total)
            .unwrap_or(0.0)
    }

    /// Most recently recorded sample of a metric.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.samples > 0)
            .map(|m| m.last)
    }

    /// Number of samples recorded for a metric.
    pub fn samples(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.samples)
            .unwrap_or(0)
    }

    /// True when no samples have been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.iter().all(|m| m.samples == 0)
    }

    /// Summaries in first-recorded order, for the result JSON.
    pub fn summaries(&self) -> Vec<MetricSummary> {
        self.metrics
            .iter()
            .filter(|m| m.samples > 0)
            .map(|m| MetricSummary {
                name: m.name.clone(),
                samples: m.samples,
                mean: m.total / m.samples as f64,
                min: m.min,
                max: m.max,
                total: m.total,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarise() {
        let mut ledger = MetricsLedger::new();
        ledger.record("latency_us", 10.0);
        ledger.record("latency_us", 30.0);
        ledger.count("acks", 7);
        assert_eq!(ledger.mean("latency_us"), Some(20.0));
        assert_eq!(ledger.total("acks"), 7.0);
        assert_eq!(ledger.samples("latency_us"), 2);
        assert_eq!(ledger.last("latency_us"), Some(30.0));

        let s = ledger.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "latency_us");
        assert_eq!(s[0].min, 10.0);
        assert_eq!(s[0].max, 30.0);
        assert_eq!(s[1].name, "acks");
    }

    #[test]
    fn merge_is_order_sensitive_only_in_last() {
        let mut a = MetricsLedger::new();
        a.record("x", 1.0);
        let mut b = MetricsLedger::new();
        b.record("x", 3.0);
        b.record("y", 5.0);

        let mut merged = MetricsLedger::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.mean("x"), Some(2.0));
        assert_eq!(merged.samples("x"), 2);
        assert_eq!(merged.last("x"), Some(3.0));
        assert_eq!(merged.mean("y"), Some(5.0));
    }

    #[test]
    fn merged_summaries_equal_sequential_recording() {
        let mut sequential = MetricsLedger::new();
        let mut parts: Vec<MetricsLedger> = Vec::new();
        for trial in 0..6u64 {
            let mut part = MetricsLedger::new();
            let v = (trial * trial) as f64;
            sequential.record("v", v);
            part.record("v", v);
            parts.push(part);
        }
        let mut merged = MetricsLedger::new();
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.summaries(), sequential.summaries());
    }
}
