//! IEEE 802 MAC addresses.

use crate::error::FrameError;
use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// A 48-bit IEEE 802 MAC address.
///
/// The paper's attacker forges the transmitter address as
/// `aa:bb:bb:bb:bb:bb` ([`MacAddr::FAKE`]); the only field a Polite-WiFi
/// victim actually checks before acknowledging is the *receiver* address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`. Broadcast frames are never
    /// acknowledged, which is why the paper's injector must unicast.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder before assignment.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// The forged transmitter address used throughout the paper's traces:
    /// `aa:bb:bb:bb:bb:bb` (Figures 2 and 3).
    pub const FAKE: MacAddr = MacAddr([0xaa, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb]);

    /// Builds an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (I/G, bit 0 of the first octet) is set.
    /// Group-addressed frames are not acknowledged in 802.11.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (individually addressed) destinations — the only
    /// destinations that elicit an ACK.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True if the locally-administered bit (U/L, bit 1 of the first octet)
    /// is set. Randomised and forged addresses are locally administered.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The 24-bit Organizationally Unique Identifier (first three octets),
    /// used by the wardriving survey to attribute devices to vendors.
    pub fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Builds an address from an OUI and a 24-bit device suffix.
    pub fn from_oui(oui: [u8; 3], suffix: u32) -> Self {
        MacAddr([
            oui[0],
            oui[1],
            oui[2],
            (suffix >> 16) as u8,
            (suffix >> 8) as u8,
            suffix as u8,
        ])
    }

    /// Reads an address from the first six bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 6 {
            return Err(FrameError::Truncated {
                context: "MAC address",
                needed: 6,
                available: buf.len(),
            });
        }
        let mut octets = [0u8; 6];
        octets.copy_from_slice(&buf[..6]);
        Ok(MacAddr(octets))
    }

    /// Interprets the address as a 48-bit big-endian integer (useful for
    /// ordering and for deterministic hashing in the simulator).
    pub fn to_u64(&self) -> u64 {
        self.0.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
    }

    /// Inverse of [`MacAddr::to_u64`]; the upper 16 bits of `v` are ignored.
    pub fn from_u64(v: u64) -> Self {
        MacAddr([
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for MacAddr {
    type Err = FrameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split([':', '-']);
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(FrameError::BadMacAddress)?;
            if part.len() != 2 {
                return Err(FrameError::BadMacAddress);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| FrameError::BadMacAddress)?;
        }
        if parts.next().is_some() {
            return Err(FrameError::BadMacAddress);
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        let a = MacAddr::new([0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03]);
        let s = a.to_string();
        assert_eq!(s, "f2:6e:0b:01:02:03");
        assert_eq!(s.parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn dash_separator_accepted() {
        let a: MacAddr = "aa-bb-bb-bb-bb-bb".parse().unwrap();
        assert_eq!(a, MacAddr::FAKE);
    }

    #[test]
    fn malformed_strings_rejected() {
        assert!("aa:bb:cc".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<MacAddr>().is_err());
        assert!("zz:bb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
        assert!("aabb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_is_multicast_not_unicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
    }

    #[test]
    fn fake_address_is_locally_administered_unicast() {
        // 0xaa = 0b10101010: group bit clear, local bit set.
        assert!(MacAddr::FAKE.is_unicast());
        assert!(MacAddr::FAKE.is_locally_administered());
    }

    #[test]
    fn oui_extraction() {
        let a = MacAddr::new([0x00, 0x1a, 0x11, 0x44, 0x55, 0x66]);
        assert_eq!(a.oui(), [0x00, 0x1a, 0x11]);
    }

    #[test]
    fn from_oui_builds_suffix_big_endian() {
        let a = MacAddr::from_oui([0x00, 0x1a, 0x11], 0x0a0b0c);
        assert_eq!(a, MacAddr::new([0x00, 0x1a, 0x11, 0x0a, 0x0b, 0x0c]));
    }

    #[test]
    fn u64_round_trip() {
        let a = MacAddr::new([0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        assert_eq!(MacAddr::from_u64(a.to_u64()), a);
        assert_eq!(a.to_u64(), 0x123456789abc);
    }

    #[test]
    fn parse_requires_six_bytes() {
        assert!(MacAddr::parse(&[1, 2, 3]).is_err());
        assert_eq!(
            MacAddr::parse(&[1, 2, 3, 4, 5, 6, 7]).unwrap(),
            MacAddr::new([1, 2, 3, 4, 5, 6])
        );
    }
}
