//! Progress sinks: where trial-boundary telemetry goes.
//!
//! PR 9's daemon exposed the problem with a stderr-only heartbeat: a
//! job running inside `polite-wifi-d` has no terminal to print to, and
//! an operator watching `/watch/<id>` needs *structured* events, not
//! scraped log lines. This module splits the reporting path from the
//! rendering:
//!
//! * [`ProgressSink`] — the trait the runner drives at trial
//!   boundaries (started/finished/failed) and at each absorbed trial
//!   scope ([`sample`](ProgressSink::sample), carrying throughput and
//!   frame-fate totals). Samples are **lazily rendered**: the sink
//!   receives a closure, so a rate-limited or disabled sink never pays
//!   for building the snapshot.
//! * [`StderrProgress`] — wraps the existing [`Heartbeat`] and
//!   reproduces today's `--progress` stderr lines byte-for-byte.
//! * [`ChannelProgress`] — publishes [`ProgressEvent`]s into a bounded
//!   [`EventHub`] for subscribers (the daemon's per-job flight
//!   recorder). Publishing never blocks: with no subscriber, or a slow
//!   one, the hub's ring sheds its oldest events and the job proceeds.
//!
//! Everything here is wall-clock, operational telemetry. None of it is
//! written into canonical result envelopes, so the byte-identical-
//! across-workers contract is untouched — same split as the PR 5
//! profiler's wall-time half.

use crate::sink::Heartbeat;
use polite_wifi_obs::events::{EventHub, ProgressEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time progress snapshot, built lazily when a sink decides
/// it will actually report (see [`ProgressSink::sample`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSample {
    /// Trial scopes absorbed into the experiment so far.
    pub trials_absorbed: u64,
    /// Frames transmitted per wall-clock second since the run started.
    pub frames_per_sec: f64,
    /// Scheduler events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Interference-grid cells occupied (0 under all-pairs propagation).
    pub cells_occupied: u64,
    /// Frame-fate totals so far.
    pub delivered: u64,
    /// Frames lost to FER draws or injected burst loss.
    pub fer_dropped: u64,
    /// Frames corrupted by overlapping transmissions.
    pub collided: u64,
    /// Frames swallowed by stalled firmware.
    pub stalled: u64,
}

/// A consumer of trial-boundary progress. All methods default to
/// no-ops so a sink only implements the signals it cares about; every
/// method must be cheap and non-blocking — sinks are called from
/// runner worker threads mid-run.
pub trait ProgressSink: Send + Sync {
    /// A trial is about to run (0-based index).
    fn trial_started(&self, _trial: usize, _total: usize) {}

    /// A trial completed; `done` counts completions so far.
    fn trial_finished(&self, _done: usize, _total: usize) {}

    /// A trial degraded into a structured failure.
    fn trial_failed(&self, _trial: usize, _detail: &str) {}

    /// A trial scope was absorbed. `render` builds the snapshot; call
    /// it only when this sink will actually report, so a suppressed
    /// sample costs nothing.
    fn sample(&self, _render: &dyn Fn() -> ProgressSample) {}
}

thread_local! {
    /// Per-thread sink override. The daemon runs many jobs in one
    /// process; a process-wide registration would cross-wire their
    /// flight recorders, so each job thread installs its own (the same
    /// pattern as `set_thread_results_dir`).
    static PROGRESS_SINK: std::cell::RefCell<Option<Arc<dyn ProgressSink>>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs (or, with `None`, removes) this thread's progress sink.
/// Returns the previous sink so scoped callers can restore it.
/// [`Experiment::start_with`](crate::report::Experiment::start_with)
/// picks the installed sink up, so install **before** starting the
/// experiment on the same thread.
pub fn set_thread_progress_sink(
    sink: Option<Arc<dyn ProgressSink>>,
) -> Option<Arc<dyn ProgressSink>> {
    PROGRESS_SINK.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), sink))
}

/// This thread's installed progress sink, if any.
pub fn thread_progress_sink() -> Option<Arc<dyn ProgressSink>> {
    PROGRESS_SINK.with(|cell| cell.borrow().clone())
}

/// The classic `--progress` stderr reporter, now as a sink.
///
/// Byte-compatibility contract: with `--progress` on, this sink writes
/// exactly the lines the pre-sink `Heartbeat` path wrote — same
/// format, same shared rate limit across trial and sample ticks.
pub struct StderrProgress {
    heartbeat: Heartbeat,
}

impl StderrProgress {
    /// A stderr sink printing at most twice a second when enabled
    /// (`--progress`).
    pub fn new(enabled: bool) -> StderrProgress {
        StderrProgress {
            heartbeat: Heartbeat::new(enabled),
        }
    }

    /// A stderr sink with an explicit rate limit (tests use zero).
    pub fn with_heartbeat(heartbeat: Heartbeat) -> StderrProgress {
        StderrProgress { heartbeat }
    }
}

impl ProgressSink for StderrProgress {
    fn trial_finished(&self, done: usize, total: usize) {
        self.heartbeat
            .tick(|| format!("[progress] {done}/{total} trials done"));
    }

    fn sample(&self, render: &dyn Fn() -> ProgressSample) {
        self.heartbeat.tick(|| {
            let s = render();
            let cells = if s.cells_occupied > 0 {
                format!(", {} cells occupied", s.cells_occupied)
            } else {
                String::new()
            };
            format!(
                "[progress] {} trial scope(s) absorbed — {:.0} frames/s, \
                 {:.0} events/s{cells}; \
                 fates: delivered {}, fer_dropped {}, collided {}, stalled {}",
                s.trials_absorbed,
                s.frames_per_sec,
                s.events_per_sec,
                s.delivered,
                s.fer_dropped,
                s.collided,
                s.stalled,
            )
        });
    }
}

/// A sink that publishes structured [`ProgressEvent`]s into a bounded
/// [`EventHub`] — the daemon's per-job flight recorder.
///
/// Publishing never blocks and never fails: overflow sheds the oldest
/// journal entries (counted, queryable via [`EventHub::shed`]), so a
/// disconnected or slow subscriber can never stall or fail the job.
pub struct ChannelProgress {
    hub: Arc<EventHub>,
    done: AtomicU64,
    total: AtomicU64,
}

impl std::fmt::Debug for ChannelProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelProgress")
            .field("done", &self.done.load(Ordering::Relaxed))
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("hub", &self.hub)
            .finish()
    }
}

impl ChannelProgress {
    /// A channel sink whose journal holds at most `capacity` events.
    pub fn new(capacity: usize) -> ChannelProgress {
        ChannelProgress {
            hub: Arc::new(EventHub::new(capacity)),
            done: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// The hub subscribers read from.
    pub fn hub(&self) -> Arc<EventHub> {
        Arc::clone(&self.hub)
    }

    /// Publishes a lifecycle event (job accepted/started/retried/…)
    /// directly — callers above the trial layer use this for events the
    /// runner cannot see. Returns the assigned sequence number.
    pub fn publish(&self, event: ProgressEvent) -> u64 {
        self.hub.publish(event)
    }

    /// Trials completed so far, as reported at trial boundaries.
    pub fn trials_done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Total trials, 0 until the first trial boundary reports it.
    pub fn trials_total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

impl ProgressSink for ChannelProgress {
    fn trial_started(&self, trial: usize, total: usize) {
        self.total.store(total as u64, Ordering::Relaxed);
        self.hub.publish(
            ProgressEvent::new("trial_started")
                .with("trial", trial as u64)
                .with("total", total as u64),
        );
    }

    fn trial_finished(&self, done: usize, total: usize) {
        self.done.store(done as u64, Ordering::Relaxed);
        self.total.store(total as u64, Ordering::Relaxed);
        self.hub.publish(
            ProgressEvent::new("trial_finished")
                .with("done", done as u64)
                .with("total", total as u64),
        );
    }

    fn trial_failed(&self, trial: usize, detail: &str) {
        self.hub.publish(
            ProgressEvent::new("trial_failed")
                .with_detail(detail)
                .with("trial", trial as u64),
        );
    }

    fn sample(&self, render: &dyn Fn() -> ProgressSample) {
        let s = render();
        self.hub.publish(
            ProgressEvent::new("sample")
                .with("trials_absorbed", s.trials_absorbed)
                .with("frames_per_sec", s.frames_per_sec.round() as u64)
                .with("events_per_sec", s.events_per_sec.round() as u64)
                .with("cells_occupied", s.cells_occupied)
                .with("delivered", s.delivered)
                .with("fer_dropped", s.fer_dropped)
                .with("collided", s.collided)
                .with("stalled", s.stalled),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stderr_sink_rate_limit_suppresses_render_lazily() {
        // An hour-long interval: the first sample renders, the second
        // must be suppressed WITHOUT calling the render closure.
        let sink =
            StderrProgress::with_heartbeat(Heartbeat::with_interval(true, Duration::from_secs(3600)));
        let rendered = AtomicU64::new(0);
        let render = || {
            rendered.fetch_add(1, Ordering::Relaxed);
            ProgressSample {
                trials_absorbed: 1,
                frames_per_sec: 0.0,
                events_per_sec: 0.0,
                cells_occupied: 0,
                delivered: 0,
                fer_dropped: 0,
                collided: 0,
                stalled: 0,
            }
        };
        sink.sample(&render);
        sink.sample(&render);
        assert_eq!(rendered.load(Ordering::Relaxed), 1);

        // A disabled sink never renders at all.
        let off = StderrProgress::new(false);
        off.sample(&|| -> ProgressSample { panic!("disabled sink must not render") });
    }

    #[test]
    fn channel_sink_records_trial_boundaries_and_samples() {
        let sink = ChannelProgress::new(64);
        sink.trial_started(0, 2);
        sink.trial_finished(1, 2);
        sink.trial_failed(1, "injected trial panic");
        sink.sample(&|| ProgressSample {
            trials_absorbed: 2,
            frames_per_sec: 1234.6,
            events_per_sec: 99.2,
            cells_occupied: 3,
            delivered: 10,
            fer_dropped: 1,
            collided: 2,
            stalled: 0,
        });
        assert_eq!(sink.trials_done(), 1);
        assert_eq!(sink.trials_total(), 2);

        let d = sink.hub().snapshot_since(0);
        let kinds: Vec<&str> = d.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["trial_started", "trial_finished", "trial_failed", "sample"]
        );
        let seqs: Vec<u64> = d.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(d.events[2].detail, "injected trial panic");
        assert_eq!(d.events[3].field("frames_per_sec"), Some(1235));
        assert_eq!(d.events[3].field("stalled"), Some(0));
    }

    #[test]
    fn thread_sink_install_is_scoped_and_restorable() {
        let sink: Arc<dyn ProgressSink> = Arc::new(ChannelProgress::new(8));
        assert!(thread_progress_sink().is_none());
        let prev = set_thread_progress_sink(Some(Arc::clone(&sink)));
        assert!(prev.is_none());
        assert!(thread_progress_sink().is_some());
        let prev = set_thread_progress_sink(None);
        assert!(prev.is_some());
        assert!(thread_progress_sink().is_none());
    }
}
