//! E9 — §4.3: single-device sensing. One modified hub, several
//! unmodified neighbours, motion events recovered at their scripted
//! times (the Figure 5 caption's "sharp changes at times 9 and 32").

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::SensingHub;
use polite_wifi_harness::{Experiment, RunArgs};
use polite_wifi_sensing::{MotionScript, Phase};

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    // One target with motion at 9 s and 32 s, two more targets with
    // their own ground truth, all sensed by a single modified hub.
    let duration = 40_000_000u64;
    let mut fig5_caption = MotionScript::walk_by(duration, 9_000_000, 11_000_000);
    fig5_caption.phases.pop();
    fig5_caption.phases.extend([
        Phase {
            start_us: 11_000_000,
            end_us: 32_000_000,
            label: "idle".into(),
            intensity: 0.0,
        },
        Phase {
            start_us: 32_000_000,
            end_us: 34_000_000,
            label: "walk".into(),
            intensity: 0.8,
        },
        Phase {
            start_us: 34_000_000,
            end_us: duration,
            label: "idle".into(),
            intensity: 0.0,
        },
    ]);
    let scripts = vec![
        fig5_caption,
        MotionScript::idle(duration),
        MotionScript::walk_by(duration, 20_000_000, 23_000_000),
    ];

    let hub = SensingHub {
        faults: exp.args().faults,
        ..SensingHub::default()
    };
    let report = hub.run(&scripts);

    println!(
        "\ndevices modified: {}   participating: {}   rate per target: {} pps\n",
        report.devices_modified, report.devices_participating, hub.rate_pps_per_target
    );
    for (i, t) in report.targets.iter().enumerate() {
        let windows: Vec<String> = t
            .motion_windows_us
            .iter()
            .map(|(s, e)| format!("{:.1}–{:.1}s", *s as f64 / 1e6, *e as f64 / 1e6))
            .collect();
        println!(
            "target {i} ({})  {:>5} samples  motion: {}",
            t.target,
            t.samples,
            if windows.is_empty() {
                "none".into()
            } else {
                windows.join(", ")
            }
        );
        exp.metrics.record("samples_per_target", t.samples as f64);
        exp.obs.add("sensing.csi_samples", t.samples as u64);
        exp.obs
            .add("sensing.motion_windows", t.motion_windows_us.len() as u64);
    }

    println!();
    compare(
        "software modified on",
        "1 device",
        &format!("{} device", report.devices_modified),
    );
    compare(
        "events at ≈9 s and ≈32 s detected",
        "yes (Figure 5)",
        &format!(
            "{} windows on target 0",
            report.targets[0].motion_windows_us.len()
        ),
    );
    compare(
        "idle neighbour stays quiet",
        "yes",
        if report.targets[1].motion_windows_us.is_empty() {
            "yes"
        } else {
            "no"
        },
    );

    if exp.args().faults.is_clean() {
        assert_eq!(report.targets[0].motion_windows_us.len(), 2);
        assert!(report.targets[1].motion_windows_us.is_empty());
        assert_eq!(report.targets[2].motion_windows_us.len(), 1);
    }
    exp.finish_with_status(&spec.slug, &report)
}
