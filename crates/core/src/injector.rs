//! The fake-frame injector.
//!
//! Plays the role of the paper's Scapy program on the RTL8812AU dongle:
//! craft frames whose only valid field is the destination address, and
//! blast them at a victim. Works against any `polite-wifi-sim` simulator.

use polite_wifi_frame::{builder, Frame, MacAddr};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{NodeId, Simulator};
use serde::{Deserialize, Serialize};

/// What kind of fake frame to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionKind {
    /// Unencrypted null-function data frames (the paper's default).
    NullData,
    /// Fake RTS frames (the §2.2 fallback that defeats even a
    /// hypothetical validate-before-ACK MAC).
    Rts,
}

/// A planned injection stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// Victim receiver address.
    pub victim: MacAddr,
    /// Forged transmitter address (`aa:bb:bb:bb:bb:bb` in the paper).
    pub forged_ta: MacAddr,
    /// Frame kind.
    pub kind: InjectionKind,
    /// Injection rate in frames per second.
    pub rate_pps: u32,
    /// Start time in microseconds.
    pub start_us: u64,
    /// Stream duration in microseconds.
    pub duration_us: u64,
    /// Transmit bit rate.
    pub bitrate: BitRate,
}

impl InjectionPlan {
    /// The paper's keystroke-attack stream: 150 null frames per second.
    pub fn keystroke_stream(victim: MacAddr, duration_us: u64) -> InjectionPlan {
        InjectionPlan {
            victim,
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: 150,
            start_us: 0,
            duration_us,
            bitrate: BitRate::Mbps1,
        }
    }

    /// Number of frames the plan will inject.
    pub fn frame_count(&self) -> u64 {
        if self.rate_pps == 0 {
            return 0;
        }
        self.duration_us * self.rate_pps as u64 / 1_000_000
    }

    /// The injection timestamps, evenly spaced.
    pub fn schedule(&self) -> Vec<u64> {
        let n = self.frame_count();
        if n == 0 {
            return Vec::new();
        }
        let gap = 1_000_000 / self.rate_pps as u64;
        (0..n).map(|i| self.start_us + i * gap).collect()
    }

    /// Builds the fake frame this plan injects.
    pub fn frame(&self) -> Frame {
        match self.kind {
            InjectionKind::NullData => builder::fake_null_frame(self.victim, self.forged_ta),
            InjectionKind::Rts => builder::fake_rts(self.victim, self.forged_ta, 248),
        }
    }
}

/// Drives injection plans into a simulator.
#[derive(Debug, Clone, Copy)]
pub struct FakeFrameInjector {
    /// The attacking node.
    pub attacker: NodeId,
    /// When true the injector fires and forgets (no MAC retries), like
    /// the paper's Scapy tool. When false the attacker retries like a
    /// normal station.
    pub fire_and_forget: bool,
}

impl FakeFrameInjector {
    /// An injector at `attacker` with paper-faithful fire-and-forget
    /// behaviour.
    pub fn new(attacker: NodeId) -> FakeFrameInjector {
        FakeFrameInjector {
            attacker,
            fire_and_forget: true,
        }
    }

    /// Schedules every frame of `plan` into the simulator. Returns the
    /// number of frames scheduled.
    pub fn execute(&self, sim: &mut Simulator, plan: &InjectionPlan) -> u64 {
        sim.set_retries(self.attacker, !self.fire_and_forget);
        let schedule = plan.schedule();
        for &t in &schedule {
            sim.inject(t, self.attacker, plan.frame(), plan.bitrate);
        }
        schedule.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_mac::StationConfig;
    use polite_wifi_sim::SimConfig;

    fn victim_mac() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn schedule_is_evenly_spaced() {
        let plan = InjectionPlan {
            victim: victim_mac(),
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: 100,
            start_us: 500,
            duration_us: 1_000_000,
            bitrate: BitRate::Mbps1,
        };
        let s = plan.schedule();
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 500);
        assert!(s.windows(2).all(|w| w[1] - w[0] == 10_000));
    }

    #[test]
    fn zero_rate_plans_nothing() {
        let plan = InjectionPlan {
            victim: victim_mac(),
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: 0,
            start_us: 0,
            duration_us: 1_000_000,
            bitrate: BitRate::Mbps1,
        };
        assert_eq!(plan.frame_count(), 0);
        assert!(plan.schedule().is_empty());
    }

    #[test]
    fn keystroke_stream_matches_paper_rate() {
        let plan = InjectionPlan::keystroke_stream(victim_mac(), 10_000_000);
        assert_eq!(plan.rate_pps, 150);
        assert_eq!(plan.frame_count(), 1500);
        assert_eq!(plan.forged_ta, MacAddr::FAKE);
    }

    #[test]
    fn executes_against_simulator() {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let injector = FakeFrameInjector::new(attacker);
        let plan = InjectionPlan {
            victim: victim_mac(),
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: 50,
            start_us: 0,
            duration_us: 1_000_000,
            bitrate: BitRate::Mbps1,
        };
        let n = injector.execute(&mut sim, &plan);
        assert_eq!(n, 50);
        sim.run_until(2_000_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 50);
    }

    #[test]
    fn rts_plan_elicits_cts() {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let plan = InjectionPlan {
            victim: victim_mac(),
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::Rts,
            rate_pps: 20,
            start_us: 0,
            duration_us: 500_000,
            bitrate: BitRate::Mbps1,
        };
        FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
        sim.run_until(1_000_000);
        assert_eq!(sim.station(victim).stats.cts_sent, 10);
        assert_eq!(sim.station(victim).stats.acks_sent, 0);
    }
}
