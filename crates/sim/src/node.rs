//! A node: a station plus its radio, queue and bookkeeping.
//!
//! Only *cold* state lives here — fields the hot paths (carrier sense,
//! arrival fan-out, collision scans) touch per event are in the SoA
//! [`NodeArena`](crate::arena::NodeArena), indexed by [`NodeId`].

use crate::ledger::ActivityLedger;
use polite_wifi_frame::Frame;
use polite_wifi_mac::csma::Csma;
use polite_wifi_mac::rate_control::Arf;
use polite_wifi_mac::Station;
use polite_wifi_pcap::capture::Capture;
use polite_wifi_phy::rate::BitRate;
use std::collections::VecDeque;

/// Index of a node within the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A frame awaiting contended transmission.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    /// The frame.
    pub frame: Frame,
    /// Rate to transmit at.
    pub rate: BitRate,
    /// How many times it has been (re)transmitted already.
    pub attempts: u8,
    /// Causal trace the frame belongs to, when sampled: injected frames
    /// open their own trace, MAC-enqueued reactions inherit the trace of
    /// the frame that provoked them.
    pub trace: Option<u64>,
}

/// A pending ACK wait at a transmitter.
#[derive(Debug, Clone)]
pub struct AckWait {
    /// Token matching the `AckTimeout` event.
    pub token: u64,
    /// Set when the ACK arrived before the timeout.
    pub satisfied: bool,
    /// When the soliciting frame's transmission began — the start of the
    /// `frame.exchange` span the response closes.
    pub started_us: u64,
}

/// One radio node in the simulation (cold state).
#[derive(Debug)]
pub struct Node {
    /// The MAC state machine.
    pub station: Station,
    /// Frames awaiting CSMA transmission.
    pub tx_queue: VecDeque<QueuedFrame>,
    /// DCF backoff state.
    pub csma: Csma,
    /// Optional transmit rate adaptation; when set, queued frames ride
    /// the ARF rate instead of the rate they were injected with.
    pub rate_ctrl: Option<Arf>,
    /// Whether a TxAttempt event is already scheduled.
    pub tx_attempt_pending: bool,
    /// Monitor mode: capture *all* detectable frames, not just own.
    pub monitor: bool,
    /// Whether transmitter-side retries are enabled (the paper's Scapy
    /// injector fires and forgets; normal stations retry).
    pub retries_enabled: bool,
    /// Per-node capture tap.
    pub capture: Capture,
    /// Radio-state accounting for the energy model.
    pub ledger: ActivityLedger,
    /// Count of frames this node failed to send after all retries.
    pub tx_failures: u64,
    /// Count of frames transmitted (including retries).
    pub tx_count: u64,
    /// Count of ACKs this node received for its own transmissions.
    pub acks_received: u64,
    /// Count of CTS responses received for its own RTS frames.
    pub cts_received: u64,
    /// When the radio last changed base state (doze/wake), for dwell
    /// histograms.
    pub last_base_change_us: u64,
}

impl Node {
    /// Builds a node around a station.
    pub fn new(station: Station) -> Node {
        let band = station.config().band;
        let awake = station.is_awake();
        Node {
            station,
            tx_queue: VecDeque::new(),
            csma: Csma::new(band),
            rate_ctrl: None,
            tx_attempt_pending: false,
            monitor: false,
            retries_enabled: true,
            capture: Capture::new(),
            ledger: ActivityLedger::new(0, awake),
            tx_failures: 0,
            tx_count: 0,
            acks_received: 0,
            cts_received: 0,
            last_base_change_us: 0,
        }
    }
}
