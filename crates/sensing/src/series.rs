//! Time-aligned CSI series.

use polite_wifi_phy::csi::CsiSnapshot;
use serde::{Deserialize, Serialize};

/// A sequence of CSI snapshots with their capture timestamps — what the
/// attacker accumulates from the victim's ACK stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsiSeries {
    /// Capture timestamps in microseconds, ascending.
    pub times_us: Vec<u64>,
    /// One snapshot per timestamp.
    pub snapshots: Vec<CsiSnapshot>,
}

impl CsiSeries {
    /// An empty series.
    pub fn new() -> CsiSeries {
        CsiSeries::default()
    }

    /// Appends a snapshot captured at `t_us`.
    pub fn push(&mut self, t_us: u64, snapshot: CsiSnapshot) {
        debug_assert!(self.times_us.last().map_or(true, |&last| t_us >= last));
        self.times_us.push(t_us);
        self.snapshots.push(snapshot);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times_us.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.times_us.is_empty()
    }

    /// Amplitude time series of one subcarrier.
    pub fn subcarrier_amplitudes(&self, subcarrier: usize) -> Vec<f64> {
        self.snapshots
            .iter()
            .map(|s| s.amplitude(subcarrier))
            .collect()
    }

    /// Mean sampling rate in Hz (the paper injects at 150 fake frames/s,
    /// so a healthy attack yields ≈150 Hz here).
    pub fn sample_rate_hz(&self) -> f64 {
        if self.times_us.len() < 2 {
            return 0.0;
        }
        let span_us = (self.times_us[self.times_us.len() - 1] - self.times_us[0]) as f64;
        if span_us <= 0.0 {
            return 0.0;
        }
        (self.times_us.len() - 1) as f64 * 1e6 / span_us
    }

    /// Samples whose timestamps fall within `[from_us, to_us)`.
    pub fn window(&self, from_us: u64, to_us: u64) -> CsiSeries {
        let mut out = CsiSeries::new();
        for (i, &t) in self.times_us.iter().enumerate() {
            if t >= from_us && t < to_us {
                out.push(t, self.snapshots[i].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_phy::csi::CsiChannel;

    fn series(n: usize, gap_us: u64) -> CsiSeries {
        let mut ch = CsiChannel::new(1);
        let mut s = CsiSeries::new();
        for i in 0..n {
            s.push(i as u64 * gap_us, ch.sample(0.2));
        }
        s
    }

    #[test]
    fn push_and_extract() {
        let s = series(10, 6_667);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.subcarrier_amplitudes(17).len(), 10);
    }

    #[test]
    fn sample_rate_estimation() {
        // 150 Hz → 6667 µs gaps.
        let s = series(151, 6_667);
        let rate = s.sample_rate_hz();
        assert!((149.0..151.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn sample_rate_degenerate_cases() {
        assert_eq!(CsiSeries::new().sample_rate_hz(), 0.0);
        assert_eq!(series(1, 100).sample_rate_hz(), 0.0);
    }

    #[test]
    fn window_selects_half_open_range() {
        let s = series(10, 1_000);
        let w = s.window(2_000, 5_000);
        assert_eq!(w.len(), 3);
        assert_eq!(w.times_us, vec![2_000, 3_000, 4_000]);
    }
}
