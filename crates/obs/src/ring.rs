//! Ring-buffered event recorder.
//!
//! Keeps the **most recent** N point events (label + virtual timestamp +
//! track) in bounded memory, counting how many older events were evicted.
//! Useful for "what led up to this" forensics on long runs where a full
//! event log would be unbounded: the ring always holds the tail.

use std::collections::VecDeque;

/// One point event on the virtual-time axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual timestamp in microseconds.
    pub ts_us: u64,
    /// Track the event happened on (node id in simulator events).
    pub track: u64,
    /// Short label (e.g. `ack.timeout`, `frame.dropped`).
    pub label: String,
}

/// A fixed-capacity ring of the most recent events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RingLog {
    buf: VecDeque<EventRecord>,
    capacity: usize,
    /// Events evicted to make room (total recorded = `len() + evicted`).
    pub evicted: u64,
}

impl RingLog {
    /// A ring holding at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> RingLog {
        RingLog {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ts_us: u64, track: u64, label: &str) {
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(EventRecord {
            ts_us,
            track,
            label: label.to_string(),
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_and_counts_evictions() {
        let mut ring = RingLog::new(3);
        for i in 0..5u64 {
            ring.record(i * 10, 0, "tick");
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted, 2);
        let stamps: Vec<u64> = ring.events().map(|e| e.ts_us).collect();
        assert_eq!(stamps, vec![20, 30, 40]);
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut ring = RingLog::new(0);
        ring.record(1, 0, "x");
        assert!(ring.is_empty());
        assert_eq!(ring.evicted, 1);
    }
}
