//! Deterministic parallel trial execution.
//!
//! The [`Runner`] fans independent units of work across a scoped worker
//! pool. Two properties make parallelism invisible to results:
//!
//! 1. every unit derives its own seed from the base seed and its index
//!    ([`derive_trial_seed`]), never from shared RNG state, and
//! 2. results are merged **in index order** after all workers join,
//!
//! so a 1-worker run and an N-worker run of the same base seed produce
//! byte-identical reports.

use polite_wifi_sim::FaultProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the seed for one trial (or shard) from the experiment's base
/// seed. XOR with the index is injective for a fixed base, so no two
/// trials of a run ever share a seed.
pub fn derive_trial_seed(base_seed: u64, index: u64) -> u64 {
    base_seed ^ index
}

/// One trial that panicked (or was otherwise lost) and degraded
/// gracefully: the run continued, and this record landed in the result
/// envelope instead of a process abort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialFailure {
    /// Trial index in `0..trials`.
    pub trial: u64,
    /// The derived seed the trial ran under — enough to replay it alone.
    pub seed: u64,
    /// Failure class (currently always `"panic"`).
    pub kind: String,
    /// The panic payload, when it was a string.
    pub detail: String,
}

/// Renders a panic payload as text for a [`TrialFailure`].
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-trial context handed to the trial closure.
pub struct TrialCtx {
    /// Trial index in `0..trials`.
    pub index: usize,
    /// This trial's derived seed; feed it to anything seedable.
    pub seed: u64,
    /// A ChaCha8 stream seeded from [`TrialCtx::seed`], for trial-local
    /// randomness (positions, jitter) that must not depend on scheduling.
    pub rng: ChaCha8Rng,
}

/// A scoped worker pool executing independent units of work.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    workers: usize,
}

impl Runner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Runner {
        Runner {
            workers: workers.max(1),
        }
    }

    /// Worker count this runner fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `count` units of work, calling `work(index)` for each, and
    /// returns the results in index order regardless of which worker
    /// ran which unit or in what order they finished.
    pub fn run_indexed<T, F>(&self, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        if self.workers == 1 || count == 1 {
            return (0..count).map(&work).collect();
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
        let threads = self.workers.min(count);
        // Cancellation is thread-local; carry the spawning thread's
        // token into every scoped worker so a supervisor raising it
        // reaches trials wherever they run.
        let token = crate::cancel::current_token();

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let prev = crate::cancel::install_token(token.clone());
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= count {
                            break;
                        }
                        local.push((idx, work(idx)));
                    }
                    collected.lock().unwrap().extend(local);
                    let _ = crate::cancel::install_token(prev);
                });
            }
        })
        .expect("runner worker panicked");

        let mut results = collected.into_inner().unwrap();
        results.sort_by_key(|(idx, _)| *idx);
        debug_assert_eq!(results.len(), count);
        results.into_iter().map(|(_, value)| value).collect()
    }

    /// Runs `trials` independent trials of an experiment. Each trial
    /// gets a [`TrialCtx`] with its derived seed and a fresh ChaCha8
    /// stream; results come back in trial order.
    pub fn run_trials<T, F>(&self, base_seed: u64, trials: usize, trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        self.run_indexed(trials, |index| {
            let seed = derive_trial_seed(base_seed, index as u64);
            trial(TrialCtx {
                index,
                seed,
                rng: ChaCha8Rng::seed_from_u64(seed),
            })
        })
    }

    /// [`run_indexed`](Self::run_indexed) with graceful degradation:
    /// each unit runs under `catch_unwind`, a panicking unit yields
    /// `None` in its slot plus an `(index, message)` record, and every
    /// other unit still completes. Both vectors are in index order, so
    /// the worker-invariance guarantee extends to failures.
    pub fn run_indexed_checked<T, F>(
        &self,
        count: usize,
        work: F,
    ) -> (Vec<Option<T>>, Vec<(usize, String)>)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let raw: Vec<Result<T, String>> = self.run_indexed(count, |index| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(index)))
                .map_err(panic_message)
        });
        let mut results = Vec::with_capacity(count);
        let mut failures = Vec::new();
        for (index, outcome) in raw.into_iter().enumerate() {
            match outcome {
                Ok(value) => results.push(Some(value)),
                Err(message) => {
                    results.push(None);
                    failures.push((index, message));
                }
            }
        }
        (results, failures)
    }

    /// [`run_trials`](Self::run_trials) with graceful degradation: a
    /// panicking trial becomes a structured [`TrialFailure`] (carrying
    /// its derived seed for solo replay) instead of killing the run.
    pub fn run_trials_checked<T, F>(
        &self,
        base_seed: u64,
        trials: usize,
        trial: F,
    ) -> (Vec<Option<T>>, Vec<TrialFailure>)
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        let (results, raw) = self.run_indexed_checked(trials, |index| {
            let seed = derive_trial_seed(base_seed, index as u64);
            trial(TrialCtx {
                index,
                seed,
                rng: ChaCha8Rng::seed_from_u64(seed),
            })
        });
        let failures = raw
            .into_iter()
            .map(|(index, detail)| TrialFailure {
                trial: index as u64,
                seed: derive_trial_seed(base_seed, index as u64),
                kind: "panic".to_string(),
                detail,
            })
            .collect();
        (results, failures)
    }
}

/// Command-line arguments shared by every experiment binary.
///
/// Recognised flags: `--trials N`, `--workers M`, `--seed S`, `--quick`,
/// `--faults PROFILE`, `--max-trial-failures N`, `--allow-partial`,
/// `--trace-out FILE`, `--inject-trial-panic N`, `--progress`,
/// `--quiet`. Malformed invocations
/// abort with a usage message rather than being silently accepted — and
/// *all* problems (unknown flags, duplicates, bad values, out-of-range
/// numbers) are reported in one aggregated message, so a typo'd
/// invocation is fixed in one round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    pub trials: usize,
    pub workers: usize,
    pub seed: u64,
    pub quick: bool,
    /// Where to write the Chrome-trace span dump, if anywhere. Setting
    /// this also turns span recording on for the whole run.
    pub trace_out: Option<std::path::PathBuf>,
    /// Fault profile every scenario of the run is simulated under.
    pub faults: FaultProfile,
    /// Hard budget on gracefully-degraded trials: exceeding it fails the
    /// run even under `--allow-partial`. `None` = unbounded.
    pub max_trial_failures: Option<usize>,
    /// Exit 0 despite degraded trials or quarantined targets (as long
    /// as the `--max-trial-failures` budget holds).
    pub allow_partial: bool,
    /// Test hook: panic inside trial N to exercise graceful degradation
    /// end-to-end. The panic message is deterministic, so envelopes
    /// containing the failure stay byte-identical across worker counts.
    pub inject_trial_panic: Option<usize>,
    /// Emit a rate-limited progress heartbeat on stderr (trials done,
    /// frames/s, frame-fate counters).
    pub progress: bool,
    /// Silence advisory stderr diagnostics (see [`crate::sink`]).
    pub quiet: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            trials: 1,
            workers: 1,
            seed: 7,
            quick: false,
            trace_out: None,
            faults: FaultProfile::Clean,
            max_trial_failures: None,
            allow_partial: false,
            inject_trial_panic: None,
            progress: false,
            quiet: false,
        }
    }
}

const USAGE: &str = "usage: [--trials N] [--workers M] [--seed S] [--quick] \
[--faults clean|urban-drive|congested|flaky-dongle] [--max-trial-failures N] \
[--allow-partial] [--trace-out FILE] [--inject-trial-panic N] [--progress] \
[--quiet]";

impl RunArgs {
    /// Parses flags from an iterator (first element must already be
    /// stripped of the program name). Returns one aggregated error
    /// message covering every problem on malformed input.
    pub fn parse<I: Iterator<Item = String>>(
        mut args: I,
        defaults: RunArgs,
    ) -> Result<RunArgs, String> {
        let mut out = defaults;
        let mut unknown: Vec<String> = Vec::new();
        let mut problems: Vec<String> = Vec::new();
        let mut seen: Vec<&'static str> = Vec::new();
        while let Some(arg) = args.next() {
            // Flags are single-occurrence: a duplicate almost always
            // means a mangled command line, so it is an error, not a
            // silent last-one-wins.
            let mut once = |flag: &'static str, problems: &mut Vec<String>| {
                if seen.contains(&flag) {
                    problems.push(format!("duplicate flag {flag}"));
                } else {
                    seen.push(flag);
                }
            };
            match arg.as_str() {
                "--trials" => {
                    once("--trials", &mut problems);
                    match next_value(&mut args, "--trials") {
                        Ok(v) => out.trials = v,
                        Err(e) => problems.push(e),
                    }
                }
                "--workers" => {
                    once("--workers", &mut problems);
                    match next_value(&mut args, "--workers") {
                        Ok(v) => out.workers = v,
                        Err(e) => problems.push(e),
                    }
                }
                "--seed" => {
                    once("--seed", &mut problems);
                    match next_value(&mut args, "--seed") {
                        Ok(v) => out.seed = v,
                        Err(e) => problems.push(e),
                    }
                }
                "--quick" => {
                    once("--quick", &mut problems);
                    out.quick = true;
                }
                "--allow-partial" => {
                    once("--allow-partial", &mut problems);
                    out.allow_partial = true;
                }
                "--progress" => {
                    once("--progress", &mut problems);
                    out.progress = true;
                }
                "--quiet" => {
                    once("--quiet", &mut problems);
                    out.quiet = true;
                }
                "--faults" => {
                    once("--faults", &mut problems);
                    match next_value::<FaultProfile, _>(&mut args, "--faults") {
                        Ok(v) => out.faults = v,
                        Err(e) => problems.push(e),
                    }
                }
                "--max-trial-failures" => {
                    once("--max-trial-failures", &mut problems);
                    match next_value(&mut args, "--max-trial-failures") {
                        Ok(v) => out.max_trial_failures = Some(v),
                        Err(e) => problems.push(e),
                    }
                }
                "--inject-trial-panic" => {
                    once("--inject-trial-panic", &mut problems);
                    match next_value(&mut args, "--inject-trial-panic") {
                        Ok(v) => out.inject_trial_panic = Some(v),
                        Err(e) => problems.push(e),
                    }
                }
                "--trace-out" => {
                    once("--trace-out", &mut problems);
                    match args.next() {
                        Some(raw) => out.trace_out = Some(std::path::PathBuf::from(raw)),
                        None => problems.push("--trace-out needs a value".to_string()),
                    }
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => unknown.push(format!("`{other}`")),
            }
        }
        if out.trials == 0 {
            problems.push("--trials must be at least 1".to_string());
        }
        if out.workers == 0 {
            problems.push("--workers must be at least 1".to_string());
        }
        if let Some(n) = out.inject_trial_panic {
            if n >= out.trials {
                problems.push(format!(
                    "--inject-trial-panic {n} is outside the run's 0..{} trial range",
                    out.trials
                ));
            }
        }
        if unknown.is_empty() && problems.is_empty() {
            return Ok(out);
        }
        let mut message = String::new();
        if !unknown.is_empty() {
            let plural = if unknown.len() == 1 { "" } else { "s" };
            message = format!("unknown flag{plural} {}", unknown.join(", "));
        }
        for problem in problems {
            if !message.is_empty() {
                message.push_str("; ");
            }
            message.push_str(&problem);
        }
        message.push_str(" (try --help)");
        Err(message)
    }

    /// Parses the process's own arguments, exiting with a message on
    /// malformed input.
    pub fn from_env(defaults: RunArgs) -> RunArgs {
        match Self::parse(std::env::args().skip(1), defaults) {
            Ok(args) => args,
            Err(msg) => {
                // Usage errors must print even under --quiet (the flag
                // may not even have parsed), so this is an alert.
                crate::sink::alert(&msg);
                std::process::exit(2);
            }
        }
    }

    /// A runner sized to these arguments.
    pub fn runner(&self) -> Runner {
        Runner::new(self.workers)
    }
}

fn next_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    args: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let runner = Runner::new(workers);
            let out = runner.run_indexed(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn trial_streams_are_scheduling_independent() {
        let sample = |workers: usize| -> Vec<u64> {
            Runner::new(workers).run_trials(99, 16, |mut trial| trial.rng.gen::<u64>())
        };
        let one = sample(1);
        assert_eq!(one, sample(4));
        assert_eq!(one, sample(16));
        // Distinct trials see distinct streams.
        assert!(one.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn derive_trial_seed_is_injective_per_base() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_trial_seed(base, i)));
        }
    }

    #[test]
    fn parse_run_args() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        assert_eq!(
            parse(&["--trials", "8", "--workers", "4", "--seed", "3", "--quick"]).unwrap(),
            RunArgs {
                trials: 8,
                workers: 4,
                seed: 3,
                quick: true,
                ..RunArgs::default()
            }
        );
        assert_eq!(parse(&[]).unwrap(), RunArgs::default());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "zero"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert_eq!(
            parse(&["--trace-out", "/tmp/t.json"]).unwrap().trace_out,
            Some(std::path::PathBuf::from("/tmp/t.json"))
        );
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn parse_fault_and_degradation_flags() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        let args = parse(&[
            "--faults",
            "urban-drive",
            "--trials",
            "4",
            "--max-trial-failures",
            "2",
            "--allow-partial",
            "--inject-trial-panic",
            "1",
        ])
        .unwrap();
        assert_eq!(args.faults, FaultProfile::UrbanDrive);
        assert_eq!(args.max_trial_failures, Some(2));
        assert!(args.allow_partial);
        assert_eq!(args.inject_trial_panic, Some(1));
        assert!(parse(&["--faults", "warp-drive"]).is_err());
        assert!(parse(&["--faults"]).is_err());
        let args = parse(&["--progress", "--quiet"]).unwrap();
        assert!(args.progress);
        assert!(args.quiet);
        assert!(parse(&["--quiet", "--quiet"]).is_err());
        // An injected panic must land inside the run.
        let err = parse(&["--inject-trial-panic", "3"]).unwrap_err();
        assert!(err.contains("--inject-trial-panic 3"), "{err}");
    }

    #[test]
    fn parse_rejects_duplicates_and_bad_ranges_in_one_message() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        let err = parse(&[
            "--frobnicate",
            "--seed",
            "1",
            "--seed",
            "2",
            "--workers",
            "0",
        ])
        .unwrap_err();
        // One aggregated message, unknown flags first (matching the
        // existing unknown-flag contract), then the rest.
        assert!(err.starts_with("unknown flag `--frobnicate`"), "{err}");
        assert!(err.contains("duplicate flag --seed"), "{err}");
        assert!(err.contains("--workers must be at least 1"), "{err}");
        assert!(err.ends_with("(try --help)"), "{err}");
        // Duplicates alone are also fatal.
        let err = parse(&["--quick", "--quick"]).unwrap_err();
        assert!(err.starts_with("duplicate flag --quick"), "{err}");
    }

    #[test]
    fn checked_trials_degrade_gracefully_and_stay_ordered() {
        for workers in [1, 3] {
            let (results, failures) = Runner::new(workers).run_trials_checked(7, 8, |trial| {
                if trial.index == 2 || trial.index == 5 {
                    panic!("boom at {}", trial.index);
                }
                trial.index * 10
            });
            assert_eq!(results.len(), 8);
            assert_eq!(results[2], None);
            assert_eq!(results[5], None);
            assert_eq!(results[0], Some(0));
            assert_eq!(results[7], Some(70));
            assert_eq!(failures.len(), 2);
            assert_eq!(failures[0].trial, 2);
            assert_eq!(failures[0].seed, derive_trial_seed(7, 2));
            assert_eq!(failures[0].kind, "panic");
            assert_eq!(failures[0].detail, "boom at 2");
            assert_eq!(failures[1].trial, 5);
        }
    }

    #[test]
    fn parse_reports_all_unknown_flags_at_once() {
        let parse =
            |argv: &[&str]| RunArgs::parse(argv.iter().map(|s| s.to_string()), RunArgs::default());
        let err = parse(&["--frobnicate", "--trials", "3", "--wrokers", "2"]).unwrap_err();
        assert!(err.contains("`--frobnicate`"), "{err}");
        assert!(err.contains("`--wrokers`"), "{err}");
        assert!(err.contains("`2`"), "{err}"); // --wrokers ate no value
        assert!(err.starts_with("unknown flags"), "{err}");
        // A single unknown flag stays singular.
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.starts_with("unknown flag `--frobnicate`"), "{err}");
    }

    #[test]
    fn work_actually_fans_out_across_os_threads() {
        // A barrier with as many parties as workers can only release if
        // every unit runs on its own thread concurrently — so this hangs
        // (and the harness timeout fails it) unless the fan-out is real.
        // Wall-clock speedup depends on the host's core count; thread
        // fan-out does not, so this is the portable half of the claim.
        let workers = 4;
        let barrier = std::sync::Barrier::new(workers);
        let ids = Runner::new(workers).run_indexed(workers, |_| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), workers);
    }

    #[test]
    fn panicking_work_unit_propagates() {
        let result = std::panic::catch_unwind(|| {
            Runner::new(3).run_indexed(8, |i| {
                if i == 5 {
                    panic!("unit failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
