//! The 802.11 frame check sequence (FCS).
//!
//! The FCS is a CRC-32 (IEEE 802.3 polynomial, reflected, initial and final
//! XOR `0xFFFF_FFFF`) appended little-endian to every over-the-air frame.
//! Polite WiFi hinges on this field: the receiver's PHY/low-MAC checks
//! *only* the FCS and receiver address before acknowledging — frame
//! contents are never validated within the SIFS deadline.

/// Reflected CRC-32 polynomial (bit-reversed 0x04C11DB7).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 over `data` as used by the 802.11 FCS.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Appends the 4-byte little-endian FCS to `buf` in place.
pub fn append_fcs(buf: &mut Vec<u8>) {
    let fcs = crc32(buf);
    buf.extend_from_slice(&fcs.to_le_bytes());
}

/// Splits a buffer into `(body, carried_fcs)` and reports whether the FCS
/// matches. Returns `None` if the buffer is shorter than the FCS itself.
pub fn check_fcs(buf: &[u8]) -> Option<FcsCheck<'_>> {
    if buf.len() < 4 {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let carried = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let computed = crc32(body);
    Some(FcsCheck {
        body,
        carried,
        computed,
    })
}

/// Result of verifying a trailing FCS.
#[derive(Debug, Clone, Copy)]
pub struct FcsCheck<'a> {
    /// Frame bytes without the FCS.
    pub body: &'a [u8],
    /// FCS value carried by the frame.
    pub carried: u32,
    /// FCS value computed over `body`.
    pub computed: u32,
}

impl FcsCheck<'_> {
    /// True when the carried and computed values agree.
    pub fn is_valid(&self) -> bool {
        self.carried == self.computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC-32 check value: CRC of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_is_zero() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn append_then_check_round_trips() {
        let mut buf = vec![0x48, 0x11, 0x3a, 0x01, 0xaa, 0xbb];
        append_fcs(&mut buf);
        let check = check_fcs(&buf).unwrap();
        assert!(check.is_valid());
        assert_eq!(check.body, &buf[..buf.len() - 4]);
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut buf = (0u8..64).collect::<Vec<_>>();
        append_fcs(&mut buf);
        for byte in 0..buf.len() - 4 {
            for bit in 0..8 {
                let mut corrupted = buf.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    !check_fcs(&corrupted).unwrap().is_valid(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn too_short_buffer_yields_none() {
        assert!(check_fcs(&[1, 2, 3]).is_none());
    }

    #[test]
    fn exactly_four_bytes_checks_empty_body() {
        // CRC of the empty message is 0, so [0,0,0,0] is a valid FCS frame
        // with an empty body.
        let check = check_fcs(&[0, 0, 0, 0]).unwrap();
        assert!(check.is_valid());
        assert!(check.body.is_empty());
    }
}
