//! Channel State Information (CSI) with motion-driven dynamics.
//!
//! This is the synthetic stand-in for the ESP32 CSI measurements of
//! Section 4.1 / Figure 5. The channel is a tapped-delay-line multipath
//! model; the frequency response across OFDM subcarriers is
//!
//! ```text
//! H[k] = Σᵢ (aᵢ + sᵢ(t)) · e^(−j2π·fₖ·τᵢ)
//! ```
//!
//! where `aᵢ` are static tap gains (the room) and `sᵢ(t)` are scattered
//! components driven by human motion: an AR(1) process whose innovation is
//! scaled by the instantaneous *motion intensity* in `[0, 1]`. With
//! intensity 0 the response is rock-stable (plus measurement noise), which
//! is exactly the paper's "tablet on the ground" segment; picking the
//! device up (intensity ≈ 1) produces large swings; typing produces
//! mid-scale fluctuations.

use crate::complex::Complex;
use crate::fading::cn;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Number of usable subcarriers reported for a legacy 20 MHz channel
/// (as the ESP32 does: 52 data + 4 pilots).
pub const DEFAULT_SUBCARRIERS: usize = 56;

/// The amplitude/phase of every subcarrier at one instant — one row of
/// Figure 5 per subcarrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsiSnapshot {
    /// Per-subcarrier amplitude (linear).
    pub amplitudes: Vec<f64>,
    /// Per-subcarrier phase in radians.
    pub phases: Vec<f64>,
}

impl CsiSnapshot {
    /// Number of subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.amplitudes.len()
    }

    /// Amplitude of one subcarrier (the paper plots subcarrier 17).
    pub fn amplitude(&self, subcarrier: usize) -> f64 {
        self.amplitudes[subcarrier]
    }
}

/// Configuration of the synthetic CSI channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiConfig {
    /// Number of OFDM subcarriers to report.
    pub subcarriers: usize,
    /// Number of multipath taps.
    pub taps: usize,
    /// AR(1) memory of the scattered components, calibrated for ~150 Hz
    /// sampling (the paper's fake-frame rate).
    pub rho: f64,
    /// Scale of motion-driven scattering relative to the static taps.
    pub scatter_scale: f64,
    /// Std of additive measurement noise on each subcarrier amplitude.
    pub noise_std: f64,
}

impl Default for CsiConfig {
    fn default() -> Self {
        CsiConfig {
            subcarriers: DEFAULT_SUBCARRIERS,
            taps: 8,
            rho: 0.9,
            scatter_scale: 0.5,
            noise_std: 0.01,
        }
    }
}

/// A stateful CSI channel between one attacker and one victim.
///
/// Call [`CsiChannel::sample`] once per received ACK, passing the motion
/// intensity at that instant; the returned snapshot is what the attacker's
/// radio would report.
#[derive(Debug, Clone)]
pub struct CsiChannel {
    config: CsiConfig,
    rng: ChaCha8Rng,
    /// Static tap gains — the room's geometry.
    static_taps: Vec<Complex>,
    /// Motion-driven scattered components, AR(1)-evolved.
    scatter: Vec<Complex>,
    /// Tap delays in units of the sample period (fractional allowed).
    delays: Vec<f64>,
}

impl CsiChannel {
    /// Builds a channel with the default configuration.
    pub fn new(seed: u64) -> CsiChannel {
        CsiChannel::with_config(seed, CsiConfig::default())
    }

    /// Builds a channel with an explicit configuration.
    pub fn with_config(seed: u64, config: CsiConfig) -> CsiChannel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut static_taps = Vec::with_capacity(config.taps);
        let mut delays = Vec::with_capacity(config.taps);
        for i in 0..config.taps {
            // Exponentially decaying power-delay profile.
            let power = (-(i as f64) / 3.0).exp();
            static_taps.push(cn(&mut rng, (power / 2.0).sqrt()));
            delays.push(i as f64 + 0.3 * (i as f64).sin());
        }
        // Normalise so the mean per-subcarrier power is about 1.
        let total: f64 = static_taps.iter().map(|t| t.norm_sq()).sum();
        let scale = (1.0 / total.max(1e-9)).sqrt();
        for t in &mut static_taps {
            *t = t.scale(scale);
        }
        let scatter = vec![Complex::ZERO; config.taps];
        CsiChannel {
            config,
            rng,
            static_taps,
            scatter,
            delays,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CsiConfig {
        &self.config
    }

    /// Advances the channel by one sample interval under `motion_intensity`
    /// in `[0, 1]` and returns the CSI the receiver would measure.
    pub fn sample(&mut self, motion_intensity: f64) -> CsiSnapshot {
        let m = motion_intensity.clamp(0.0, 1.0);
        let cfg = self.config;
        // Evolve the scattered components: decay toward zero, excited by
        // motion-scaled innovations.
        let innovation_sigma = cfg.scatter_scale * (1.0 - cfg.rho * cfg.rho).sqrt();
        for (i, s) in self.scatter.iter_mut().enumerate() {
            let tap_weight = self.static_taps[i].abs().max(0.05);
            let drive = cn(&mut self.rng, innovation_sigma * tap_weight * m);
            *s = s.scale(cfg.rho) + drive;
        }

        let n = cfg.subcarriers;
        let mut amplitudes = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(n);
        for k in 0..n {
            // Normalised subcarrier frequency in [-0.5, 0.5).
            let fk = (k as f64 - n as f64 / 2.0) / n as f64;
            let mut h = Complex::ZERO;
            for i in 0..cfg.taps {
                let gain = self.static_taps[i] + self.scatter[i];
                let rot =
                    Complex::from_polar(1.0, -2.0 * std::f64::consts::PI * fk * self.delays[i]);
                h += gain * rot;
            }
            let noise = cn(&mut self.rng, cfg.noise_std);
            let observed = h + noise;
            amplitudes.push(observed.abs());
            phases.push(observed.arg());
        }
        CsiSnapshot { amplitudes, phases }
    }

    /// Convenience: samples `n` snapshots at a constant motion intensity
    /// and returns one subcarrier's amplitude series.
    pub fn amplitude_series(
        &mut self,
        n: usize,
        motion_intensity: f64,
        subcarrier: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| self.sample(motion_intensity).amplitude(subcarrier))
            .collect()
    }
}

/// Sample standard deviation, shared by tests and the sensing crate's
/// calibration checks.
pub fn std_dev(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let var =
        series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (series.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_configured_subcarriers() {
        let mut ch = CsiChannel::new(1);
        let s = ch.sample(0.0);
        assert_eq!(s.num_subcarriers(), DEFAULT_SUBCARRIERS);
        assert_eq!(s.amplitudes.len(), s.phases.len());
    }

    #[test]
    fn idle_channel_is_stable() {
        let mut ch = CsiChannel::new(2);
        let series = ch.amplitude_series(300, 0.0, 17);
        let sd = std_dev(&series);
        assert!(sd < 0.05, "idle std {sd}");
    }

    #[test]
    fn motion_causes_large_fluctuations() {
        let mut ch = CsiChannel::new(3);
        // Settle, then compare idle vs full motion.
        let idle = std_dev(&ch.amplitude_series(300, 0.0, 17));
        let moving = std_dev(&ch.amplitude_series(300, 1.0, 17));
        assert!(
            moving > 5.0 * idle,
            "moving {moving} should dwarf idle {idle}"
        );
    }

    #[test]
    fn fluctuation_scales_with_intensity() {
        // The property Figure 5 depends on: pickup > typing > hold > idle.
        let mut ch = CsiChannel::new(4);
        let idle = std_dev(&ch.amplitude_series(400, 0.0, 17));
        let hold = std_dev(&ch.amplitude_series(400, 0.1, 17));
        let typing = std_dev(&ch.amplitude_series(400, 0.45, 17));
        let pickup = std_dev(&ch.amplitude_series(400, 1.0, 17));
        assert!(idle < hold, "idle {idle} < hold {hold}");
        assert!(hold < typing, "hold {hold} < typing {typing}");
        assert!(typing < pickup, "typing {typing} < pickup {pickup}");
    }

    #[test]
    fn channel_settles_after_motion_stops() {
        let mut ch = CsiChannel::new(5);
        let _ = ch.amplitude_series(200, 1.0, 17);
        // Let the AR(1) memory decay, then re-measure stability.
        let _ = ch.amplitude_series(200, 0.0, 17);
        let settled = std_dev(&ch.amplitude_series(300, 0.0, 17));
        assert!(settled < 0.05, "settled std {settled}");
    }

    #[test]
    fn most_subcarriers_see_the_motion() {
        // Paper: "Most other subcarriers had similar patterns."
        let mut ch = CsiChannel::new(6);
        let mut idle_sd = vec![Vec::new(); DEFAULT_SUBCARRIERS];
        for _ in 0..200 {
            let s = ch.sample(0.0);
            for (k, v) in s.amplitudes.iter().enumerate() {
                idle_sd[k].push(*v);
            }
        }
        let mut moving_sd = vec![Vec::new(); DEFAULT_SUBCARRIERS];
        for _ in 0..200 {
            let s = ch.sample(1.0);
            for (k, v) in s.amplitudes.iter().enumerate() {
                moving_sd[k].push(*v);
            }
        }
        let mut responsive = 0;
        for k in 0..DEFAULT_SUBCARRIERS {
            if std_dev(&moving_sd[k]) > 3.0 * std_dev(&idle_sd[k]).max(1e-6) {
                responsive += 1;
            }
        }
        assert!(
            responsive as f64 > 0.8 * DEFAULT_SUBCARRIERS as f64,
            "only {responsive} subcarriers responsive"
        );
    }

    #[test]
    fn same_seed_same_series() {
        let mut a = CsiChannel::new(9);
        let mut b = CsiChannel::new(9);
        assert_eq!(
            a.amplitude_series(50, 0.7, 3),
            b.amplitude_series(50, 0.7, 3)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = CsiChannel::new(1);
        let mut b = CsiChannel::new(2);
        assert_ne!(
            a.amplitude_series(10, 0.5, 3),
            b.amplitude_series(10, 0.5, 3)
        );
    }

    #[test]
    fn intensity_clamped() {
        let mut ch = CsiChannel::new(10);
        // Out-of-range intensities must not blow up the channel.
        let s = ch.sample(42.0);
        assert!(s.amplitudes.iter().all(|a| a.is_finite()));
        let s = ch.sample(-3.0);
        assert!(s.amplitudes.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn std_dev_edge_cases() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
