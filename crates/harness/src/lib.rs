//! Experiment lifecycle layer for the Polite WiFi reproduction.
//!
//! Every paper experiment used to hand-roll the same four things:
//! simulator setup, seed plumbing, metric accumulation, and JSON result
//! output. This crate owns that lifecycle end to end:
//!
//! * [`scenario`] — a [`ScenarioBuilder`] that declares a
//!   population/topology once and can stamp out a fresh deterministic
//!   [`Simulator`](polite_wifi_sim::Simulator) per trial;
//! * [`ledger`] — a typed [`MetricsLedger`] accumulating named samples
//!   with mean/min/max summaries;
//! * [`runner`] — a [`Runner`] that fans independent trials across a
//!   scoped worker pool with deterministic per-trial seed derivation
//!   ([`derive_trial_seed`]); results merge in trial order, so 1-worker
//!   and N-worker runs are byte-identical;
//! * [`report`] — the [`Experiment`] facade and the unified JSON result
//!   schema written under `results/`.
//!
//! ```
//! use polite_wifi_harness::prelude::*;
//!
//! let runner = Runner::new(4);
//! let means: Vec<f64> = runner.run_trials(42, 8, |trial| {
//!     // `trial.rng` is seeded from `derive_trial_seed(42, trial.index)`,
//!     // so this is reproducible regardless of worker count.
//!     let mut ledger = MetricsLedger::new();
//!     ledger.record("noise_db", trial.seed as f64 % 7.0);
//!     ledger.mean("noise_db").unwrap()
//! });
//! assert_eq!(means.len(), 8);
//! ```

pub mod cancel;
pub mod ledger;
pub mod progress;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sink;

pub use cancel::CancelToken;
pub use ledger::{MetricSummary, MetricsLedger};
pub use progress::{
    set_thread_progress_sink, ChannelProgress, ProgressSample, ProgressSink, StderrProgress,
};
pub use report::{results_dir, set_thread_results_dir, write_json, Experiment};
pub use runner::{derive_trial_seed, RunArgs, Runner, TrialCtx, TrialFailure};
pub use scenario::{Scenario, ScenarioBuilder};
pub use sink::Heartbeat;

/// The common imports experiment binaries need.
pub mod prelude {
    pub use crate::ledger::{MetricSummary, MetricsLedger};
    pub use crate::report::{results_dir, write_json, Experiment};
    pub use crate::runner::{derive_trial_seed, RunArgs, Runner, TrialCtx, TrialFailure};
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use polite_wifi_sim::FaultProfile;
}
