//! Activity segmentation: where does motion start and stop?
//!
//! The sensing-hub experiment (§4.3) needs to locate the "sharp changes in
//! CSI amplitude at times 9 and 32" — this module finds such change
//! windows with a hysteresis threshold on the sliding standard deviation.

use crate::features::sliding_features;
use serde::{Deserialize, Serialize};

/// A detected activity segment, in sample indices of the input series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// First sample of the active region.
    pub start: usize,
    /// One past the last sample of the active region.
    pub end: usize,
}

/// Segmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmenterConfig {
    /// Window length in samples for the sliding std.
    pub window_len: usize,
    /// Hop between windows in samples.
    pub hop: usize,
    /// Std threshold (relative to the series' median window std) that
    /// *starts* a segment.
    pub on_factor: f64,
    /// Std threshold that *ends* a segment (hysteresis: lower than on).
    pub off_factor: f64,
    /// Minimum segment length in samples (shorter detections are noise).
    pub min_len: usize,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig {
            window_len: 30,
            hop: 10,
            on_factor: 4.0,
            off_factor: 2.0,
            min_len: 20,
        }
    }
}

/// Finds active segments in an amplitude series.
pub fn segment(series: &[f64], config: &SegmenterConfig) -> Vec<Segment> {
    let feats = sliding_features(series, config.window_len, config.hop);
    segment_from_features(&feats, series.len(), config)
}

/// Segments from already-extracted sliding features — the shared back
/// half of [`segment`], reused by the batched pipeline so features
/// computed over a [`crate::batch::SeriesBatch`] need not be recomputed.
pub fn segment_from_features(
    feats: &[(usize, crate::features::FeatureVector)],
    series_len: usize,
    config: &SegmenterConfig,
) -> Vec<Segment> {
    if feats.is_empty() {
        return Vec::new();
    }
    // Noise floor: median of the window stds.
    let mut stds: Vec<f64> = feats.iter().map(|(_, f)| f.std_dev).collect();
    stds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = stds[stds.len() / 2].max(1e-9);

    let on = floor * config.on_factor;
    let off = floor * config.off_factor;

    let mut segments = Vec::new();
    let mut active_start: Option<usize> = None;
    for &(start, ref f) in feats {
        match active_start {
            None if f.std_dev >= on => active_start = Some(start),
            Some(s) if f.std_dev < off => {
                let end = start + config.window_len;
                if end - s >= config.min_len {
                    segments.push(Segment { start: s, end });
                }
                active_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = active_start {
        let end = series_len;
        if end - s >= config.min_len {
            segments.push(Segment { start: s, end });
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic noise in [-0.5, 0.5).
    fn noise(i: usize) -> f64 {
        ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5
    }

    fn series_with_burst(len: usize, burst: std::ops::Range<usize>, scale: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let base = 5.0 + 0.02 * noise(i);
                if burst.contains(&i) {
                    base + scale * noise(i * 7 + 3)
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn single_burst_detected() {
        let series = series_with_burst(1000, 400..600, 2.0);
        let segs = segment(&series, &SegmenterConfig::default());
        assert_eq!(segs.len(), 1, "segments: {segs:?}");
        let s = segs[0];
        assert!((350..=450).contains(&s.start), "start {}", s.start);
        assert!((560..=680).contains(&s.end), "end {}", s.end);
    }

    #[test]
    fn two_bursts_detected_separately() {
        let mut series = series_with_burst(2000, 300..500, 2.0);
        for (i, v) in series_with_burst(2000, 1200..1400, 2.0)
            .into_iter()
            .enumerate()
        {
            if (1200..1400).contains(&i) {
                series[i] = v;
            }
        }
        let segs = segment(&series, &SegmenterConfig::default());
        assert_eq!(segs.len(), 2, "segments: {segs:?}");
        assert!(segs[0].end < segs[1].start);
    }

    #[test]
    fn quiet_series_has_no_segments() {
        let series: Vec<f64> = (0..1000).map(|i| 5.0 + 0.02 * noise(i)).collect();
        assert!(segment(&series, &SegmenterConfig::default()).is_empty());
    }

    #[test]
    fn burst_reaching_the_end_is_closed() {
        let series = series_with_burst(800, 600..800, 2.0);
        let segs = segment(&series, &SegmenterConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, 800);
    }

    #[test]
    fn tiny_blips_suppressed() {
        let mut series: Vec<f64> = (0..1000).map(|i| 5.0 + 0.02 * noise(i)).collect();
        series[500] += 3.0; // single-sample spike
        let cfg = SegmenterConfig::default();
        let segs = segment(&series, &cfg);
        // One spiked sample inflates at most a couple of windows; with
        // hysteresis + min_len this must not produce a segment longer than
        // the windows it touched.
        assert!(segs.iter().all(|s| s.end - s.start <= 3 * cfg.window_len));
    }

    #[test]
    fn empty_input() {
        assert!(segment(&[], &SegmenterConfig::default()).is_empty());
    }
}
