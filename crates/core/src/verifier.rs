//! ACK verification: did the victim answer?
//!
//! 802.11 ACKs carry no transmitter address, so a sniffer cannot read off
//! *who* acknowledged. The paper's third thread verified targets
//! temporally: an ACK addressed to the attacker that lands within the
//! response window of an injected fake is attributed to that fake's
//! destination. This module implements that pairing over a capture.

use polite_wifi_frame::{ControlFrame, Frame, MacAddr};
use polite_wifi_pcap::capture::Capture;
use serde::{Deserialize, Serialize};

/// One verified fake→ACK exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifiedExchange {
    /// The victim that answered.
    pub victim: MacAddr,
    /// When the fake frame completed, µs.
    pub fake_ts_us: u64,
    /// When the ACK completed, µs.
    pub ack_ts_us: u64,
}

/// Pairs injected fakes with elicited ACKs in a capture.
#[derive(Debug, Clone)]
pub struct AckVerifier {
    /// The attacker's (forged) address that ACKs come back to.
    pub attacker: MacAddr,
    /// Maximum µs between a fake frame's end and its ACK's end for the
    /// two to be considered one exchange. SIFS + the longest legacy ACK
    /// (304 µs at 1 Mb/s) plus slack.
    pub window_us: u64,
}

impl AckVerifier {
    /// A verifier with the default 1 ms pairing window.
    pub fn new(attacker: MacAddr) -> AckVerifier {
        AckVerifier {
            attacker,
            window_us: 1_000,
        }
    }

    /// Walks the capture and returns every verified exchange: a frame
    /// transmitted *by* the attacker followed within the window by an
    /// ACK (or CTS) addressed *to* the attacker.
    pub fn verify(&self, capture: &Capture) -> Vec<VerifiedExchange> {
        let mut exchanges = Vec::new();
        let mut pending: Option<(MacAddr, u64)> = None;
        for cf in capture.frames() {
            match &cf.frame {
                Frame::Ctrl(ControlFrame::Ack { ra })
                | Frame::Ctrl(ControlFrame::Cts { ra, .. })
                    if *ra == self.attacker =>
                {
                    if let Some((victim, fake_ts)) = pending.take() {
                        if cf.ts_us.saturating_sub(fake_ts) <= self.window_us {
                            exchanges.push(VerifiedExchange {
                                victim,
                                fake_ts_us: fake_ts,
                                ack_ts_us: cf.ts_us,
                            });
                        }
                    }
                }
                other => {
                    if other.transmitter() == Some(self.attacker) {
                        if let Some(victim) = other.receiver() {
                            pending = Some((victim, cf.ts_us));
                        }
                    }
                }
            }
        }
        exchanges
    }

    /// Distinct victims that verifiably answered at least once.
    pub fn responding_victims(&self, capture: &Capture) -> Vec<MacAddr> {
        let mut victims: Vec<MacAddr> = self.verify(capture).iter().map(|e| e.victim).collect();
        victims.sort();
        victims.dedup();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::builder;

    fn victim_mac() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn pairs_fake_with_following_ack() {
        let mut cap = Capture::new();
        cap.record_frame(
            1_000,
            &builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
        );
        cap.record_frame(1_314, &builder::ack(MacAddr::FAKE));
        let v = AckVerifier::new(MacAddr::FAKE);
        let ex = v.verify(&cap);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].victim, victim_mac());
        assert_eq!(ex[0].ack_ts_us - ex[0].fake_ts_us, 314);
    }

    #[test]
    fn late_ack_not_paired() {
        let mut cap = Capture::new();
        cap.record_frame(
            1_000,
            &builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
        );
        cap.record_frame(5_000, &builder::ack(MacAddr::FAKE));
        assert!(AckVerifier::new(MacAddr::FAKE).verify(&cap).is_empty());
    }

    #[test]
    fn ack_to_someone_else_ignored() {
        let other: MacAddr = "02:00:00:00:00:09".parse().unwrap();
        let mut cap = Capture::new();
        cap.record_frame(
            1_000,
            &builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
        );
        cap.record_frame(1_314, &builder::ack(other));
        assert!(AckVerifier::new(MacAddr::FAKE).verify(&cap).is_empty());
    }

    #[test]
    fn cts_counts_as_verification() {
        let mut cap = Capture::new();
        cap.record_frame(1_000, &builder::fake_rts(victim_mac(), MacAddr::FAKE, 300));
        cap.record_frame(1_200, &builder::cts(MacAddr::FAKE, 100));
        let ex = AckVerifier::new(MacAddr::FAKE).verify(&cap);
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn multiple_victims_deduplicated() {
        let v2: MacAddr = "f2:6e:0b:44:55:66".parse().unwrap();
        let mut cap = Capture::new();
        for (i, victim) in [victim_mac(), v2, victim_mac()].iter().enumerate() {
            let t = 10_000 * (i as u64 + 1);
            cap.record_frame(t, &builder::fake_null_frame(*victim, MacAddr::FAKE));
            cap.record_frame(t + 314, &builder::ack(MacAddr::FAKE));
        }
        let verifier = AckVerifier::new(MacAddr::FAKE);
        assert_eq!(verifier.verify(&cap).len(), 3);
        let victims = verifier.responding_victims(&cap);
        assert_eq!(victims.len(), 2);
        assert!(victims.contains(&victim_mac()) && victims.contains(&v2));
    }

    #[test]
    fn interleaved_foreign_traffic_does_not_confuse() {
        let other: MacAddr = "02:00:00:00:00:09".parse().unwrap();
        let mut cap = Capture::new();
        cap.record_frame(
            1_000,
            &builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
        );
        // A foreign beacon lands between the fake and the ACK.
        cap.record_frame(1_100, &builder::beacon(other, "X", 6, 0, 0, false));
        cap.record_frame(1_314, &builder::ack(MacAddr::FAKE));
        // The beacon (transmitted by `other`, received broadcast) replaces
        // the pending pair only if it was *sent by the attacker*; it was
        // not, so the exchange still verifies... but note the beacon's
        // receiver is broadcast so pending would be clobbered only for
        // attacker-sent frames.
        let ex = AckVerifier::new(MacAddr::FAKE).verify(&cap);
        assert_eq!(ex.len(), 1);
    }
}
