//! Batched, allocation-light sensing kernels and the policy knob that
//! governs when they may deviate from the scalar reference path.
//!
//! The scalar pipeline in [`crate::filter`] / [`crate::features`] is the
//! *reference semantics*: every fast kernel here is either bit-for-bit
//! identical to it (the default, [`BatchPolicy::Exact`]) or explicitly
//! opted into float reassociation ([`BatchPolicy::Reassociated`]) with a
//! tolerance pinned by proptests. Setting `POLITE_WIFI_FORCE_SCALAR=1`
//! (or `POLITE_WIFI_BATCH_POLICY=scalar`) routes every dispatching entry
//! point back through the reference path — CI runs the sensing suite both
//! ways and diffs the outputs.
//!
//! Why the exact kernels are fast anyway: the scalar Hampel filter
//! allocates and sorts three times per sample; the exact kernel maintains
//! one incrementally-sorted window (O(w) per slide) and selects the MAD
//! median with a two-pointer merge over the two sorted deviation runs that
//! flank the window median — same values, same order statistics, no sort.
//! Elementwise stages (first differences, feature window scans) are
//! written as lane-width chunks so LLVM autovectorizes them; none of that
//! reorders additions, so it is exact under IEEE-754.
//!
//! Known non-guarantee: order statistics are *value*-identical, not
//! sign-of-zero-identical — if a window straddles `-0.0`/`0.0` ties the
//! selected median may differ in sign bit. CSI amplitudes are magnitudes,
//! so the pipeline never produces `-0.0`; the proptests compare with `==`
//! (value equality), which is the contract.

use crate::features::FeatureVector;
use crate::segment::{segment_from_features, Segment, SegmenterConfig};
use std::sync::OnceLock;

/// Lane width, in f64 elements, for the manually chunked loops. Eight
/// lanes cover one AVX-512 register or two AVX2 registers; LLVM splits
/// the chunk to whatever the target offers.
pub const LANES: usize = 8;

/// How the batched kernels are allowed to treat floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Fast kernels constrained to bit-identical results: no sum
    /// reorderings, order statistics selected rather than re-derived.
    #[default]
    Exact,
    /// Additionally permits reassociated reductions (prefix-sum moving
    /// averages); results may differ from scalar by accumulated rounding,
    /// bounded by the `reassociated_close_to_scalar` proptest.
    Reassociated,
    /// The scalar reference path, verbatim. What CI's equivalence leg and
    /// `POLITE_WIFI_FORCE_SCALAR=1` select.
    Scalar,
}

static ACTIVE_POLICY: OnceLock<BatchPolicy> = OnceLock::new();

impl BatchPolicy {
    /// The process-wide policy, resolved once from the environment:
    /// `POLITE_WIFI_FORCE_SCALAR=1` forces [`BatchPolicy::Scalar`];
    /// otherwise `POLITE_WIFI_BATCH_POLICY` ∈ {`exact`, `reassociated`,
    /// `scalar`} (default `exact`).
    pub fn active() -> BatchPolicy {
        *ACTIVE_POLICY.get_or_init(BatchPolicy::from_env)
    }

    fn from_env() -> BatchPolicy {
        if std::env::var_os("POLITE_WIFI_FORCE_SCALAR").is_some_and(|v| v == "1") {
            return BatchPolicy::Scalar;
        }
        match std::env::var("POLITE_WIFI_BATCH_POLICY").as_deref() {
            Ok("scalar") => BatchPolicy::Scalar,
            Ok("reassociated") => BatchPolicy::Reassociated,
            _ => BatchPolicy::Exact,
        }
    }
}

/// A dense row-major batch of equal-length amplitude series — one row per
/// link. The SoA counterpart of `Vec<Vec<f64>>`, so batched kernels walk
/// one contiguous allocation instead of chasing per-link pointers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesBatch {
    cols: usize,
    data: Vec<f64>,
}

impl SeriesBatch {
    /// An empty batch whose rows will hold `cols` samples each.
    pub fn new(cols: usize) -> SeriesBatch {
        SeriesBatch {
            cols,
            data: Vec::new(),
        }
    }

    /// An empty batch with capacity reserved for `rows` rows.
    pub fn with_capacity(cols: usize, rows: usize) -> SeriesBatch {
        SeriesBatch {
            cols,
            data: Vec::with_capacity(cols * rows),
        }
    }

    /// Samples per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (links).
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row; its length must equal `cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
    }

    /// One row as a contiguous slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row, mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        // max(1) keeps zero-width batches iterable (they have no rows).
        self.data.chunks_exact(self.cols.max(1))
    }
}

// ---------------------------------------------------------------------------
// Exact order-statistic kernels.
// ---------------------------------------------------------------------------

/// Median of an ascending-sorted slice — the value
/// `crate::filter::median` would return for the same multiset.
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation of an ascending-sorted window, without
/// sorting the deviations: `|w[i] − med|` is non-increasing up to the
/// first element ≥ `med` and non-decreasing after, so the deviations form
/// two sorted runs that a two-pointer merge can select the middle of in
/// O(w). Returns the value `crate::filter::mad` computes. Exhausted runs
/// are represented by an `INFINITY` sentinel (never selected while real
/// deviations remain), which keeps the merge loop branch-light; the
/// deviations themselves are computed as `med − x` / `x − med` on their
/// respective sides, which IEEE-754 guarantees equals `|x − med|` there.
fn mad_of_sorted(sorted: &[f64], med: f64) -> f64 {
    let m = sorted.len();
    if m == 0 {
        return 0.0;
    }
    // Linear count autovectorizes and beats a branchy binary search on
    // the small windows this kernel lives on.
    let split = if m <= 64 {
        sorted.iter().map(|&x| (x < med) as usize).sum()
    } else {
        sorted.partition_point(|&x| x < med)
    };
    let mut li = split as isize - 1; // walks left, deviations ascending
    let mut ri = split; // walks right, deviations ascending
    let take = m / 2; // index of the (upper) middle deviation
    let mut prev = 0.0;
    let mut cur = 0.0;
    for _ in 0..=take {
        let lv = if li >= 0 {
            med - sorted[li as usize]
        } else {
            f64::INFINITY
        };
        let rv = if ri < m {
            sorted[ri] - med
        } else {
            f64::INFINITY
        };
        prev = cur;
        if lv <= rv {
            li -= 1;
            cur = lv;
        } else {
            ri += 1;
            cur = rv;
        }
    }
    if m % 2 == 1 {
        cur
    } else {
        (prev + cur) / 2.0
    }
}

/// Inserts `v` into an ascending-sorted vec (binary search + shift).
fn sorted_insert(window: &mut Vec<f64>, v: f64) {
    let pos = window.partition_point(|&x| x < v);
    window.insert(pos, v);
}

/// Removes one element equal to `v` from an ascending-sorted vec.
fn sorted_remove(window: &mut Vec<f64>, v: f64) {
    let pos = window.partition_point(|&x| x < v);
    debug_assert!(window[pos] == v, "removing a value that was never inserted");
    window.remove(pos);
}

/// Conversion between MAD and a robust σ estimate (Gaussian consistency
/// constant) — the same value [`crate::filter`] uses.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Windows up to this long take the stack-buffer Hampel path.
const INLINE_WINDOW: usize = 32;

/// Hampel filter, bit-identical to [`crate::filter::hampel`] but O(w) per
/// sample: the sliding window is kept sorted incrementally and both order
/// statistics (median, MAD) are selected from it directly. Windows that
/// fit `INLINE_WINDOW` (every pipeline default does) run on a stack
/// buffer with branchless linear insertion — and the pipeline's own
/// `±5` width takes a monomorphised path whose full-window loop the
/// compiler unrolls. Wider windows fall back to a binary-searched `Vec` —
/// same algorithm, same values.
pub fn hampel_exact(series: &[f64], half_window: usize, n_sigma: f64) -> Vec<f64> {
    let n = series.len();
    let mut out = series.to_vec();
    if n == 0 {
        return out;
    }
    if half_window == 5 && n > 11 {
        hampel_spec::<5>(series, &mut out, n_sigma);
        return out;
    }
    if 2 * half_window + 2 <= INLINE_WINDOW {
        hampel_inline(series, &mut out, half_window, n_sigma);
        return out;
    }
    let mut window: Vec<f64> = Vec::with_capacity(2 * half_window + 2);
    let mut lo = 0usize;
    let mut hi = (half_window + 1).min(n);
    for &v in &series[lo..hi] {
        sorted_insert(&mut window, v);
    }
    for i in 0..n {
        let new_lo = i.saturating_sub(half_window);
        let new_hi = (i + half_window + 1).min(n);
        while hi < new_hi {
            sorted_insert(&mut window, series[hi]);
            hi += 1;
        }
        while lo < new_lo {
            sorted_remove(&mut window, series[lo]);
            lo += 1;
        }
        let med = median_of_sorted(&window);
        let sigma = MAD_TO_SIGMA * mad_of_sorted(&window, med);
        let deviation = (series[i] - med).abs();
        if deviation > n_sigma * sigma && deviation > f64::EPSILON {
            out[i] = med;
        }
    }
    out
}

/// Inserts `v` into the sorted prefix `buf[..len]`. The position is the
/// count of strictly-smaller elements — a branchless scan LLVM vectorizes,
/// equal on a sorted buffer to the `partition_point` the `Vec` path uses.
#[inline]
fn inline_insert(buf: &mut [f64; INLINE_WINDOW], len: &mut usize, v: f64) {
    let pos: usize = buf[..*len].iter().map(|&x| (x < v) as usize).sum();
    buf.copy_within(pos..*len, pos + 1);
    buf[pos] = v;
    *len += 1;
}

/// Removes one element equal to `v` from the sorted prefix `buf[..len]`.
#[inline]
fn inline_remove(buf: &mut [f64; INLINE_WINDOW], len: &mut usize, v: f64) {
    let pos: usize = buf[..*len].iter().map(|&x| (x < v) as usize).sum();
    debug_assert!(buf[pos] == v, "removing a value that was never inserted");
    buf.copy_within(pos + 1..*len, pos);
    *len -= 1;
}

/// Removes `old` and inserts `new` in one pass — both positions come from
/// a single fused scan and at most one `copy_within` moves the elements
/// between them. Equivalent to `inline_remove` followed by
/// `inline_insert` (same multiset, same final order).
#[inline]
fn inline_replace(buf: &mut [f64; INLINE_WINDOW], len: usize, old: f64, new: f64) {
    let mut po = 0usize; // index of `old` (first element >= it)
    let mut pi = 0usize; // elements strictly below `new`
    for &x in &buf[..len] {
        po += (x < old) as usize;
        pi += (x < new) as usize;
    }
    debug_assert!(buf[po] == old, "replacing a value that was never inserted");
    // `new`'s slot in the window *without* `old`: `old` itself was
    // counted iff it is strictly smaller.
    let pi = pi - (old < new) as usize;
    match po.cmp(&pi) {
        std::cmp::Ordering::Equal => buf[po] = new,
        std::cmp::Ordering::Greater => {
            buf.copy_within(pi..po, pi + 1);
            buf[pi] = new;
        }
        std::cmp::Ordering::Less => {
            buf.copy_within(po + 1..=pi, po);
            buf[pi] = new;
        }
    }
}

/// One Hampel decision against a sorted window.
#[inline]
fn hampel_apply(series: &[f64], out: &mut [f64], i: usize, window: &[f64], n_sigma: f64) {
    let med = median_of_sorted(window);
    let sigma = MAD_TO_SIGMA * mad_of_sorted(window, med);
    let deviation = (series[i] - med).abs();
    if deviation > n_sigma * sigma && deviation > f64::EPSILON {
        out[i] = med;
    }
}

/// The small-window Hampel hot loop for arbitrary `half_window`: the
/// sorted window lives in a stack array, maintained with
/// [`inline_insert`] / [`inline_remove`].
fn hampel_inline(series: &[f64], out: &mut [f64], half_window: usize, n_sigma: f64) {
    let n = series.len();
    let mut buf = [0.0f64; INLINE_WINDOW];
    let mut len = 0usize;
    let mut lo = 0usize;
    let mut hi = (half_window + 1).min(n);
    for &v in &series[lo..hi] {
        inline_insert(&mut buf, &mut len, v);
    }
    for i in 0..n {
        let new_lo = i.saturating_sub(half_window);
        let new_hi = (i + half_window + 1).min(n);
        while hi < new_hi {
            inline_insert(&mut buf, &mut len, series[hi]);
            hi += 1;
        }
        while lo < new_lo {
            inline_remove(&mut buf, &mut len, series[lo]);
            lo += 1;
        }
        hampel_apply(series, out, i, &buf[..len], n_sigma);
    }
}

/// The monomorphised Hampel path for a known `HW`: ramp-up and ramp-down
/// share the generic helpers, while the steady-state middle — full
/// windows of `2·HW+1`, one [`inline_replace`] per slide — runs with a
/// compile-time window length, so the scan counts vectorize and the MAD
/// merge (`HW+1` steps) unrolls branchlessly. Requires
/// `series.len() > 2·HW+1`.
fn hampel_spec<const HW: usize>(series: &[f64], out: &mut [f64], n_sigma: f64) {
    let w = 2 * HW + 1;
    let n = series.len();
    debug_assert!(n > w && w < INLINE_WINDOW);
    let mut buf = [0.0f64; INLINE_WINDOW];
    let mut len = 0usize;

    // Ramp-up: i in 0..=HW, window [0, i+HW+1).
    for &v in &series[..HW + 1] {
        inline_insert(&mut buf, &mut len, v);
    }
    hampel_apply(series, out, 0, &buf[..len], n_sigma);
    for i in 1..=HW {
        inline_insert(&mut buf, &mut len, series[i + HW]);
        hampel_apply(series, out, i, &buf[..len], n_sigma);
    }

    // Steady state: i in HW+1..n-HW, window [i-HW, i+HW+1), len == w.
    debug_assert_eq!(len, w);
    for i in HW + 1..n - HW {
        inline_replace(&mut buf, w, series[i - HW - 1], series[i + HW]);
        let window = &buf[..w];
        let med = window[HW]; // w is odd
        let split: usize = window.iter().map(|&x| (x < med) as usize).sum();
        let mut li = split as isize - 1;
        let mut ri = split;
        let mut mad = 0.0;
        for _ in 0..=HW {
            let lv = if li >= 0 {
                med - window[li as usize]
            } else {
                f64::INFINITY
            };
            let rv = if ri < w {
                window[ri] - med
            } else {
                f64::INFINITY
            };
            if lv <= rv {
                li -= 1;
                mad = lv;
            } else {
                ri += 1;
                mad = rv;
            }
        }
        let sigma = MAD_TO_SIGMA * mad;
        let deviation = (series[i] - med).abs();
        if deviation > n_sigma * sigma && deviation > f64::EPSILON {
            out[i] = med;
        }
    }

    // Ramp-down: i in n-HW..n, window [i-HW, n).
    for i in n - HW..n {
        inline_remove(&mut buf, &mut len, series[i - HW - 1]);
        hampel_apply(series, out, i, &buf[..len], n_sigma);
    }
}

/// Median by quickselect — O(n) instead of the reference sort, returning
/// the same value as [`crate::filter::median`]: `select_nth_unstable`
/// yields the identical upper-middle order statistic, and for even
/// lengths the lower middle is the maximum of the left partition.
pub fn median_select(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut v = values.to_vec();
    let (left, &mut upper, _) =
        v.select_nth_unstable_by(n / 2, |a, b| a.partial_cmp(b).expect("no NaNs in CSI"));
    if n % 2 == 1 {
        upper
    } else {
        let lower = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lower + upper) / 2.0
    }
}

// ---------------------------------------------------------------------------
// Lane-chunked elementwise kernels (exact: no reductions reordered).
// ---------------------------------------------------------------------------

/// First-difference magnitudes `|x[i+1] − x[i]|`, lane-chunked so LLVM
/// autovectorizes. Purely elementwise, hence exact under every policy.
pub fn abs_diff(series: &[f64]) -> Vec<f64> {
    if series.len() < 2 {
        return Vec::new();
    }
    let n = series.len() - 1;
    let mut out = vec![0.0; n];
    let a = &series[..n];
    let b = &series[1..];
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            o[l] = (y[l] - x[l]).abs();
        }
    }
    let tail = oc.into_remainder();
    for ((o, x), y) in tail.iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *o = (y - x).abs();
    }
    out
}

/// Centred moving average via a prefix-sum — O(n) but *reassociated*:
/// each output is a difference of running sums rather than the reference
/// left-to-right window sum. Only reachable under
/// [`BatchPolicy::Reassociated`].
pub fn moving_average_reassoc(series: &[f64], half_window: usize) -> Vec<f64> {
    let n = series.len();
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &v in series {
        acc += v;
        prefix.push(acc);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half_window);
            let hi = (i + half_window + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Policy-dispatched pipeline stages.
// ---------------------------------------------------------------------------

/// The standard conditioning chain (Hampel ±5 @ 3σ, then moving average
/// ±2) under an explicit policy. [`crate::filter::condition`] forwards
/// here with [`BatchPolicy::active`].
pub fn condition_with_policy(series: &[f64], policy: BatchPolicy) -> Vec<f64> {
    match policy {
        BatchPolicy::Scalar => crate::filter::condition_scalar(series),
        // The ±2 moving average keeps the reference summation order (it
        // is 5 adds per output); only the Hampel stage needed the fast
        // kernel to hit the bench target.
        BatchPolicy::Exact => crate::filter::moving_average(&hampel_exact(series, 5, 3.0), 2),
        BatchPolicy::Reassociated => moving_average_reassoc(&hampel_exact(series, 5, 3.0), 2),
    }
}

/// Conditions every row of a batch in one pass, under the active policy.
pub fn condition_batch(batch: &SeriesBatch) -> SeriesBatch {
    let policy = BatchPolicy::active();
    let mut out = SeriesBatch::with_capacity(batch.cols(), batch.rows());
    for row in batch.iter_rows() {
        out.push_row(&condition_with_policy(row, policy));
    }
    out
}

/// Feature extraction over one window using a caller-provided scratch
/// buffer: one sort feeds median *and* MAD (the scalar reference sorts
/// three times). All other statistics keep the reference operation order,
/// so the result is bit-identical to [`crate::features::extract`].
pub fn extract_fast(window: &[f64], scratch: &mut Vec<f64>) -> FeatureVector {
    let n = window.len();
    if n < 2 {
        return FeatureVector::default();
    }
    let mean = window.iter().sum::<f64>() / n as f64;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();

    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in window {
        min = min.min(x);
        max = max.max(x);
    }

    let crossings = window
        .windows(2)
        .filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum())
        .count();
    let mean_crossing_rate = crossings as f64 / (n - 1) as f64;

    let diff_energy = window
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        / (n - 1) as f64;

    scratch.clear();
    scratch.extend_from_slice(window);
    scratch.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in CSI"));
    let med = median_of_sorted(scratch);
    FeatureVector {
        std_dev,
        mad: mad_of_sorted(scratch, med),
        peak_to_peak: max - min,
        mean_crossing_rate,
        diff_energy,
    }
}

/// Sliding-window features with a shared scratch buffer — what
/// [`crate::features::sliding_features`] dispatches to under the fast
/// policies.
pub fn sliding_features_fast(
    series: &[f64],
    window_len: usize,
    hop: usize,
) -> Vec<(usize, FeatureVector)> {
    let mut out = Vec::new();
    if window_len == 0 || hop == 0 || series.len() < window_len {
        return out;
    }
    let mut scratch = Vec::with_capacity(window_len);
    let mut start = 0;
    while start + window_len <= series.len() {
        out.push((
            start,
            extract_fast(&series[start..start + window_len], &mut scratch),
        ));
        start += hop;
    }
    out
}

/// Sliding-window features for every row of a batch.
pub fn sliding_features_batch(
    batch: &SeriesBatch,
    window_len: usize,
    hop: usize,
) -> Vec<Vec<(usize, FeatureVector)>> {
    batch
        .iter_rows()
        .map(|row| crate::features::sliding_features(row, window_len, hop))
        .collect()
}

/// Segments every row of a batch with one config.
pub fn segment_batch(batch: &SeriesBatch, config: &SegmenterConfig) -> Vec<Vec<Segment>> {
    sliding_features_batch(batch, config.window_len, config.hop)
        .into_iter()
        .map(|feats| segment_from_features(&feats, batch.cols(), config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;

    /// Deterministic noise in [-0.5, 0.5).
    fn noise(i: usize) -> f64 {
        ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5
    }

    fn bursty_series(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut v = 5.0 + 0.05 * noise(i);
                if (len / 3..len / 2).contains(&i) {
                    v += 1.5 * noise(i * 7 + 3);
                }
                if i % 97 == 0 {
                    v += 40.0; // impulsive outlier for the Hampel stage
                }
                v
            })
            .collect()
    }

    #[test]
    fn hampel_exact_matches_reference() {
        for len in [0, 1, 2, 7, 11, 12, 50, 333] {
            let s = bursty_series(len);
            for hw in [0, 1, 5, 8] {
                assert_eq!(
                    hampel_exact(&s, hw, 3.0),
                    filter::hampel(&s, hw, 3.0),
                    "len {len} hw {hw}"
                );
            }
        }
    }

    #[test]
    fn median_select_matches_reference() {
        for len in [1, 2, 3, 10, 11, 100, 101] {
            let s = bursty_series(len);
            assert_eq!(median_select(&s), filter::median(&s), "len {len}");
        }
        assert_eq!(median_select(&[]), filter::median(&[]));
        // Ties around the middle.
        assert_eq!(median_select(&[2.0, 2.0, 2.0, 1.0]), 2.0);
    }

    #[test]
    fn extract_fast_matches_reference() {
        let mut scratch = Vec::new();
        for len in [0, 1, 2, 3, 30, 64] {
            let s = bursty_series(len);
            assert_eq!(
                extract_fast(&s, &mut scratch),
                crate::features::extract(&s),
                "len {len}"
            );
        }
    }

    #[test]
    fn abs_diff_matches_windows() {
        for len in [0, 1, 2, 9, 16, 17, 100] {
            let s = bursty_series(len);
            let reference: Vec<f64> = s.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
            assert_eq!(abs_diff(&s), reference, "len {len}");
        }
    }

    #[test]
    fn condition_exact_policy_matches_scalar() {
        let s = bursty_series(400);
        assert_eq!(
            condition_with_policy(&s, BatchPolicy::Exact),
            condition_with_policy(&s, BatchPolicy::Scalar),
        );
    }

    #[test]
    fn condition_reassociated_is_close() {
        let s = bursty_series(400);
        let exact = condition_with_policy(&s, BatchPolicy::Exact);
        let reassoc = condition_with_policy(&s, BatchPolicy::Reassociated);
        for (a, b) in exact.iter().zip(&reassoc) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn series_batch_round_trip() {
        let mut batch = SeriesBatch::new(4);
        assert!(batch.is_empty());
        batch.push_row(&[1.0, 2.0, 3.0, 4.0]);
        batch.push_row(&[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.cols(), 4);
        assert_eq!(batch.row(1), &[5.0, 6.0, 7.0, 8.0]);
        batch.row_mut(0)[0] = 9.0;
        assert_eq!(batch.iter_rows().next().unwrap()[0], 9.0);
    }

    #[test]
    fn condition_batch_equals_per_row_condition() {
        let mut batch = SeriesBatch::new(200);
        for r in 0..5 {
            let row: Vec<f64> = (0..200).map(|i| 5.0 + noise(i * (r + 1))).collect();
            batch.push_row(&row);
        }
        let conditioned = condition_batch(&batch);
        for (r, row) in batch.iter_rows().enumerate() {
            assert_eq!(conditioned.row(r), filter::condition(row).as_slice());
        }
    }

    #[test]
    fn segment_batch_equals_per_row_segment() {
        let cfg = SegmenterConfig::default();
        let mut batch = SeriesBatch::new(900);
        for r in 0..4 {
            let row: Vec<f64> = (0..900)
                .map(|i| {
                    let mut v = 5.0 + 0.02 * noise(i + r * 31);
                    if (300..500).contains(&i) {
                        v += 2.0 * noise(i * 7 + r);
                    }
                    v
                })
                .collect();
            batch.push_row(&row);
        }
        let per_batch = segment_batch(&batch, &cfg);
        for (r, row) in batch.iter_rows().enumerate() {
            assert_eq!(per_batch[r], crate::segment::segment(row, &cfg), "row {r}");
        }
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(hampel_exact(&[], 5, 3.0).is_empty());
        assert!(abs_diff(&[]).is_empty());
        assert!(abs_diff(&[1.0]).is_empty());
        assert_eq!(median_select(&[]), 0.0);
        assert!(moving_average_reassoc(&[], 2).is_empty());
        let empty = SeriesBatch::new(0);
        assert_eq!(empty.rows(), 0);
        assert!(condition_batch(&empty).is_empty());
    }
}
