//! The OUI → vendor registry.
//!
//! MAC-address prefixes (Organizationally Unique Identifiers) are how the
//! paper's survey attributed 5,328 responding devices to 186 vendors. The
//! registry ships with one representative, well-known OUI per Table 2
//! vendor and accepts additional registrations (the synthetic population
//! registers generated OUIs for its long-tail vendors).

use polite_wifi_frame::MacAddr;
use std::collections::HashMap;

/// Well-known representative OUIs for the vendors Table 2 names. One OUI
/// per vendor suffices for attribution in the simulation (real vendors own
/// many; the survey logic only needs the prefix→name mapping to be
/// consistent).
pub const KNOWN_OUIS: &[([u8; 3], &str)] = &[
    ([0xf0, 0x18, 0x98], "Apple"),
    ([0xf4, 0xf5, 0xd8], "Google"),
    ([0x00, 0x1b, 0x77], "Intel"),
    ([0x68, 0x02, 0xb8], "Hitron"),
    ([0x00, 0x1e, 0x0b], "HP"),
    ([0x8c, 0x77, 0x12], "Samsung"),
    ([0x24, 0x0a, 0xc4], "Espressif"),
    ([0x00, 0x1c, 0x26], "Hon Hai"),
    ([0x74, 0xc2, 0x46], "Amazon"),
    ([0x18, 0x62, 0x2c], "Sagemcom"),
    ([0x20, 0x68, 0x9d], "Liteon"),
    ([0x00, 0x25, 0xd3], "AzureWave"),
    ([0x00, 0x0e, 0x58], "Sonos"),
    ([0x18, 0xb4, 0x30], "Nest Labs"),
    ([0x00, 0x0e, 0x6d], "Murata"),
    ([0x94, 0x10, 0x3e], "Belkin"),
    ([0x50, 0xc7, 0xbf], "TP-LINK"),
    ([0x00, 0x40, 0x96], "Cisco"),
    ([0x44, 0x61, 0x32], "ecobee"),
    ([0x28, 0x18, 0x78], "Microsoft"),
    ([0xfc, 0x94, 0xe3], "Technicolor"),
    ([0xf8, 0xbb, 0xbf], "eero"),
    ([0x00, 0x04, 0x96], "Extreme N."),
    ([0x00, 0x1f, 0x33], "NETGEAR"),
    ([0x00, 0x05, 0x5d], "D-Link"),
    ([0x04, 0xd9, 0xf5], "ASUSTek"),
    ([0x00, 0x0b, 0x86], "Aruba"),
    ([0xac, 0x20, 0x2e], "SmartRG"),
    ([0x24, 0xa4, 0x3c], "Ubiquiti N."),
    ([0x00, 0x15, 0x70], "Zebra"),
    ([0x38, 0xc0, 0x86], "Pegatron"),
    ([0x00, 0x0c, 0xe7], "Mitsumi"),
    // Table 1 chipset vendors not in the Table 2 top-20.
    ([0x00, 0x03, 0x7f], "Atheros"),
    ([0x00, 0x50, 0x43], "Marvell"),
    ([0x00, 0x03, 0x7a], "Qualcomm"),
    ([0x00, 0xe0, 0x4c], "Realtek"),
];

/// An OUI→vendor lookup table.
#[derive(Debug, Clone, Default)]
pub struct OuiRegistry {
    map: HashMap<[u8; 3], String>,
}

impl OuiRegistry {
    /// A registry pre-seeded with the Table 1/Table 2 vendors.
    pub fn with_known_vendors() -> OuiRegistry {
        let mut r = OuiRegistry::default();
        for (oui, name) in KNOWN_OUIS {
            r.register(*oui, name);
        }
        r
    }

    /// Registers (or overwrites) an OUI.
    pub fn register(&mut self, oui: [u8; 3], vendor: &str) {
        self.map.insert(oui, vendor.to_string());
    }

    /// Looks up the vendor for an address.
    pub fn vendor_of(&self, addr: MacAddr) -> Option<&str> {
        self.map.get(&addr.oui()).map(|s| s.as_str())
    }

    /// Looks up a vendor's representative OUI (first match).
    pub fn oui_of(&self, vendor: &str) -> Option<[u8; 3]> {
        self.map
            .iter()
            .filter(|(_, v)| v.as_str() == vendor)
            .map(|(k, _)| *k)
            .min() // deterministic choice
    }

    /// Number of registered OUIs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct vendor names.
    pub fn vendor_count(&self) -> usize {
        let set: std::collections::HashSet<&str> = self.map.values().map(|s| s.as_str()).collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vendors_resolve() {
        let r = OuiRegistry::with_known_vendors();
        let apple = MacAddr::from_oui([0xf0, 0x18, 0x98], 0x123456);
        assert_eq!(r.vendor_of(apple), Some("Apple"));
        let esp = MacAddr::from_oui([0x24, 0x0a, 0xc4], 1);
        assert_eq!(r.vendor_of(esp), Some("Espressif"));
    }

    #[test]
    fn unknown_oui_is_none() {
        let r = OuiRegistry::with_known_vendors();
        assert_eq!(r.vendor_of(MacAddr::FAKE), None);
    }

    #[test]
    fn all_table2_top20_vendors_present() {
        let r = OuiRegistry::with_known_vendors();
        for v in [
            "Apple",
            "Google",
            "Intel",
            "Hitron",
            "HP",
            "Samsung",
            "Espressif",
            "Hon Hai",
            "Amazon",
            "Sagemcom",
            "Liteon",
            "AzureWave",
            "Sonos",
            "Nest Labs",
            "Murata",
            "Belkin",
            "TP-LINK",
            "Cisco",
            "ecobee",
            "Microsoft",
            "Technicolor",
            "eero",
            "Extreme N.",
            "NETGEAR",
            "D-Link",
            "ASUSTek",
            "Aruba",
            "SmartRG",
            "Ubiquiti N.",
            "Zebra",
            "Pegatron",
            "Mitsumi",
        ] {
            assert!(r.oui_of(v).is_some(), "missing {v}");
        }
    }

    #[test]
    fn register_and_count() {
        let mut r = OuiRegistry::default();
        assert!(r.is_empty());
        r.register([1, 2, 3], "X");
        r.register([1, 2, 4], "X");
        assert_eq!(r.len(), 2);
        assert_eq!(r.vendor_count(), 1);
    }

    #[test]
    fn oui_round_trip() {
        let r = OuiRegistry::with_known_vendors();
        let oui = r.oui_of("Cisco").unwrap();
        assert_eq!(r.vendor_of(MacAddr::from_oui(oui, 42)), Some("Cisco"));
    }

    #[test]
    fn no_duplicate_ouis_in_seed_table() {
        let mut seen = std::collections::HashSet::new();
        for (oui, _) in KNOWN_OUIS {
            assert!(seen.insert(*oui), "duplicate OUI {oui:?}");
        }
    }
}
