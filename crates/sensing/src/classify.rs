//! Activity classification from CSI features.

use crate::features::FeatureVector;
use serde::{Deserialize, Serialize};

/// The activity classes of the Figure 5 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityClass {
    /// Device untouched, nobody moving nearby.
    Idle,
    /// Device held (static grip micro-motion).
    Hold,
    /// Typing on the device.
    Typing,
    /// Gross motion (pick up / put down / walk past).
    Motion,
}

impl ActivityClass {
    /// All classes, for confusion-matrix indexing.
    pub const ALL: [ActivityClass; 4] = [
        ActivityClass::Idle,
        ActivityClass::Hold,
        ActivityClass::Typing,
        ActivityClass::Motion,
    ];

    /// Maps a ground-truth script label to a class.
    pub fn from_label(label: &str) -> ActivityClass {
        match label {
            "idle" => ActivityClass::Idle,
            "hold" => ActivityClass::Hold,
            "typing" => ActivityClass::Typing,
            _ => ActivityClass::Motion,
        }
    }
}

/// A simple interpretable classifier: thresholds on the window standard
/// deviation, calibrated from labelled data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdClassifier {
    /// Below this std: idle.
    pub idle_below: f64,
    /// Below this std (and above idle): hold.
    pub hold_below: f64,
    /// Below this std (and above hold): typing; above: motion.
    pub typing_below: f64,
}

impl ThresholdClassifier {
    /// Calibrates the three boundaries from labelled window stds: each
    /// boundary is the midpoint between the means of adjacent classes.
    pub fn calibrate(labelled: &[(ActivityClass, f64)]) -> ThresholdClassifier {
        let mean_of = |class: ActivityClass| -> f64 {
            let vals: Vec<f64> = labelled
                .iter()
                .filter(|(c, _)| *c == class)
                .map(|(_, v)| *v)
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let idle = mean_of(ActivityClass::Idle);
        let hold = mean_of(ActivityClass::Hold);
        let typing = mean_of(ActivityClass::Typing);
        let motion = mean_of(ActivityClass::Motion);
        ThresholdClassifier {
            idle_below: (idle + hold) / 2.0,
            hold_below: (hold + typing) / 2.0,
            typing_below: (typing + motion) / 2.0,
        }
    }

    /// Classifies one window by its standard deviation.
    pub fn classify(&self, std_dev: f64) -> ActivityClass {
        if std_dev < self.idle_below {
            ActivityClass::Idle
        } else if std_dev < self.hold_below {
            ActivityClass::Hold
        } else if std_dev < self.typing_below {
            ActivityClass::Typing
        } else {
            ActivityClass::Motion
        }
    }
}

/// 1-nearest-neighbour classifier over full feature vectors.
#[derive(Debug, Clone, Default)]
pub struct KnnClassifier {
    train: Vec<(ActivityClass, FeatureVector)>,
}

impl KnnClassifier {
    /// An empty classifier.
    pub fn new() -> KnnClassifier {
        KnnClassifier::default()
    }

    /// Adds a labelled example.
    pub fn add_example(&mut self, class: ActivityClass, features: FeatureVector) {
        self.train.push((class, features));
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.train.len()
    }

    /// True when no examples are stored.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty()
    }

    /// Classifies by majority vote of the `k` nearest examples
    /// (ties broken by the nearer class).
    pub fn classify(&self, features: &FeatureVector, k: usize) -> Option<ActivityClass> {
        if self.train.is_empty() || k == 0 {
            return None;
        }
        let mut by_distance: Vec<(f64, ActivityClass)> = self
            .train
            .iter()
            .map(|(c, f)| (f.distance(features), *c))
            .collect();
        by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let k = k.min(by_distance.len());
        let mut votes: std::collections::HashMap<ActivityClass, usize> =
            std::collections::HashMap::new();
        for (_, c) in &by_distance[..k] {
            *votes.entry(*c).or_default() += 1;
        }
        let best = votes.values().copied().max().unwrap_or(0);
        // Nearest neighbour among the tied classes wins.
        by_distance[..k]
            .iter()
            .find(|(_, c)| votes[c] == best)
            .map(|(_, c)| *c)
    }
}

/// A confusion matrix over the four activity classes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// `counts[truth][predicted]`.
    pub counts: [[u64; 4]; 4],
}

impl ConfusionMatrix {
    fn index(class: ActivityClass) -> usize {
        ActivityClass::ALL.iter().position(|&c| c == class).unwrap()
    }

    /// Records one (truth, prediction) pair.
    pub fn record(&mut self, truth: ActivityClass, predicted: ActivityClass) {
        self.counts[Self::index(truth)][Self::index(predicted)] += 1;
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..4).map(|i| self.counts[i][i]).sum();
        let total: u64 = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;

    fn synth_window(scale: f64, seed: usize) -> Vec<f64> {
        (0..60)
            .map(|i| {
                let x = ((i + seed) as u64).wrapping_mul(2654435761) % 1000;
                5.0 + scale * (x as f64 / 1000.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn threshold_calibration_orders_boundaries() {
        let labelled = vec![
            (ActivityClass::Idle, 0.01),
            (ActivityClass::Idle, 0.02),
            (ActivityClass::Hold, 0.2),
            (ActivityClass::Hold, 0.25),
            (ActivityClass::Typing, 0.7),
            (ActivityClass::Typing, 0.8),
            (ActivityClass::Motion, 2.0),
            (ActivityClass::Motion, 2.4),
        ];
        let c = ThresholdClassifier::calibrate(&labelled);
        assert!(c.idle_below < c.hold_below);
        assert!(c.hold_below < c.typing_below);
        assert_eq!(c.classify(0.01), ActivityClass::Idle);
        assert_eq!(c.classify(0.22), ActivityClass::Hold);
        assert_eq!(c.classify(0.75), ActivityClass::Typing);
        assert_eq!(c.classify(3.0), ActivityClass::Motion);
    }

    #[test]
    fn knn_separates_scales() {
        let mut knn = KnnClassifier::new();
        for seed in 0..10 {
            knn.add_example(ActivityClass::Idle, extract(&synth_window(0.02, seed)));
            knn.add_example(
                ActivityClass::Motion,
                extract(&synth_window(3.0, seed + 100)),
            );
        }
        assert_eq!(knn.len(), 20);
        let idle_test = extract(&synth_window(0.02, 999));
        let motion_test = extract(&synth_window(3.0, 888));
        assert_eq!(knn.classify(&idle_test, 3), Some(ActivityClass::Idle));
        assert_eq!(knn.classify(&motion_test, 3), Some(ActivityClass::Motion));
    }

    #[test]
    fn knn_empty_and_zero_k() {
        let knn = KnnClassifier::new();
        assert!(knn.is_empty());
        assert_eq!(knn.classify(&FeatureVector::default(), 3), None);
        let mut knn = KnnClassifier::new();
        knn.add_example(ActivityClass::Idle, FeatureVector::default());
        assert_eq!(knn.classify(&FeatureVector::default(), 0), None);
    }

    #[test]
    fn confusion_matrix_accuracy() {
        let mut m = ConfusionMatrix::default();
        m.record(ActivityClass::Idle, ActivityClass::Idle);
        m.record(ActivityClass::Idle, ActivityClass::Idle);
        m.record(ActivityClass::Hold, ActivityClass::Typing);
        m.record(ActivityClass::Motion, ActivityClass::Motion);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn label_mapping() {
        assert_eq!(ActivityClass::from_label("idle"), ActivityClass::Idle);
        assert_eq!(ActivityClass::from_label("hold"), ActivityClass::Hold);
        assert_eq!(ActivityClass::from_label("typing"), ActivityClass::Typing);
        assert_eq!(ActivityClass::from_label("pickup"), ActivityClass::Motion);
        assert_eq!(ActivityClass::from_label("walk"), ActivityClass::Motion);
    }
}
