//! Server-sent events over chunked HTTP/1.1: the `/watch/<id>` wire
//! format, plus the blocking client `trace_query --follow` and the
//! integration tests use to tail it.
//!
//! The daemon's HTTP layer is one-shot by design (`Connection: close`,
//! `Content-Length` bodies); a live stream can't know its length up
//! front, so `/watch` is the one route framed with
//! `Transfer-Encoding: chunked` instead. Each SSE block —
//!
//! ```text
//! id: 17
//! event: trial_finished
//! data: {"seq":17,"kind":"trial_finished","done":3,"total":8}
//! <blank line>
//! ```
//!
//! — is written as exactly one chunk, so a subscriber never sees a
//! torn event. The `id:` line carries the journal sequence number,
//! which makes standard `Last-Event-ID` resume exact arithmetic: a
//! reconnecting client asks for `last + 1` and the server replays from
//! the journal (or reports the shed gap as an SSE comment).
//!
//! Writes can fail at any moment — a subscriber hanging up surfaces as
//! `EPIPE` (Rust ignores `SIGPIPE`), which the caller counts in
//! `daemon.watch.disconnected` and must treat as *that subscriber's*
//! problem: the job and every other subscriber proceed.

use polite_wifi_obs::events::ProgressEvent;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Writes the response head that switches the connection into an SSE
/// stream: 200, `text/event-stream`, chunked framing, close-on-end.
pub fn write_sse_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\n\
          content-type: text/event-stream\r\n\
          cache-control: no-store\r\n\
          transfer-encoding: chunked\r\n\
          connection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one payload as one chunk.
fn write_chunk(stream: &mut TcpStream, payload: &str) -> io::Result<()> {
    write!(stream, "{:x}\r\n{payload}\r\n", payload.len())?;
    stream.flush()
}

/// Writes one event as one SSE block in one chunk.
pub fn write_sse_event(stream: &mut TcpStream, event: &ProgressEvent) -> io::Result<()> {
    let block = format!(
        "id: {}\nevent: {}\ndata: {}\n\n",
        event.seq,
        event.kind,
        event.to_json()
    );
    write_chunk(stream, &block)
}

/// Writes an SSE comment block (used to report shed gaps in-band
/// without disturbing the `id:` sequence).
pub fn write_sse_comment(stream: &mut TcpStream, text: &str) -> io::Result<()> {
    write_chunk(stream, &format!(": {text}\n\n"))
}

/// Writes the terminal zero-length chunk that ends the stream.
pub fn finish_sse(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// One event as decoded by [`SseClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `id:` line — the journal sequence number.
    pub id: Option<u64>,
    /// The `event:` line — the [`ProgressEvent`] kind.
    pub event: String,
    /// The `data:` line — the event's JSON document.
    pub data: String,
}

/// A minimal blocking SSE subscriber: de-chunks the HTTP framing,
/// splits SSE blocks, skips comments. One connection, read until the
/// server ends the stream.
pub struct SseClient {
    reader: BufReader<TcpStream>,
    /// Decoded-but-unparsed stream text carried between chunks.
    buffer: String,
    /// Terminal chunk seen; no more reads.
    done: bool,
}

impl SseClient {
    /// Connects and subscribes to `target` (e.g. `/watch/3`). With
    /// `last_event_id`, sends the standard `Last-Event-ID` header so
    /// the server resumes after that sequence number. Returns the HTTP
    /// status and, when 200, a client positioned at the first event.
    pub fn connect(
        addr: SocketAddr,
        target: &str,
        last_event_id: Option<u64>,
    ) -> io::Result<(u16, SseClient)> {
        let mut stream = TcpStream::connect(addr)?;
        let resume = match last_event_id {
            Some(id) => format!("last-event-id: {id}\r\n"),
            None => String::new(),
        };
        stream.write_all(
            format!(
                "GET {target} HTTP/1.1\r\nhost: {addr}\r\naccept: text/event-stream\r\n\
                 {resume}connection: close\r\n\r\n"
            )
            .as_bytes(),
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut chunked = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.trim().eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                }
            }
        }
        Ok((
            status,
            SseClient {
                reader,
                buffer: String::new(),
                // Non-200 (or non-chunked error body): nothing to read.
                done: status != 200 || !chunked,
            },
        ))
    }

    /// Reads one chunk into the text buffer. Returns false at the
    /// terminal chunk (or EOF).
    fn read_chunk(&mut self) -> io::Result<bool> {
        let mut size_line = String::new();
        if self.reader.read_line(&mut size_line)? == 0 {
            return Ok(false);
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            return Ok(false);
        }
        let mut payload = vec![0u8; size + 2]; // chunk + trailing CRLF
        self.reader.read_exact(&mut payload)?;
        payload.truncate(size);
        self.buffer.push_str(&String::from_utf8_lossy(&payload));
        Ok(true)
    }

    /// The next event, or `None` once the server has ended the stream.
    /// Blocks while the stream is live but idle. Comments are skipped.
    pub fn next_event(&mut self) -> io::Result<Option<SseEvent>> {
        loop {
            // A complete SSE block is terminated by a blank line.
            if let Some(end) = self.buffer.find("\n\n") {
                let block: String = self.buffer.drain(..end + 2).collect();
                let mut event = SseEvent {
                    id: None,
                    event: String::new(),
                    data: String::new(),
                };
                for line in block.lines() {
                    if let Some(rest) = line.strip_prefix("id: ") {
                        event.id = rest.trim().parse().ok();
                    } else if let Some(rest) = line.strip_prefix("event: ") {
                        event.event = rest.trim().to_string();
                    } else if let Some(rest) = line.strip_prefix("data: ") {
                        event.data = rest.to_string();
                    }
                }
                if event.event.is_empty() && event.data.is_empty() {
                    continue; // comment block
                }
                return Ok(Some(event));
            }
            if self.done {
                return Ok(None);
            }
            if !self.read_chunk()? {
                self.done = true;
            }
        }
    }

    /// Drains the stream to its end, returning every remaining event.
    pub fn collect_events(&mut self) -> io::Result<Vec<SseEvent>> {
        let mut events = Vec::new();
        while let Some(event) = self.next_event()? {
            events.push(event);
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trip: server writes head + events + comment + terminal
    /// chunk; the client decodes exactly the events, in order.
    #[test]
    fn sse_events_round_trip_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Consume the request head.
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut saw_resume = false;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.to_ascii_lowercase().starts_with("last-event-id:") {
                    saw_resume = line.contains('5');
                }
                if line.trim_end().is_empty() {
                    break;
                }
            }
            assert!(saw_resume, "client must send Last-Event-ID");
            write_sse_head(&mut stream).unwrap();
            let mut e = ProgressEvent::new("trial_finished").with("done", 1).with("total", 2);
            e.seq = 6;
            write_sse_event(&mut stream, &e).unwrap();
            write_sse_comment(&mut stream, "shed 0 events").unwrap();
            let mut e = ProgressEvent::new("job_finished").with_detail("done");
            e.seq = 7;
            write_sse_event(&mut stream, &e).unwrap();
            finish_sse(&mut stream).unwrap();
        });

        let (status, mut client) = SseClient::connect(addr, "/watch/1", Some(5)).unwrap();
        assert_eq!(status, 200);
        let events = client.collect_events().unwrap();
        server.join().unwrap();

        assert_eq!(events.len(), 2, "comment must be skipped: {events:?}");
        assert_eq!(events[0].id, Some(6));
        assert_eq!(events[0].event, "trial_finished");
        assert!(events[0].data.contains("\"done\":1"));
        assert_eq!(events[1].id, Some(7));
        assert_eq!(events[1].event, "job_finished");
        assert!(events[1].data.contains("\"detail\":\"done\""));
        // The stream is over; further polls keep returning None.
        assert!(client.next_event().unwrap().is_none());
    }
}
