//! Receiver duplicate detection.
//!
//! 802.11 receivers cache the last `(transmitter, sequence, fragment)` seen
//! and drop retransmissions whose retry bit is set — *after* acknowledging
//! them. Duplicates of fake frames are therefore still ACKed, which is why
//! an injector can blast the same frame without rotating sequence numbers.

use polite_wifi_frame::{MacAddr, SequenceControl};
use std::collections::HashMap;

/// A bounded duplicate-detection cache.
#[derive(Debug, Clone)]
pub struct DedupCache {
    last_seen: HashMap<MacAddr, SequenceControl>,
    capacity: usize,
}

impl DedupCache {
    /// A cache remembering up to `capacity` transmitters (typical hardware
    /// keeps a handful; we default generously).
    pub fn new(capacity: usize) -> DedupCache {
        DedupCache {
            last_seen: HashMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a reception and reports whether it is a duplicate: same
    /// transmitter, same sequence control, and the retry bit set.
    pub fn check_and_update(&mut self, ta: MacAddr, seq: SequenceControl, retry: bool) -> bool {
        let dup = retry && self.last_seen.get(&ta) == Some(&seq);
        if !dup {
            if self.last_seen.len() >= self.capacity && !self.last_seen.contains_key(&ta) {
                // Evict an arbitrary entry; hardware caches are similarly
                // unfair under address churn.
                if let Some(&k) = self.last_seen.keys().next() {
                    self.last_seen.remove(&k);
                }
            }
            self.last_seen.insert(ta, seq);
        }
        dup
    }

    /// Number of transmitters currently tracked.
    pub fn len(&self) -> usize {
        self.last_seen.len()
    }

    /// True when no transmitter has been seen.
    pub fn is_empty(&self) -> bool {
        self.last_seen.is_empty()
    }
}

impl Default for DedupCache {
    fn default() -> Self {
        DedupCache::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    #[test]
    fn retry_of_same_seq_is_duplicate() {
        let mut c = DedupCache::default();
        let s = SequenceControl::new(100, 0);
        assert!(!c.check_and_update(mac(1), s, false));
        assert!(c.check_and_update(mac(1), s, true));
    }

    #[test]
    fn same_seq_without_retry_bit_is_not_duplicate() {
        // An injector reusing SN=0 with retry clear is accepted every time
        // — the paper's attacker relies on this.
        let mut c = DedupCache::default();
        let s = SequenceControl::new(0, 0);
        for _ in 0..10 {
            assert!(!c.check_and_update(mac(1), s, false));
        }
    }

    #[test]
    fn new_sequence_resets() {
        let mut c = DedupCache::default();
        assert!(!c.check_and_update(mac(1), SequenceControl::new(5, 0), false));
        assert!(!c.check_and_update(mac(1), SequenceControl::new(6, 0), true));
        assert!(c.check_and_update(mac(1), SequenceControl::new(6, 0), true));
    }

    #[test]
    fn per_transmitter_tracking() {
        let mut c = DedupCache::default();
        let s = SequenceControl::new(9, 0);
        assert!(!c.check_and_update(mac(1), s, false));
        assert!(!c.check_and_update(mac(2), s, true)); // different TA
    }

    #[test]
    fn capacity_bounded() {
        let mut c = DedupCache::new(4);
        for i in 0..20 {
            c.check_and_update(mac(i), SequenceControl::new(i as u16, 0), false);
        }
        assert!(c.len() <= 4);
    }
}
