//! X4 — extension: from "the patterns are very distinct" to a scored
//! classifier.
//!
//! Figure 5 argues by eyeball; this experiment quantifies it. Many
//! independent sessions per activity class are generated on fresh channel
//! realisations, window features extracted, and a k-NN classifier scored
//! with session-held-out evaluation — the honest protocol (no window of a
//! test session in training).

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_harness::{Experiment, RunArgs};
use polite_wifi_sensing::classify::ActivityClass;
use polite_wifi_sensing::dataset::{cross_session_accuracy, generate_dataset, mean_std_of_class};
use serde::Serialize;

#[derive(Serialize)]
struct ClassifierResult {
    sessions_per_class: usize,
    windows_scored: u64,
    accuracy: f64,
    confusion: Vec<Vec<u64>>,
    class_order: Vec<String>,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    if !exp.args().faults.is_clean() {
        println!(
            "\n(note: the classifier works on synthesised CSI series — `--faults {}` has no medium to degrade here)",
            exp.args().faults
        );
    }

    // Feature-separation sanity (the Figure 5 ordering).
    let sessions = generate_dataset(3, 900, 45, 15, 5, 17);
    println!("\nmean window std by class (Figure 5's ordering):");
    for class in ActivityClass::ALL {
        println!("  {:?}: {:.4}", class, mean_std_of_class(&sessions, class));
    }

    // Held-out evaluation.
    let sessions_per_class = 6;
    let matrix = cross_session_accuracy(sessions_per_class, 1350, exp.seed());
    let accuracy = matrix.accuracy();
    exp.metrics.record("accuracy", accuracy);
    exp.metrics.record("windows_scored", matrix.total() as f64);
    exp.obs.add("sensing.windows_scored", matrix.total());
    exp.obs.add(
        "sensing.windows_correct",
        (0..4).map(|i| matrix.counts[i][i]).sum(),
    );

    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    println!(
        "{:>8} {:>6} {:>6} {:>6} {:>6}",
        "", "Idle", "Hold", "Typing", "Motion"
    );
    for (i, class) in ActivityClass::ALL.iter().enumerate() {
        print!("{:>8}", format!("{class:?}"));
        for j in 0..4 {
            print!(" {:>6}", matrix.counts[i][j]);
        }
        println!();
    }

    println!();
    compare(
        "activities separable from ACK CSI",
        "\"very distinct\" (by eye)",
        &format!(
            "{:.1}% held-out accuracy over {} windows (chance: 25%)",
            accuracy * 100.0,
            matrix.total()
        ),
    );
    assert!(accuracy > 0.8, "accuracy {accuracy}");
    assert!(matrix.total() > 500);

    exp.finish_with_status(
        &spec.slug,
        &ClassifierResult {
            sessions_per_class,
            windows_scored: matrix.total(),
            accuracy,
            confusion: matrix.counts.iter().map(|row| row.to_vec()).collect(),
            class_order: ActivityClass::ALL
                .iter()
                .map(|c| format!("{c:?}"))
                .collect(),
        },
    )
}
