//! Signal conditioning: Hampel outlier rejection and moving averages.
//!
//! Raw per-ACK CSI carries impulsive measurement noise; WiFi-sensing
//! pipelines (WindTalker and friends) conventionally Hampel-filter and
//! then smooth before feature extraction. The `csi_pipeline` bench
//! ablates raw vs filtered input.

/// Median of a slice (by copy). Average of the middle pair for even
/// lengths.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in CSI"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation (unscaled).
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Hampel filter: replaces samples more than `n_sigma` scaled MADs from
/// the window median with the median. `half_window` samples are used on
/// each side.
pub fn hampel(series: &[f64], half_window: usize, n_sigma: f64) -> Vec<f64> {
    const MAD_TO_SIGMA: f64 = 1.4826;
    let n = series.len();
    let mut out = series.to_vec();
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        let window = &series[lo..hi];
        let med = median(window);
        let sigma = MAD_TO_SIGMA * mad(window);
        let deviation = (series[i] - med).abs();
        // sigma == 0 means the window is (near-)constant: any deviation at
        // all is then an outlier — the classic Hampel degenerate case.
        if deviation > n_sigma * sigma && deviation > f64::EPSILON {
            out[i] = med;
        }
    }
    out
}

/// Centred moving average with a window of `2*half_window + 1` samples
/// (shrinking at the edges).
pub fn moving_average(series: &[f64], half_window: usize) -> Vec<f64> {
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        let sum: f64 = series[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

/// The standard conditioning chain: Hampel (±5 samples, 3σ) then a
/// moving average (±2 samples). Dispatches to the batched kernels under
/// the active [`crate::batch::BatchPolicy`]; the default `Exact` policy
/// is bit-identical to [`condition_scalar`].
pub fn condition(series: &[f64]) -> Vec<f64> {
    crate::batch::condition_with_policy(series, crate::batch::BatchPolicy::active())
}

/// The scalar reference conditioning chain, kept verbatim as the
/// semantics the batched kernels are pinned against.
pub fn condition_scalar(series: &[f64]) -> Vec<f64> {
    moving_average(&hampel(series, 5, 3.0), 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn hampel_removes_single_spike() {
        let mut series = vec![1.0; 50];
        series[25] = 100.0;
        let filtered = hampel(&series, 5, 3.0);
        assert_eq!(filtered[25], 1.0);
        // Everything else untouched.
        assert!(filtered
            .iter()
            .enumerate()
            .all(|(i, &v)| i == 25 || v == 1.0));
    }

    #[test]
    fn hampel_preserves_genuine_steps() {
        // A sustained level change is signal, not an outlier.
        let mut series = vec![1.0; 30];
        series.extend(vec![5.0; 30]);
        let filtered = hampel(&series, 5, 3.0);
        assert_eq!(&filtered[40..50], &[5.0; 10]);
    }

    #[test]
    fn moving_average_smooths() {
        let series = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let smooth = moving_average(&series, 1);
        // Interior points average to (10+0+10)/3 or (0+10+0)/3.
        assert!((smooth[2] - 20.0 / 3.0).abs() < 1e-9);
        assert!((smooth[3] - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_identity_with_zero_window() {
        let series = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&series, 0), series.to_vec());
    }

    #[test]
    fn condition_reduces_variance_of_noisy_constant() {
        // Deterministic pseudo-noise.
        let series: Vec<f64> = (0..200)
            .map(|i| 5.0 + ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 0.2)
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        let conditioned = condition(&series);
        assert!(var(&conditioned) < var(&series) * 0.6);
        assert_eq!(conditioned.len(), series.len());
    }

    #[test]
    fn empty_series_handled() {
        assert!(hampel(&[], 5, 3.0).is_empty());
        assert!(moving_average(&[], 3).is_empty());
        assert!(condition(&[]).is_empty());
    }

    #[test]
    fn condition_matches_scalar_reference() {
        let series: Vec<f64> = (0..300)
            .map(|i| 5.0 + ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        // Under the default Exact policy the dispatching entry point must
        // be bit-identical to the scalar chain.
        if crate::batch::BatchPolicy::active() != crate::batch::BatchPolicy::Reassociated {
            assert_eq!(condition(&series), condition_scalar(&series));
        }
    }
}
