//! Maps a spec's `runner` field to the code that executes it.

use crate::spec::ScenarioSpec;
use polite_wifi_harness::RunArgs;
use std::io;

type RunnerFn = fn(&ScenarioSpec, RunArgs) -> io::Result<i32>;

/// Every registered runner, name → entry point. `generic` interprets
/// the spec alone; the rest are the ported paper experiments.
const RUNNERS: &[(&str, RunnerFn)] = &[
    ("generic", crate::generic::run),
    (
        "ablation_validate",
        crate::experiments::ablation_validate::run,
    ),
    ("battery_life", crate::experiments::battery_life::run),
    ("city_wardrive", crate::experiments::city_wardrive::run),
    ("ext_classifier", crate::experiments::ext_classifier::run),
    ("ext_driveby", crate::experiments::ext_driveby::run),
    ("ext_nav_dos", crate::experiments::ext_nav_dos::run),
    (
        "ext_randomization",
        crate::experiments::ext_randomization::run,
    ),
    ("ext_ranging", crate::experiments::ext_ranging::run),
    ("ext_vitals", crate::experiments::ext_vitals::run),
    ("fig2_trace", crate::experiments::fig2_trace::run),
    ("fig3_deauth", crate::experiments::fig3_deauth::run),
    ("fig5_keystroke", crate::experiments::fig5_keystroke::run),
    ("fig6_power", crate::experiments::fig6_power::run),
    ("sensing_hub", crate::experiments::sensing_hub::run),
    ("sifs_timing", crate::experiments::sifs_timing::run),
    ("table1_devices", crate::experiments::table1_devices::run),
    ("table2_wardrive", crate::experiments::table2_wardrive::run),
];

/// All registered runner names (for `exp_run --list` and diagnostics).
pub fn runner_names() -> Vec<&'static str> {
    RUNNERS.iter().map(|(name, _)| *name).collect()
}

/// Dispatches a parsed spec to its runner. Errors if the spec names a
/// runner this build doesn't know.
pub fn run_spec(spec: &ScenarioSpec, args: RunArgs) -> io::Result<i32> {
    match RUNNERS.iter().find(|(name, _)| *name == spec.runner) {
        Some((_, run)) => run(spec, args),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "scenario names unknown runner `{}` (known: {})",
                spec.runner,
                runner_names().join(", ")
            ),
        )),
    }
}
