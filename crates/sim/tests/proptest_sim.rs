//! Property tests on the simulator: conservation and sanity invariants
//! that must hold for arbitrary injection schedules.

use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{FaultProfile, PropagationMode, SimConfig, Simulator};
use proptest::prelude::*;

fn victim_mac() -> MacAddr {
    MacAddr::new([0xf2, 0x6e, 0x0b, 0x11, 0x22, 0x33])
}

/// A schedule of (time, rate-index) injections.
fn arb_schedule() -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0u64..3_000_000, 0u8..12), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ACKs received by the attacker never exceed ACKs sent by the victim,
    /// and both never exceed the number of injected frames.
    #[test]
    fn ack_conservation(schedule in arb_schedule(), seed in 0u64..1000) {
        let mut sim = Simulator::new(SimConfig::default(), seed);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_retries(attacker, false);
        let n = schedule.len() as u64;
        for (t, r) in schedule {
            let rate = BitRate::ALL[r as usize % 12];
            sim.inject(t, attacker, builder::fake_null_frame(victim_mac(), MacAddr::FAKE), rate);
        }
        sim.run_until(10_000_000);
        let acks_sent = sim.station(victim).stats.acks_sent;
        let acks_rx = sim.node(attacker).acks_received;
        prop_assert!(acks_sent <= n, "{acks_sent} > {n}");
        prop_assert!(acks_rx <= acks_sent, "{acks_rx} > {acks_sent}");
        // Clean close-range channel: nearly everything goes through.
        prop_assert!(acks_rx + 5 >= n.min(acks_sent), "rx {acks_rx} of {n}");
    }

    /// The radio ledger accounts every microsecond exactly once.
    #[test]
    fn ledger_time_conservation(schedule in arb_schedule(), seed in 0u64..1000) {
        let mut sim = Simulator::new(SimConfig::default(), seed);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = polite_wifi_mac::Behavior::iot_power_save();
        let victim = sim.add_node(cfg, (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_retries(attacker, false);
        for (t, _) in schedule {
            sim.inject(t, attacker, builder::fake_null_frame(victim_mac(), MacAddr::FAKE), BitRate::Mbps1);
        }
        let horizon = 5_000_000;
        sim.run_until(horizon);
        for id in [victim, attacker] {
            let totals = sim.node(id).ledger.snapshot(sim.now_us());
            prop_assert_eq!(totals.total_us(), sim.now_us(), "node {:?}", id);
        }
    }

    /// Determinism: identical seeds and schedules give identical stats.
    #[test]
    fn replay_determinism(schedule in arb_schedule(), seed in 0u64..100) {
        let run = |sched: &[(u64, u8)]| {
            let mut sim = Simulator::new(SimConfig::default(), seed);
            let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
            let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
            for &(t, r) in sched {
                let rate = BitRate::ALL[r as usize % 12];
                sim.inject(t, attacker, builder::fake_null_frame(victim_mac(), MacAddr::FAKE), rate);
            }
            sim.run_until(10_000_000);
            (
                sim.station(victim).stats,
                sim.node(attacker).acks_received,
                sim.global_capture().len(),
            )
        };
        prop_assert_eq!(run(&schedule), run(&schedule));
    }

    /// The city-core equivalence (DESIGN.md §11): for arbitrary
    /// populations, the cell-sharded propagation mode produces exactly
    /// the reception fates of the all-pairs oracle — under a clean
    /// medium and under the urban-drive fault profile alike. The
    /// attacker drives past the population so the grid's mobile list is
    /// exercised, not just the static buckets.
    #[test]
    fn cell_grid_matches_all_pairs_oracle(
        positions in proptest::collection::vec((-600.0f64..600.0, -600.0f64..600.0), 2..20),
        schedule in arb_schedule(),
        seed in 0u64..200,
    ) {
        for profile in [FaultProfile::Clean, FaultProfile::UrbanDrive] {
            let run = |mode: PropagationMode| {
                let cfg = SimConfig { propagation: mode, ..SimConfig::default() };
                let mut sim = Simulator::new(cfg, seed);
                // One AP for beacon/probe traffic, clients elsewhere.
                let mut nodes = Vec::new();
                for (i, &pos) in positions.iter().enumerate() {
                    let mac = MacAddr::new([0xf2, 0x6e, 0x0b, 0, 0, i as u8]);
                    let cfg = if i == 0 {
                        StationConfig::access_point(mac, "GridNet")
                    } else {
                        StationConfig::client(mac)
                    };
                    nodes.push(sim.add_node(cfg, pos));
                }
                let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (-650.0, 0.0));
                sim.set_retries(attacker, false);
                sim.set_velocity(attacker, (13.9, 0.0));
                sim.install_faults(&profile.plan());
                for &(t, r) in &schedule {
                    let mac = MacAddr::new(
                        [0xf2, 0x6e, 0x0b, 0, 0, ((r as usize) % positions.len()) as u8],
                    );
                    let rate = BitRate::ALL[r as usize % 12];
                    sim.inject(t, attacker, builder::fake_null_frame(mac, MacAddr::FAKE), rate);
                }
                sim.run_until(4_000_000);
                let stats: Vec<_> = nodes.iter().map(|&id| sim.station(id).stats).collect();
                (
                    stats,
                    sim.node(attacker).acks_received,
                    sim.global_capture().len(),
                    sim.events_dispatched(),
                    sim.obs().metrics_json(),
                )
            };
            let oracle = run(PropagationMode::OracleAllPairs);
            let grid = run(PropagationMode::CellGrid);
            prop_assert_eq!(&oracle, &grid, "fates diverged under {:?}", profile);
        }
    }

    /// Simulated time never runs backwards and the run always terminates.
    #[test]
    fn time_monotone_and_terminating(schedule in arb_schedule()) {
        let mut sim = Simulator::new(SimConfig::default(), 3);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let _ = victim;
        for (t, _) in schedule {
            sim.inject(t, attacker, builder::fake_null_frame(victim_mac(), MacAddr::FAKE), BitRate::Mbps1);
        }
        let mut last = 0;
        for step in 1..=10u64 {
            sim.run_until(step * 500_000);
            prop_assert!(sim.now_us() >= last);
            last = sim.now_us();
        }
    }
}
