//! The experiment facade and unified result schema.
//!
//! Every experiment binary follows the same lifecycle:
//!
//! ```text
//! let mut exp = Experiment::start("E1: ...", "Figure 2 of ...");
//! // ... run trials via exp.args() / exp.runner(), record into
//! //     exp.metrics ...
//! exp.finish("fig2_trace", &payload)?;   // prints + writes results/fig2_trace.json
//! ```
//!
//! [`Experiment::finish`] writes one JSON document with a fixed
//! envelope — experiment name, paper reference, seed, trial/worker
//! counts, metric summaries — and the experiment-specific payload under
//! `payload`. Consumers (EXPERIMENTS.md tooling, plots) can rely on the
//! envelope without knowing any experiment's payload shape.

use crate::ledger::{MetricSummary, MetricsLedger};
use crate::runner::{RunArgs, Runner};
use polite_wifi_obs::{Obs, ObsConfig};
use serde::Serialize;
use serde_json::Value;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// Directory experiment JSON results are written to. Honours the
/// `POLITE_WIFI_RESULTS` override; created on demand by [`write_json`].
pub fn results_dir() -> PathBuf {
    std::env::var("POLITE_WIFI_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Serialises a value to `results/<name>.json`, creating the directory
/// if needed. Returns the path written.
pub fn write_json<T: Serialize + ?Sized>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The fixed envelope every experiment result is written in.
#[derive(Serialize)]
struct ReportEnvelope {
    experiment: String,
    paper_ref: String,
    seed: u64,
    trials: u64,
    workers: u64,
    quick: bool,
    metrics: Vec<MetricSummary>,
    obs: Value,
    payload: Value,
}

/// Lowers an observability scope into the envelope's `obs` field:
/// counters and histograms in sorted-name order (matching
/// [`Obs::metrics_json`], so the envelope inherits its byte-stability
/// across worker counts).
fn obs_value(obs: &Obs) -> Value {
    let counters: Vec<(String, Value)> = obs
        .counters
        .sorted()
        .into_iter()
        .map(|(name, v)| (name.to_string(), Value::UInt(v)))
        .collect();
    let histograms: Vec<(String, Value)> = obs
        .histograms
        .sorted()
        .into_iter()
        .map(|(name, h)| {
            let buckets: Vec<(String, Value)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i.to_string(), Value::UInt(*n)))
                .collect();
            (
                name.to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(h.count)),
                    ("sum".to_string(), Value::UInt(h.sum)),
                    (
                        "min".to_string(),
                        Value::UInt(if h.count == 0 { 0 } else { h.min }),
                    ),
                    ("max".to_string(), Value::UInt(h.max)),
                    ("buckets".to_string(), Value::Object(buckets)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("counters".to_string(), Value::Object(counters)),
        ("histograms".to_string(), Value::Object(histograms)),
        ("spans_dropped".to_string(), Value::UInt(obs.spans.dropped)),
        ("events_evicted".to_string(), Value::UInt(obs.ring.evicted)),
    ])
}

/// Lifecycle handle for one experiment run.
pub struct Experiment {
    name: String,
    paper_ref: String,
    args: RunArgs,
    /// Experiment-level metric accumulators, summarised into the JSON
    /// envelope on [`finish`](Self::finish).
    pub metrics: MetricsLedger,
    /// The experiment's merged observability scope: per-trial snapshots
    /// [`absorb_obs`](Self::absorb_obs)ed in trial order plus anything
    /// recorded directly. Embedded in the envelope and, when
    /// `--trace-out` was given, exported as a Chrome trace on finish.
    pub obs: Obs,
    absorbed: u64,
    started: Instant,
}

impl Experiment {
    /// Starts an experiment: prints the standard header and parses the
    /// shared `--trials/--workers/--seed/--quick` flags from the
    /// process arguments (exiting with a usage message on bad input).
    pub fn start(name: &str, paper_ref: &str) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(RunArgs::default()))
    }

    /// Starts an experiment with experiment-specific default arguments
    /// (still overridable from the command line).
    pub fn start_defaults(name: &str, paper_ref: &str, defaults: RunArgs) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(defaults))
    }

    /// Starts an experiment with fully explicit arguments (for tests).
    pub fn start_with(name: &str, paper_ref: &str, args: RunArgs) -> Experiment {
        // Span recording costs memory; only turn it on when the run will
        // actually export a trace. First install wins process-wide (so a
        // test driving several experiments keeps one consistent config).
        polite_wifi_obs::install(ObsConfig {
            spans: args.trace_out.is_some(),
            ..ObsConfig::default()
        });
        println!("{}", "=".repeat(72));
        println!("{name}");
        println!("reproduces: {paper_ref}");
        println!(
            "seed {}   trials {}   workers {}{}",
            args.seed,
            args.trials,
            args.workers,
            if args.quick { "   (quick)" } else { "" }
        );
        println!("{}", "=".repeat(72));
        Experiment {
            name: name.to_string(),
            paper_ref: paper_ref.to_string(),
            args,
            metrics: MetricsLedger::new(),
            obs: Obs::new(),
            absorbed: 0,
            started: Instant::now(),
        }
    }

    /// The parsed run arguments.
    pub fn args(&self) -> RunArgs {
        self.args.clone()
    }

    /// Folds one trial's observability snapshot (usually
    /// `scenario.sim.take_obs()`) into the experiment scope, tagging its
    /// spans with the absorb index. **Call in trial order** — the runner
    /// returns per-trial results index-sorted, so iterating those and
    /// absorbing as you go preserves the byte-identical-across-workers
    /// guarantee.
    pub fn absorb_obs(&mut self, snapshot: Obs) {
        self.obs.absorb(&snapshot, self.absorbed);
        self.absorbed += 1;
    }

    /// Base seed for this run.
    pub fn seed(&self) -> u64 {
        self.args.seed
    }

    /// A worker pool sized from `--workers`.
    pub fn runner(&self) -> Runner {
        self.args.runner()
    }

    /// Finishes the experiment: merges the payload into the unified
    /// envelope, writes `results/<slug>.json`, and prints where.
    pub fn finish<T: Serialize>(self, slug: &str, payload: &T) -> io::Result<()> {
        let envelope = ReportEnvelope {
            experiment: self.name,
            paper_ref: self.paper_ref,
            seed: self.args.seed,
            trials: self.args.trials as u64,
            workers: self.args.workers as u64,
            quick: self.args.quick,
            metrics: self.metrics.summaries(),
            obs: obs_value(&self.obs),
            payload: serde_json::to_value(payload).map_err(io::Error::other)?,
        };
        let path = write_json(slug, &envelope)?;
        if let Some(trace_path) = &self.args.trace_out {
            if let Some(dir) = trace_path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(trace_path, self.obs.chrome_trace_json())?;
            println!(
                "[chrome trace written to {} — open in chrome://tracing or ui.perfetto.dev]",
                trace_path.display()
            );
        }
        println!(
            "\n[result JSON written to {} in {:.2}s]",
            path.display(),
            self.started.elapsed().as_secs_f64()
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ResultsDirGuard(Option<String>);

    impl ResultsDirGuard {
        fn set(dir: &std::path::Path) -> ResultsDirGuard {
            let old = std::env::var("POLITE_WIFI_RESULTS").ok();
            std::env::set_var("POLITE_WIFI_RESULTS", dir);
            ResultsDirGuard(old)
        }
    }

    impl Drop for ResultsDirGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(old) => std::env::set_var("POLITE_WIFI_RESULTS", old),
                None => std::env::remove_var("POLITE_WIFI_RESULTS"),
            }
        }
    }

    #[derive(Serialize)]
    struct Payload {
        acks: u64,
    }

    #[test]
    fn finish_writes_unified_envelope() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        let args = RunArgs {
            trials: 3,
            workers: 2,
            seed: 11,
            quick: true,
            trace_out: None,
        };
        let mut exp = Experiment::start_with("E0: smoke", "none", args);
        exp.metrics.record("acks", 5.0);
        exp.obs.add("sim.frames_injected", 9);
        exp.obs.observe("mac.ack_turnaround_us", 10);
        exp.finish("smoke", &Payload { acks: 5 }).unwrap();

        let written = std::fs::read_to_string(dir.join("smoke.json")).unwrap();
        for needle in [
            "\"experiment\": \"E0: smoke\"",
            "\"seed\": 11",
            "\"trials\": 3",
            "\"workers\": 2",
            "\"quick\": true",
            "\"name\": \"acks\"",
            "\"obs\": {",
            "\"sim.frames_injected\": 9",
            "\"mac.ack_turnaround_us\": {",
            "\"payload\": {",
            "\"acks\": 5",
        ] {
            assert!(written.contains(needle), "missing {needle} in:\n{written}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_obs_merges_in_trial_order() {
        let mut exp = Experiment::start_with("E0: obs", "none", RunArgs::default());
        let mut t0 = Obs::new();
        t0.add("sim.acks_received", 2);
        let mut t1 = Obs::new();
        t1.add("sim.acks_received", 3);
        t1.observe("sim.exchange_rtt_us", 730);
        exp.absorb_obs(t0);
        exp.absorb_obs(t1);
        assert_eq!(exp.obs.counters.get("sim.acks_received"), 5);
        assert_eq!(
            exp.obs.histograms.get("sim.exchange_rtt_us").unwrap().count,
            1
        );
    }

    #[test]
    fn trace_out_writes_a_chrome_trace() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);
        let trace_path = dir.join("trace.json");

        let args = RunArgs {
            trace_out: Some(trace_path.clone()),
            ..RunArgs::default()
        };
        let mut exp = Experiment::start_with("E0: trace", "none", args);
        // Span recording may be off process-wide (another test installed
        // the default config first), but the trace file must exist and
        // be valid either way.
        exp.obs.add("sim.frames_injected", 1);
        exp.finish("trace_smoke", &Payload { acks: 0 }).unwrap();

        let written = std::fs::read_to_string(&trace_path).unwrap();
        let parsed = polite_wifi_obs::json::parse(&written).unwrap();
        assert!(parsed.get("traceEvents").unwrap().as_array().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
