//! Declarative scenarios: every experiment as a data file.
//!
//! This crate is the workspace's single experiment entry point. A
//! scenario is one JSON file under `scenarios/` composing population,
//! topology, fault profile, attacker strategies, defender probes,
//! pass/fail assertions, trials and seed (grammar: [`spec`], DESIGN.md
//! §13). `exp_run SCENARIO.json` executes any of them; the historical
//! `exp_*` binaries are thin wrappers that embed their scenario file
//! and dispatch through the same [`registry`].
//!
//! Two kinds of runner exist:
//!
//! * [`generic`] — fully interpreted: the spec alone drives
//!   [`ScenarioBuilder`](polite_wifi_harness::ScenarioBuilder)
//!   construction, composes attacks/probes from the
//!   `polite-wifi-core` trait layer, and checks the assertion block.
//!   Related-work scenarios (Block-Ack paralysis, PMF deauth
//!   resilience) land purely as data files this way.
//! * [`experiments`] — ported paper experiments whose logic is
//!   irreducibly programmatic (parameter sweeps, classifiers, city
//!   scale). Their specs carry identity + run defaults + tuning
//!   params; output stays byte-identical to the pre-port binaries.

pub mod experiments;
pub mod generic;
pub mod hash;
pub mod registry;
pub mod spec;
pub mod support;

pub use hash::fnv1a64;
pub use registry::{run_spec, runner_names};
pub use spec::{
    behavior_from_label, bitrate_from_label, propagation_from_label, AssertionSpec, AttackSpec,
    NodeKind, NodeSpec, ParamValue, ProbeSpec, RunSpec, ScenarioSpec, TopologySpec,
};
