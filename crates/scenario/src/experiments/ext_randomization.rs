//! X3 — extension: MAC randomisation vs the survey.
//!
//! The paper's 2020 survey attributed every responder to a vendor by its
//! OUI. Modern phones randomise their MAC addresses, which hides the
//! vendor — but, as this experiment shows, does nothing about the ACK:
//! every randomised device still answers fake frames. Attribution
//! degrades; the attack surface does not.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::WardriveScanner;
use polite_wifi_devices::{CityPopulation, DeviceSpec};
use polite_wifi_harness::{Experiment, RunArgs};
use serde::Serialize;

#[derive(Serialize)]
struct RandomizationResult {
    fraction: f64,
    discovered: usize,
    verified: usize,
    unknown_clients: u32,
    apple_clients_attributed: u32,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();

    // A phone-heavy slice of the city: Apple/Google/Samsung clients + APs.
    let full = CityPopulation::table2(30);
    let mut base: Vec<DeviceSpec> = full
        .clients()
        .filter(|d| ["Apple", "Google", "Samsung"].contains(&d.vendor.as_str()))
        .take(90)
        .cloned()
        .collect();
    base.extend(full.aps().take(30).cloned());

    println!(
        "\nslice: {} devices (90 phone clients, 30 APs)\n",
        base.len()
    );
    println!(
        "{:>10} {:>11} {:>9} {:>9} {:>16}",
        "randomised", "discovered", "verified", "unknown", "Apple attributed"
    );

    let mut rows = Vec::new();
    for fraction in [0.0, 0.5, 1.0] {
        let slice = CityPopulation {
            devices: base.clone(),
            registry: full.registry.clone(),
        }
        .with_randomized_client_macs(fraction, 7);
        let report = WardriveScanner {
            segment_size: 40,
            dwell_us: 2_500_000,
            seed: exp.seed(),
            faults: args.faults,
            ..WardriveScanner::default()
        }
        .run_observed(&slice, args.workers, &mut exp.obs);
        exp.note_quarantined(report.quarantined as u64);
        let unknown = report
            .client_counts
            .iter()
            .find(|(v, _)| v.starts_with("Unknown"))
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let apple = report
            .client_counts
            .iter()
            .find(|(v, _)| v == "Apple")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        println!(
            "{:>9.0}% {:>11} {:>9} {:>9} {:>16}",
            fraction * 100.0,
            report.discovered,
            report.verified,
            unknown,
            apple
        );
        if args.faults.is_clean() {
            assert_eq!(report.verified, report.discovered, "ACKs unaffected");
        }
        exp.metrics.record("verified", report.verified as f64);
        exp.obs.add("wardrive.discovered", report.discovered as u64);
        exp.obs.add("wardrive.verified", report.verified as u64);
        rows.push(RandomizationResult {
            fraction,
            discovered: report.discovered,
            verified: report.verified,
            unknown_clients: unknown,
            apple_clients_attributed: apple,
        });
    }

    println!();
    compare(
        "randomisation stops the ACKs",
        "no (protocol-level)",
        "no — 100% respond at every fraction",
    );
    compare(
        "randomisation hides the vendor",
        "yes",
        &format!(
            "Apple attribution {} → {} as randomisation goes 0% → 100%",
            rows[0].apple_clients_attributed, rows[2].apple_clients_attributed
        ),
    );
    if args.faults.is_clean() {
        assert!(rows[0].unknown_clients == 0);
        assert!(rows[2].apple_clients_attributed == 0);
        assert!(rows[2].unknown_clients >= 85);
    }
    exp.finish_with_status(&spec.slug, &rows)
}
