//! `polite-wifi-d` — serve the scenario pipeline over HTTP.
//!
//! ```text
//! polite-wifi-d --port 7632 --workers 2 --state-dir daemon-state
//! curl -X POST --data-binary @scenarios/fig2_trace.json \
//!      'http://127.0.0.1:7632/submit?wait=1'
//! ```
//!
//! Runs until `POST /shutdown` or SIGTERM/SIGINT, then drains: stops
//! admitting, finishes in-flight jobs, persists the job table, exits 0.

use polite_wifi_daemon::{Daemon, DaemonConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_term); // SIGINT
        signal(15, on_term); // SIGTERM
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: polite-wifi-d [--port N] [--bind ADDR] [--workers N] [--queue-depth N]\n       \
         [--timeout-secs N] [--retries N] [--state-dir DIR]\n       \
         [--journal-capacity N] [--history-window-ms N]"
    );
    std::process::exit(2);
}

fn parse_config() -> DaemonConfig {
    let mut config = DaemonConfig {
        bind: "127.0.0.1:7632".to_string(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("polite-wifi-d: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--port" => {
                let port: u16 = value("--port").parse().unwrap_or_else(|_| usage());
                config.bind = format!("127.0.0.1:{port}");
            }
            "--bind" => config.bind = value("--bind"),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-secs" => {
                config.job_timeout =
                    Duration::from_secs(value("--timeout-secs").parse().unwrap_or_else(|_| usage()))
            }
            "--retries" => {
                config.retry_max = value("--retries").parse().unwrap_or_else(|_| usage())
            }
            "--state-dir" => config.state_dir = value("--state-dir").into(),
            "--journal-capacity" => {
                config.journal_capacity = value("--journal-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--history-window-ms" => {
                config.history_window = Duration::from_millis(
                    value("--history-window-ms").parse().unwrap_or_else(|_| usage()),
                )
            }
            "--help" => usage(),
            other => {
                eprintln!("polite-wifi-d: unknown flag `{other}`");
                usage();
            }
        }
    }
    config
}

fn main() -> std::io::Result<()> {
    install_signal_handlers();
    let config = parse_config();
    let daemon = Daemon::start(config)?;
    println!("polite-wifi-d listening on {}", daemon.addr());
    while !daemon.shutdown_requested() && !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("polite-wifi-d draining");
    let inflight = daemon.drain()?;
    println!("polite-wifi-d drained ({inflight} job(s) were in flight) — bye");
    Ok(())
}
