//! E7 — Figure 6: power consumption vs fake-frame rate.
//!
//! Sweeps injection rates against an ESP8266 in power-save mode and
//! checks the paper's three anchors: ~10 mW idle, ~230 mW past the
//! 10 pps knee, ~360 mW at 900 pps (a 35× increase).

use polite_wifi_bench::{bar, compare, header, write_json};
use polite_wifi_core::BatteryDrainAttack;

fn main() {
    header(
        "E7: battery-drain attack — power vs fake-frame rate",
        "Figure 6 + §4.2 of the paper",
    );

    let rates = [0u32, 1, 2, 5, 8, 10, 15, 20, 50, 100, 200, 300, 500, 700, 900];
    println!("\n{:>8} {:>10} {:>8}  power", "pps", "mW", "sleep%");
    let measurements = BatteryDrainAttack::sweep(&rates, 2020);
    for m in &measurements {
        println!(
            "{:>8} {:>10.1} {:>8.1}  {}",
            m.rate_pps,
            m.average_power_mw,
            m.sleep_fraction * 100.0,
            bar(m.average_power_mw, 400.0, 36)
        );
    }

    let at = |pps: u32| {
        measurements
            .iter()
            .find(|m| m.rate_pps == pps)
            .expect("rate measured")
    };
    let baseline = at(0).average_power_mw;
    let knee = at(20).average_power_mw;
    let top = at(900).average_power_mw;

    println!();
    compare("no attack (power save works)", "~10 mW", &format!("{baseline:.1} mW"));
    compare(">10 pps keeps the radio on", "~230 mW", &format!("{knee:.1} mW @ 20 pps"));
    compare("900 pps", "~360 mW", &format!("{top:.1} mW"));
    compare("increase factor", "35x", &format!("{:.0}x", top / baseline));

    // Linearity above the knee, as the paper notes.
    let p100 = at(100).average_power_mw;
    let p500 = at(500).average_power_mw;
    let p900 = at(900).average_power_mw;
    let slope1 = (p500 - p100) / 400.0;
    let slope2 = (p900 - p500) / 400.0;
    compare(
        "power grows linearly with rate",
        "yes",
        &format!("slopes {:.3} / {:.3} mW per pps", slope1, slope2),
    );

    assert!((5.0..20.0).contains(&baseline), "baseline {baseline}");
    assert!((200.0..260.0).contains(&knee), "knee {knee}");
    assert!((320.0..400.0).contains(&top), "top {top}");
    let factor = top / baseline;
    assert!((20.0..50.0).contains(&factor), "factor {factor}");
    assert!((slope1 - slope2).abs() < 0.08, "not linear: {slope1} vs {slope2}");

    write_json("fig6_power", &measurements);
}
