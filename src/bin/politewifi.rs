//! `politewifi` — command-line front end to the Polite WiFi toolkit.
//!
//! ```text
//! politewifi quickstart [--seed N] [--out FILE.pcap|FILE.pcapng]
//! politewifi drain --rate PPS [--seconds S] [--rts]
//! politewifi keystroke [--seed N]
//! politewifi survey [--devices N] [--seed N]
//! politewifi analyze FILE.pcap [--attacker MAC]
//! politewifi sifs
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! favours a small footprint over a CLI framework).

use polite_wifi::core::{
    analysis, AckVerifier, BatteryDrainAttack, InjectionKind, KeystrokeAttack, WardriveScanner,
};
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::frame::{builder, MacAddr};
use polite_wifi::mac::StationConfig;
use polite_wifi::pcap::{capture, read_pcap, read_pcapng, trace, LinkType};
use polite_wifi::phy::rate::BitRate;
use polite_wifi::sim::{SimConfig, Simulator};
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn u64_flag(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }
}

fn usage() -> &'static str {
    "politewifi — the Polite WiFi toolkit (simulation substrate)

USAGE:
    politewifi <command> [options]

COMMANDS:
    quickstart   One fake frame, one ACK: the paper's core observation.
                 [--seed N] [--out FILE.pcap|FILE.pcapng]
    drain        Battery-drain attack against an ESP8266-class victim.
                 --rate PPS [--seconds S] [--rts]
    keystroke    The Figure 5 CSI activity/keystroke attack. [--seed N]
    survey       Wardrive a slice of the Table 2 city.
                 [--devices N] [--seed N] [--randomize PCT]
    analyze      Decode a capture and verify fake→ACK exchanges.
                 FILE.pcap|FILE.pcapng [--attacker MAC]
    sifs         Print the SIFS-vs-decryption feasibility analysis.
"
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&raw[1..]);
    let result = match command.as_str() {
        "quickstart" => cmd_quickstart(&args),
        "drain" => cmd_drain(&args),
        "keystroke" => cmd_keystroke(&args),
        "survey" => cmd_survey(&args),
        "analyze" => cmd_analyze(&args),
        "sifs" => cmd_sifs(),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_quickstart(args: &Args) -> Result<(), String> {
    let seed = args.u64_flag("seed", 2020)?;
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_monitor(attacker, true);
    sim.set_retries(attacker, false);
    sim.inject(
        10_000,
        attacker,
        builder::fake_null_frame(victim_mac, MacAddr::FAKE),
        BitRate::Mbps1,
    );
    sim.run_until(100_000);
    println!("{}", trace::format_capture(&sim.node(attacker).capture));
    println!(
        "victim ACKs sent: {} (no keys, no association, no consent)",
        sim.station(victim).stats.acks_sent
    );
    if let Some(path) = args.flag("out") {
        let cap = &sim.node(attacker).capture;
        if path.ends_with(".pcapng") {
            cap.write_pcapng_file(path, LinkType::Ieee80211Radiotap)
        } else {
            cap.write_pcap_file(path, LinkType::Ieee80211Radiotap)
        }
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("capture written to {path}");
    }
    Ok(())
}

fn cmd_drain(args: &Args) -> Result<(), String> {
    let rate = args.u64_flag("rate", 900)? as u32;
    let seconds = args.u64_flag("seconds", 10)?;
    let attack = BatteryDrainAttack {
        rate_pps: rate,
        kind: if args.has("rts") {
            InjectionKind::Rts
        } else {
            InjectionKind::NullData
        },
        warmup_us: 3_000_000,
        measure_us: seconds * 1_000_000,
        seed: args.u64_flag("seed", 42)?,
        ..BatteryDrainAttack::default()
    };
    let m = attack.run();
    println!(
        "rate {:>4} pps ({}) → {:.1} mW average, slept {:.1}%, {} responses",
        m.rate_pps,
        if args.has("rts") {
            "RTS→CTS"
        } else {
            "null→ACK"
        },
        m.average_power_mw,
        m.sleep_fraction * 100.0,
        m.acks_sent
    );
    for p in BatteryDrainAttack::project_batteries(&m) {
        println!(
            "  {:<20} {:>7.1} h under attack ({}x faster than advertised)",
            p.battery.name,
            p.attacked_life_hours,
            p.speedup.round()
        );
    }
    Ok(())
}

fn cmd_keystroke(args: &Args) -> Result<(), String> {
    let seed = args.u64_flag("seed", 2020)?;
    let result = KeystrokeAttack::figure5(seed).run();
    println!(
        "measured {} ACKs at {:.1} Hz",
        result.acks_measured, result.sample_rate_hz
    );
    println!("{:<10} {:>10} {:>10}", "phase", "mean", "std");
    for p in &result.phase_stats {
        println!("{:<10} {:>10.4} {:>10.4}", p.label, p.mean, p.std_dev);
    }
    let (hits, _, fa) = result.keystroke_score;
    println!(
        "keystrokes: {hits}/{} detected, {fa} false alarms",
        result.keystrokes_truth
    );
    Ok(())
}

fn cmd_survey(args: &Args) -> Result<(), String> {
    let n = args.u64_flag("devices", 200)? as usize;
    let seed = args.u64_flag("seed", 20)?;
    let randomize_pct = args.u64_flag("randomize", 0)?;
    let full = CityPopulation::table2(seed);
    let step = (full.devices.len() / n.max(1)).max(1);
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(step).take(n).cloned().collect();
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    }
    .with_randomized_client_macs(randomize_pct as f64 / 100.0, seed);
    println!(
        "surveying {} devices ({} clients, {} APs)...",
        slice.devices.len(),
        slice.clients().count(),
        slice.aps().count()
    );
    let report = WardriveScanner {
        seed,
        ..WardriveScanner::default()
    }
    .run(&slice);
    println!(
        "discovered {}, verified {} ({:.1}%) in {:.0} simulated seconds",
        report.discovered,
        report.verified,
        100.0 * report.verified as f64 / report.discovered.max(1) as f64,
        report.survey_time_us as f64 / 1e6
    );
    for (vendor, count) in report.client_counts.iter().take(8) {
        println!("  client {vendor:<24} {count}");
    }
    for (vendor, count) in report.ap_counts.iter().take(8) {
        println!("  AP     {vendor:<24} {count}");
    }
    if report.pmf_aps > 0 {
        println!(
            "  ({} APs advertised 802.11w — polite all the same)",
            report.pmf_aps
        );
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("analyze needs a capture file path")?;
    let attacker: MacAddr = args
        .flag("attacker")
        .unwrap_or("aa:bb:bb:bb:bb:bb")
        .parse()
        .map_err(|e| format!("bad --attacker address: {e}"))?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;

    // Try pcapng first, then classic pcap.
    let (link_type, records) = match read_pcapng(&bytes) {
        Ok(f) => (f.link_type, f.records),
        Err(_) => {
            let f = read_pcap(&bytes).map_err(|e| format!("not a pcap/pcapng file: {e}"))?;
            (f.link_type, f.records)
        }
    };

    let mut cap = capture::Capture::new();
    let mut undecodable = 0usize;
    for rec in &records {
        let frame_bytes: &[u8] = match link_type {
            LinkType::Ieee80211Radiotap => {
                match polite_wifi::radiotap::Radiotap::parse(&rec.data) {
                    Ok((_, consumed)) => &rec.data[consumed..],
                    Err(_) => {
                        undecodable += 1;
                        continue;
                    }
                }
            }
            _ => &rec.data,
        };
        match polite_wifi::frame::Frame::parse(frame_bytes, true) {
            Ok(frame) => cap.record_frame(rec.ts_us, &frame),
            Err(_) => undecodable += 1,
        }
    }

    println!("{}", trace::format_capture(&cap));
    if undecodable > 0 {
        println!("({undecodable} records did not decode as 802.11)");
    }
    let verifier = AckVerifier::new(attacker);
    let exchanges = verifier.verify(&cap);
    println!(
        "verified fake→ACK exchanges for {attacker}: {}",
        exchanges.len()
    );
    for v in verifier.responding_victims(&cap) {
        println!("  responding victim: {v}");
    }
    Ok(())
}

fn cmd_sifs() -> Result<(), String> {
    let report = analysis::sifs_report();
    for (band, sifs) in &report.sifs_us {
        println!("{band}: SIFS = {sifs} µs");
    }
    for (band, sweep) in &report.sweeps {
        for f in sweep {
            println!(
                "  {band}: ACK ready at {:>3} µs vs {:>2} µs budget → {}",
                f.ack_ready_us,
                f.deadline_us,
                if f.misses_deadline { "MISSES" } else { "ok" }
            );
        }
    }
    println!(
        "worst-case overrun: {:.0}x; and forged RTS still elicits CTS regardless",
        analysis::worst_case_overrun()
    );
    Ok(())
}
