//! Reproducibility: every experiment is a pure function of its seed.
//!
//! This is a substrate-level guarantee the whole evaluation rests on —
//! EXPERIMENTS.md quotes numbers that must regenerate bit-for-bit.

use polite_wifi::core::{BatteryDrainAttack, KeystrokeAttack, SensingHub, WardriveScanner};
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::harness::{Experiment, RunArgs};
use polite_wifi::sensing::MotionScript;
use polite_wifi::sim::FaultProfile;

#[test]
fn drain_attack_is_deterministic() {
    let run = || {
        BatteryDrainAttack {
            rate_pps: 150,
            warmup_us: 1_000_000,
            measure_us: 3_000_000,
            seed: 11,
            ..BatteryDrainAttack::default()
        }
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn keystroke_attack_is_deterministic() {
    let a = KeystrokeAttack::figure5(13).run();
    let b = KeystrokeAttack::figure5(13).run();
    assert_eq!(a.amplitudes, b.amplitudes);
    assert_eq!(a.keystroke_score, b.keystroke_score);
    // ...and a different seed gives a different channel realisation.
    let c = KeystrokeAttack::figure5(14).run();
    assert_ne!(a.amplitudes, c.amplitudes);
}

#[test]
fn survey_is_deterministic() {
    let full = CityPopulation::table2(3);
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(200).cloned().collect();
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };
    let scanner = WardriveScanner {
        segment_size: 14,
        dwell_us: 1_500_000,
        ..WardriveScanner::default()
    };
    let a = scanner.run(&slice);
    let b = scanner.run(&slice);
    assert_eq!(a, b);
}

#[test]
fn sensing_hub_is_deterministic() {
    let scripts = vec![MotionScript::walk_by(10_000_000, 4_000_000, 6_000_000)];
    let hub = SensingHub {
        rate_pps_per_target: 150,
        subcarrier: 17,
        seed: 21,
        ..SensingHub::default()
    };
    assert_eq!(hub.run(&scripts), hub.run(&scripts));
}

/// The fault layer must not cost determinism: a degraded run under
/// `--faults urban-drive` — retries, fault counters, an injected trial
/// panic and all — writes a byte-identical envelope at every worker
/// count, `TrialFailure` list included.
#[test]
fn faulty_degraded_envelope_is_worker_invariant() {
    let dir = std::env::temp_dir().join("polite-wifi-determinism-faults");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("POLITE_WIFI_RESULTS", &dir);

    let run = |workers: usize| {
        let args = RunArgs {
            trials: 4,
            workers,
            seed: 2026,
            faults: FaultProfile::UrbanDrive,
            inject_trial_panic: Some(1),
            allow_partial: true,
            ..RunArgs::default()
        };
        let mut exp = Experiment::start_with("determinism: faulty envelope", "none", args);
        let reports: Vec<_> = exp
            .run_trials(|t| {
                BatteryDrainAttack {
                    rate_pps: 120,
                    warmup_us: 500_000,
                    measure_us: 1_500_000,
                    seed: t.seed,
                    faults: FaultProfile::UrbanDrive,
                    ..BatteryDrainAttack::default()
                }
                .run()
            })
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(reports.len(), 3, "exactly the injected trial degrades");
        for m in &reports {
            exp.metrics.record("acks_sent", m.acks_sent as f64);
        }
        let status = exp
            .finish_with_status("faulty_envelope", &reports)
            .expect("envelope written");
        assert_eq!(status, 0, "--allow-partial accepts the injected failure");
        let raw = std::fs::read_to_string(dir.join("faulty_envelope.json")).unwrap();
        // The envelope self-describes its run config, so the recorded
        // worker count (and nothing else) legitimately differs.
        assert!(raw.contains(&format!("\"workers\": {workers}")));
        raw.replace(
            &format!("\"workers\": {workers}"),
            "\"workers\": <normalised>",
        )
    };

    let w1 = run(1);
    let w4 = run(4);
    let w8 = run(8);
    assert!(w1.contains("\"trial_failures\""));
    assert!(w1.contains("injected trial panic (--inject-trial-panic 1)"));
    assert!(w1.contains("\"faults\": \"urban-drive\""));
    assert_eq!(w1, w4, "1-worker and 4-worker envelopes differ");
    assert_eq!(w1, w8, "1-worker and 8-worker envelopes differ");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn population_is_deterministic_but_seed_sensitive() {
    let a = CityPopulation::table2(1);
    let b = CityPopulation::table2(1);
    let c = CityPopulation::table2(2);
    assert_eq!(a.devices, b.devices);
    // Same marginals, different sampled details.
    assert_eq!(a.devices.len(), c.devices.len());
    assert_ne!(
        a.devices.iter().map(|d| d.channel).collect::<Vec<_>>(),
        c.devices.iter().map(|d| d.channel).collect::<Vec<_>>()
    );
}
