//! Cross-crate integration: the survey pipeline and the sensing stack.

use polite_wifi::core::{SensingHub, WardriveScanner};
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::mac::Role;
use polite_wifi::sensing::MotionScript;

/// A mixed 60-device slice of the Table 2 city: survey it and check the
/// paper's headline (100% respond) plus vendor attribution integrity.
#[test]
fn survey_mixed_slice_everyone_responds() {
    let full = CityPopulation::table2(9);
    let mut devices: Vec<DeviceSpec> = Vec::new();
    // Interleave clients and APs from across the vendor spectrum.
    devices.extend(full.clients().step_by(50).take(30).cloned());
    devices.extend(full.aps().step_by(120).take(30).cloned());
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };

    let report = WardriveScanner {
        segment_size: 20,
        dwell_us: 2_500_000,
        ..WardriveScanner::default()
    }
    .run(&slice);

    assert_eq!(report.verified, report.discovered);
    assert!(report.discovered >= 58, "discovered {}", report.discovered);
    // Attribution matches the population's ground truth.
    let truth_clients = slice
        .devices
        .iter()
        .filter(|d| d.role == Role::Client)
        .count();
    assert!(report.total_clients as usize >= truth_clients - 2);
    // Vendors reported by the survey must be vendors in the slice.
    let all_vendors: std::collections::HashSet<&str> =
        slice.devices.iter().map(|d| d.vendor.as_str()).collect();
    for (vendor, _) in report.client_counts.iter().chain(report.ap_counts.iter()) {
        assert!(
            all_vendors.contains(vendor.as_str()),
            "phantom vendor {vendor}"
        );
    }
}

/// IoT power-save devices are the hard survey targets (they doze through
/// fakes); the continuous-injection pipeline must still verify them.
#[test]
fn survey_verifies_dozing_iot_devices() {
    let full = CityPopulation::table2(10);
    let devices: Vec<DeviceSpec> = full
        .clients()
        .filter(|d| d.behavior.power_save.is_some())
        .take(12)
        .cloned()
        .collect();
    assert_eq!(devices.len(), 12);
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };
    let report = WardriveScanner {
        segment_size: 12,
        dwell_us: 3_000_000,
        ..WardriveScanner::default()
    }
    .run(&slice);
    assert_eq!(report.verified, report.discovered);
    assert!(report.discovered >= 11, "discovered {}", report.discovered);
}

/// 802.11w (PMF) APs are spotted from their beacon RSN element — and
/// verified polite all the same (footnote 2 of the paper).
#[test]
fn pmf_aps_counted_and_still_polite() {
    let full = CityPopulation::table2(14);
    // A slice guaranteed to contain PMF APs.
    let mut devices: Vec<DeviceSpec> = full
        .aps()
        .filter(|d| d.behavior.pmf)
        .take(8)
        .cloned()
        .collect();
    let truth_pmf = devices.len() as u32;
    devices.extend(full.aps().filter(|d| !d.behavior.pmf).take(8).cloned());
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };
    let report = WardriveScanner {
        segment_size: 16,
        dwell_us: 2_500_000,
        ..WardriveScanner::default()
    }
    .run(&slice);
    assert_eq!(report.verified, report.discovered, "PMF must not stop ACKs");
    assert_eq!(report.pmf_aps, truth_pmf, "beacon RSN parsing miscounted");
}

/// MAC randomisation (post-2020 phone behaviour) hides vendors from the
/// survey but cannot hide the Polite WiFi response itself.
#[test]
fn randomized_macs_still_ack_but_lose_attribution() {
    let full = CityPopulation::table2(12);
    let mut devices: Vec<DeviceSpec> = full
        .clients()
        .filter(|d| d.vendor == "Apple")
        .take(20)
        .cloned()
        .collect();
    devices.extend(full.aps().take(5).cloned());
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    }
    .with_randomized_client_macs(1.0, 99);

    let report = WardriveScanner {
        segment_size: 25,
        dwell_us: 2_500_000,
        ..WardriveScanner::default()
    }
    .run(&slice);

    // Everyone still responds — randomisation is an attribution shield,
    // not an ACK shield.
    assert_eq!(report.verified, report.discovered);
    assert!(report.discovered >= 24, "discovered {}", report.discovered);
    // But the Apple clients now show up as Unknown.
    let unknown = report
        .client_counts
        .iter()
        .find(|(v, _)| v.starts_with("Unknown"))
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(unknown >= 19, "unknown {unknown}");
    assert!(report.client_counts.iter().all(|(v, _)| v != "Apple"));
}

/// The sensing hub distinguishes which neighbour had motion, when —
/// across the sim, CSI, filtering and segmentation crates at once.
#[test]
fn sensing_hub_localises_motion_in_time_and_target() {
    let duration = 24_000_000;
    let scripts = vec![
        MotionScript::walk_by(duration, 6_000_000, 8_000_000),
        MotionScript::idle(duration),
    ];
    let report = SensingHub {
        rate_pps_per_target: 150,
        subcarrier: 17,
        seed: 5,
        ..SensingHub::default()
    }
    .run(&scripts);

    assert_eq!(report.devices_modified, 1);
    let active = &report.targets[0];
    let quiet = &report.targets[1];
    assert_eq!(active.motion_windows_us.len(), 1);
    let (s, e) = active.motion_windows_us[0];
    assert!(
        s < 7_000_000 && e > 7_000_000,
        "window {s}..{e} misses the walk"
    );
    assert!(quiet.motion_windows_us.is_empty());
}

/// Different subcarriers tell the same story (the paper: "most other
/// subcarriers had similar patterns").
#[test]
fn sensing_is_not_subcarrier_17_specific() {
    let duration = 20_000_000;
    let scripts = vec![MotionScript::walk_by(duration, 8_000_000, 10_000_000)];
    for subcarrier in [5usize, 17, 40] {
        let report = SensingHub {
            rate_pps_per_target: 150,
            subcarrier,
            seed: 6,
            ..SensingHub::default()
        }
        .run(&scripts);
        assert_eq!(
            report.targets[0].motion_windows_us.len(),
            1,
            "subcarrier {subcarrier} failed"
        );
    }
}
