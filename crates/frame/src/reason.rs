//! Reason and status codes carried by management frames.

use serde::{Deserialize, Serialize};

/// Deauthentication / disassociation reason codes (IEEE 802.11-2016
/// Table 9-45, the subset relevant here).
///
/// Figure 3 of the paper shows APs reacting to fake frames with
/// deauthentication bursts — typically
/// [`ReasonCode::ClassThreeFrameFromNonassociatedSta`] — while *still*
/// acknowledging the very frames they are complaining about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReasonCode {
    /// 1 — Unspecified reason.
    Unspecified,
    /// 2 — Previous authentication no longer valid.
    PrevAuthNotValid,
    /// 3 — Station is leaving (deauthenticated because sender left).
    StaLeaving,
    /// 4 — Disassociated due to inactivity.
    Inactivity,
    /// 6 — Class 2 frame received from nonauthenticated station.
    ClassTwoFrameFromNonauthSta,
    /// 7 — Class 3 frame received from nonassociated station. The code an
    /// AP sends when a never-associated attacker injects data frames.
    ClassThreeFrameFromNonassociatedSta,
    /// 8 — Disassociated because station is leaving the BSS.
    DisassocStaLeaving,
    /// Any other standardised or reserved code, carried verbatim.
    Other(u16),
}

impl ReasonCode {
    /// Decodes from the on-air 16-bit value.
    pub fn from_u16(v: u16) -> ReasonCode {
        match v {
            1 => ReasonCode::Unspecified,
            2 => ReasonCode::PrevAuthNotValid,
            3 => ReasonCode::StaLeaving,
            4 => ReasonCode::Inactivity,
            6 => ReasonCode::ClassTwoFrameFromNonauthSta,
            7 => ReasonCode::ClassThreeFrameFromNonassociatedSta,
            8 => ReasonCode::DisassocStaLeaving,
            other => ReasonCode::Other(other),
        }
    }

    /// Encodes to the on-air 16-bit value.
    pub fn to_u16(self) -> u16 {
        match self {
            ReasonCode::Unspecified => 1,
            ReasonCode::PrevAuthNotValid => 2,
            ReasonCode::StaLeaving => 3,
            ReasonCode::Inactivity => 4,
            ReasonCode::ClassTwoFrameFromNonauthSta => 6,
            ReasonCode::ClassThreeFrameFromNonassociatedSta => 7,
            ReasonCode::DisassocStaLeaving => 8,
            ReasonCode::Other(v) => v,
        }
    }

    /// Short human-readable description, used by the trace printer.
    pub fn describe(self) -> &'static str {
        match self {
            ReasonCode::Unspecified => "Unspecified reason",
            ReasonCode::PrevAuthNotValid => "Previous authentication no longer valid",
            ReasonCode::StaLeaving => "Deauthenticated because sending STA is leaving",
            ReasonCode::Inactivity => "Disassociated due to inactivity",
            ReasonCode::ClassTwoFrameFromNonauthSta => {
                "Class 2 frame received from nonauthenticated STA"
            }
            ReasonCode::ClassThreeFrameFromNonassociatedSta => {
                "Class 3 frame received from nonassociated STA"
            }
            ReasonCode::DisassocStaLeaving => "Disassociated because sending STA is leaving BSS",
            ReasonCode::Other(_) => "Reserved/other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codes_round_trip() {
        for v in [1u16, 2, 3, 4, 6, 7, 8] {
            assert_eq!(ReasonCode::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn unknown_codes_preserved() {
        assert_eq!(ReasonCode::from_u16(99).to_u16(), 99);
        assert!(matches!(ReasonCode::from_u16(99), ReasonCode::Other(99)));
    }

    #[test]
    fn class3_is_the_nonassociated_code() {
        assert_eq!(ReasonCode::ClassThreeFrameFromNonassociatedSta.to_u16(), 7);
        assert!(ReasonCode::ClassThreeFrameFromNonassociatedSta
            .describe()
            .contains("nonassociated"));
    }
}
