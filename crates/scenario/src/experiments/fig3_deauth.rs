//! E3 — Figure 3: the attacked AP sends deauthentication bursts at the
//! attacker — and still ACKs the fake frames. A manual MAC blocklist on
//! the AP changes nothing.

use crate::spec::ScenarioSpec;
use crate::support::{compare, ensure_results_dir};
use polite_wifi_core::AckVerifier;
use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_harness::{derive_trial_seed, Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_mac::{Behavior, StationConfig};
use polite_wifi_pcap::{trace, LinkType};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{NodeId, Simulator};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Result {
    phase1_acks: usize,
    phase1_deauths: usize,
    deauth_burst_shares_sequence_number: bool,
    phase2_blocklisted_acks: usize,
    trace_rows: Vec<[String; 4]>,
}

fn run_phase(
    seed: u64,
    blocklist: bool,
    faults: polite_wifi_sim::FaultProfile,
) -> (Simulator, NodeId, NodeId) {
    let ap_mac: MacAddr = "f2:6e:0b:aa:00:01".parse().unwrap();
    let mut sb = ScenarioBuilder::new().duration_us(1_000_000).faults(faults);
    let mut ap_cfg = StationConfig::access_point(ap_mac, "PrivateNet");
    ap_cfg.behavior = Behavior::deauthing_ap();
    ap_cfg.beacon_interval_us = None; // keep the figure's trace clean
    let ap = sb.station(ap_cfg, (0.0, 0.0));
    let attacker = sb.monitor(MacAddr::FAKE, (5.0, 0.0));
    sb.retries(attacker, false);

    let mut scenario = sb.build_with_seed(seed);
    if blocklist {
        scenario.sim.station_mut(ap).block_mac(MacAddr::FAKE);
    }
    for i in 0..5u64 {
        scenario.sim.inject(
            10_000 + i * 100_000,
            attacker,
            builder::fake_null_frame(ap_mac, MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    scenario.run();
    (scenario.sim, ap, attacker)
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let faults = exp.args().faults;

    // Phase 1: plain deauthing AP.
    let (mut sim, ap, attacker) = run_phase(derive_trial_seed(exp.seed(), 0), false, faults);
    let rows: Vec<_> = trace::rows(&sim.node(attacker).capture);
    println!("\nSource             Destination        Info");
    for r in rows.iter().take(12) {
        println!("{:<18} {:<18} {}", r.source, r.destination, r.info);
    }

    let acks = AckVerifier::new(MacAddr::FAKE)
        .verify(&sim.node(attacker).capture)
        .len();
    let deauths = sim.station(ap).stats.deauths_sent as usize;

    // Burst retries share one sequence number, as the figure shows
    // (SN=3275 three times, then SN=3281).
    let deauth_sns: Vec<u16> = sim
        .global_capture()
        .frames()
        .iter()
        .filter_map(|cf| match &cf.frame {
            polite_wifi_frame::Frame::Mgmt(m)
                if matches!(
                    m.body,
                    polite_wifi_frame::ManagementBody::Deauthentication { .. }
                ) =>
            {
                Some(m.seq.sequence)
            }
            _ => None,
        })
        .collect();
    let shares_sn = deauth_sns.chunks(3).all(|c| c.iter().all(|&s| s == c[0]));

    // Phase 2: administrator blocks the attacker's MAC. "This experiment
    // destroyed the last hope of preventing this attack."
    let (mut sim2, _ap2, attacker2) = run_phase(derive_trial_seed(exp.seed(), 1), true, faults);
    let blocked_acks = AckVerifier::new(MacAddr::FAKE)
        .verify(&sim2.node(attacker2).capture)
        .len();

    exp.metrics.record("phase1_acks", acks as f64);
    exp.metrics.record("phase1_deauths", deauths as f64);
    exp.metrics
        .record("phase2_blocklisted_acks", blocked_acks as f64);

    println!();
    compare(
        "AP deauths the never-associated attacker",
        "yes",
        if deauths > 0 { "yes" } else { "no" },
    );
    compare(
        "deauth burst repeats one sequence number",
        "yes (SN=3275 ×3)",
        if shares_sn { "yes" } else { "no" },
    );
    compare("AP still ACKs the fake frames", "yes", &format!("{acks}/5"));
    compare(
        "ACKs after blocklisting attacker MAC",
        "still yes",
        &format!("{blocked_acks}/5"),
    );

    if faults.is_clean() {
        assert_eq!(acks, 5);
        assert_eq!(blocked_acks, 5);
        assert!(deauths >= 3);
    }

    let path = ensure_results_dir()?.join("fig3_deauth.pcap");
    sim.node(attacker)
        .capture
        .write_pcap_file(&path, LinkType::Ieee80211Radiotap)?;
    println!("pcap written to {}", path.display());

    exp.absorb_obs(sim.take_obs());
    exp.absorb_obs(sim2.take_obs());
    exp.finish_with_status(
        &spec.slug,
        &Fig3Result {
            phase1_acks: acks,
            phase1_deauths: deauths,
            deauth_burst_shares_sequence_number: shares_sn,
            phase2_blocklisted_acks: blocked_acks,
            trace_rows: rows
                .iter()
                .map(|r| {
                    [
                        r.time.clone(),
                        r.source.clone(),
                        r.destination.clone(),
                        r.info.clone(),
                    ]
                })
                .collect(),
        },
    )
}
