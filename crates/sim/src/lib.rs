//! Deterministic discrete-event 802.11 radio simulator.
//!
//! This crate is the stand-in for the paper's over-the-air testbed
//! (RTL8812AU injector, tablets, APs, ESP modules). It connects
//! `polite-wifi-mac` [`Station`](polite_wifi_mac::Station) state machines
//! through a shared [`medium::Medium`] with:
//!
//! * microsecond-resolution virtual time and a calendar-queue scheduler
//!   (binary-heap backend still available via [`SchedulerKind::Heap`]),
//! * spatial interference cells that shard propagation by channel and
//!   position ([`PropagationMode::CellGrid`]), with the all-pairs oracle
//!   behind a config flag,
//! * log-distance path loss + Rician fading + the SNR→FER link model
//!   deciding every FCS check,
//! * half-duplex radios, carrier sensing, DCF backoff and a
//!   capture-threshold collision model,
//! * transmitter-side ACK timeouts and retries,
//! * per-node radio-state ledgers (for the battery-drain energy model),
//!   and
//! * monitor-mode pcap capture taps (for the Wireshark-style figures).
//!
//! Everything is seeded: the same seed replays the same run bit-for-bit.
//!
//! ```
//! use polite_wifi_sim::{Simulator, SimConfig};
//! use polite_wifi_mac::StationConfig;
//! use polite_wifi_frame::{builder, MacAddr};
//! use polite_wifi_phy::rate::BitRate;
//!
//! let mut sim = Simulator::new(SimConfig::default(), 42);
//! let victim = sim.add_node(
//!     StationConfig::client("f2:6e:0b:11:22:33".parse().unwrap()),
//!     (0.0, 0.0),
//! );
//! let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
//! sim.set_monitor(attacker, true);
//!
//! let fake = builder::fake_null_frame(sim.station(victim).mac(), MacAddr::FAKE);
//! sim.inject(1_000, attacker, fake, BitRate::Mbps1);
//! sim.run_until(10_000);
//!
//! assert_eq!(sim.station(victim).stats.acks_sent, 1);
//! ```

pub mod arena;
pub mod event;
pub mod faults;
pub mod ledger;
pub mod medium;
pub mod node;
pub mod sim;

pub use arena::{CellGrid, NodeArena};
pub use event::SchedulerKind;
pub use faults::{FaultPlan, FaultProfile, GilbertElliott, SnrDegradation, StallSchedule};
pub use ledger::{ActivityLedger, StateTotals};
pub use medium::MediumConfig;
pub use node::NodeId;
pub use sim::{PropagationMode, SimConfig, Simulator};

// The parallel trial runner moves whole simulators across worker
// threads; fail the build if any future field (an Rc, a raw pointer)
// silently takes that away.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>()
};
