//! DCF channel access: DIFS sensing plus binary exponential backoff.
//!
//! Contended transmissions (the attacker's fake frames, AP beacons,
//! deauth bursts) go through this state machine; SIFS responses (ACK/CTS)
//! bypass it.

use polite_wifi_phy::band::Band;
use serde::{Deserialize, Serialize};

/// DCF contention-window parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsmaConfig {
    /// Minimum contention window (CWmin), in slots. 802.11g DCF: 15.
    pub cw_min: u16,
    /// Maximum contention window (CWmax), in slots. 802.11 DCF: 1023.
    pub cw_max: u16,
    /// Retry limit before the frame is dropped.
    pub retry_limit: u8,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        CsmaConfig {
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
        }
    }
}

/// Backoff state for one transmitter.
#[derive(Debug, Clone)]
pub struct Csma {
    config: CsmaConfig,
    band: Band,
    /// Current contention window.
    cw: u16,
    /// Retry count of the head-of-line frame.
    retries: u8,
}

impl Csma {
    /// Fresh state with the default DCF parameters.
    pub fn new(band: Band) -> Csma {
        Csma::with_config(band, CsmaConfig::default())
    }

    /// Fresh state with explicit parameters.
    pub fn with_config(band: Band, config: CsmaConfig) -> Csma {
        Csma {
            config,
            band,
            cw: config.cw_min,
            retries: 0,
        }
    }

    /// The deferral before a fresh transmission attempt: DIFS plus a
    /// uniformly drawn backoff of `slots ∈ [0, cw]`. The caller supplies
    /// the random draw so the simulator stays deterministic.
    pub fn defer_us(&self, backoff_draw: u16) -> u32 {
        let slots = (backoff_draw % (self.cw + 1)) as u32;
        self.band.difs_us() + slots * self.band.slot_us()
    }

    /// Current contention window (for tests and stats).
    pub fn cw(&self) -> u16 {
        self.cw
    }

    /// Current retry count of the head-of-line frame.
    pub fn retries(&self) -> u8 {
        self.retries
    }

    /// Transmission succeeded (ACK received): reset the window.
    pub fn on_success(&mut self) {
        self.cw = self.config.cw_min;
        self.retries = 0;
    }

    /// Transmission failed (ACK timeout or collision): double the window.
    /// Returns `false` when the retry limit is exhausted and the frame
    /// must be dropped.
    pub fn on_failure(&mut self) -> bool {
        self.retries += 1;
        self.cw = ((self.cw * 2) + 1).min(self.config.cw_max);
        if self.retries > self.config.retry_limit {
            self.cw = self.config.cw_min;
            self.retries = 0;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defer_includes_difs() {
        let c = Csma::new(Band::Ghz2);
        assert!(c.defer_us(0) >= Band::Ghz2.difs_us());
        // Draw 0 → no backoff slots.
        assert_eq!(c.defer_us(0), 28);
    }

    #[test]
    fn backoff_bounded_by_cw() {
        let c = Csma::new(Band::Ghz2);
        for draw in 0..200 {
            let d = c.defer_us(draw);
            assert!(d <= Band::Ghz2.difs_us() + 15 * Band::Ghz2.slot_us());
        }
    }

    #[test]
    fn window_doubles_on_failure_and_caps() {
        let mut c = Csma::new(Band::Ghz2);
        assert_eq!(c.cw(), 15);
        c.on_failure();
        assert_eq!(c.cw(), 31);
        c.on_failure();
        assert_eq!(c.cw(), 63);
        for _ in 0..5 {
            c.on_failure();
        }
        assert!(c.cw() <= 1023);
    }

    #[test]
    fn success_resets_window() {
        let mut c = Csma::new(Band::Ghz2);
        c.on_failure();
        c.on_failure();
        c.on_success();
        assert_eq!(c.cw(), 15);
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn retry_limit_drops_frame() {
        let mut c = Csma::new(Band::Ghz2);
        let mut attempts = 0;
        while c.on_failure() {
            attempts += 1;
            assert!(attempts < 100, "never dropped");
        }
        assert_eq!(attempts, 7);
        // State is reset for the next frame.
        assert_eq!(c.cw(), 15);
    }
}
