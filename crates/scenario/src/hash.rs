//! Content addressing for scenario specs.
//!
//! The daemon's result cache is keyed by *what a run computes*, not how
//! it was phrased or scheduled: the canonical JSON re-emission collapses
//! formatting and field order, and normalising `run.workers` to 1
//! collapses the one run parameter that is guaranteed not to change the
//! envelope (the worker-invariance contract the golden tests pin). Seed,
//! trials, quick and fault profile all stay in the hashed bytes — they
//! *do* change results. Identical inputs are byte-identical outputs, so
//! one hash addresses one envelope.

use crate::spec::ScenarioSpec;

/// FNV-1a 64-bit. Zero-dependency and stable across platforms — cache
/// keys must mean the same thing on every machine that shares a store.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ScenarioSpec {
    /// The workers-invariant content address of this spec: FNV-1a 64
    /// over the canonical JSON with `run.workers` normalised to 1,
    /// rendered as 16 lowercase hex digits.
    pub fn canonical_hash(&self) -> String {
        let mut normalised = self.clone();
        normalised.run.workers = 1;
        format!(
            "{:016x}",
            fnv1a64(normalised.to_canonical_json().as_bytes())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "name": "T",
  "paper_ref": "ref",
  "slug": "t",
  "runner": "generic",
  "run": {"seed": 2, "trials": 3, "workers": 1},
  "topology": {
    "duration_us": 1000,
    "nodes": [
      {"name": "ap", "mac": "68:02:b8:00:00:01", "kind": "ap", "position": [2, 0], "ssid": "Net"},
      {"name": "victim", "mac": "f2:6e:0b:11:22:33", "kind": "client", "position": [0, 0]}
    ],
    "links": [["victim", "ap"]]
  },
  "probes": [
    {"kind": "station-stat", "node": "victim", "stat": "acks_sent", "metric": "acks_sent"}
  ]
}"#;

    #[test]
    fn fnv_matches_the_reference_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hash_ignores_formatting_and_worker_count() {
        let spec = ScenarioSpec::parse(BASE).unwrap();
        // Same spec, canonical form: same hash.
        let canonical = ScenarioSpec::parse(&spec.to_canonical_json()).unwrap();
        assert_eq!(spec.canonical_hash(), canonical.canonical_hash());
        // Same spec at another worker count: same hash.
        let mut reworked = spec.clone();
        reworked.run.workers = 8;
        assert_eq!(spec.canonical_hash(), reworked.canonical_hash());
    }

    #[test]
    fn hash_tracks_everything_that_changes_results() {
        let spec = ScenarioSpec::parse(BASE).unwrap();
        let reseeded = ScenarioSpec {
            run: crate::spec::RunSpec {
                seed: 3,
                ..spec.run.clone()
            },
            ..spec.clone()
        };
        assert_ne!(spec.canonical_hash(), reseeded.canonical_hash());
        let quickened = ScenarioSpec {
            run: crate::spec::RunSpec {
                quick: true,
                ..spec.run.clone()
            },
            ..spec.clone()
        };
        assert_ne!(spec.canonical_hash(), quickened.canonical_hash());
    }

    #[test]
    fn hash_is_sixteen_hex_digits() {
        let h = ScenarioSpec::parse(BASE).unwrap().canonical_hash();
        assert_eq!(h.len(), 16);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
