//! Cross-crate integration: the on-air join handshake and the classic
//! deauthentication attack (related work the paper contrasts with), both
//! over the full simulator.

use polite_wifi::frame::{builder, MacAddr, ReasonCode};
use polite_wifi::mac::{Behavior, JoinState, StationConfig};
use polite_wifi::phy::rate::BitRate;
use polite_wifi::sim::{SimConfig, Simulator};

fn ap_mac() -> MacAddr {
    "68:02:b8:00:00:01".parse().unwrap()
}

fn client_mac() -> MacAddr {
    "f2:6e:0b:11:22:33".parse().unwrap()
}

#[test]
fn join_handshake_completes_over_the_air() {
    let mut sim = Simulator::new(SimConfig::default(), 1);
    let ap = sim.add_node(
        StationConfig::access_point(ap_mac(), "PrivateNet"),
        (0.0, 0.0),
    );
    let client = sim.add_node(StationConfig::client(client_mac()), (5.0, 0.0));

    sim.start_join(client, ap_mac());
    sim.run_until(1_000_000);

    assert_eq!(
        sim.station(client).join_state(),
        JoinState::Joined {
            ap: ap_mac(),
            aid: 1
        }
    );
    assert!(sim.station(ap).is_associated_with(client_mac()));
    assert_eq!(sim.station(ap).aid_of(client_mac()), Some(1));

    // The handshake frames were all acknowledged along the way (auth req,
    // assoc req at the AP; auth resp, assoc resp at the client).
    assert!(sim.station(ap).stats.acks_sent >= 2);
    assert!(sim.station(client).stats.acks_sent >= 2);
}

#[test]
fn two_clients_get_distinct_aids() {
    let mut sim = Simulator::new(SimConfig::default(), 2);
    let ap = sim.add_node(StationConfig::access_point(ap_mac(), "Net"), (0.0, 0.0));
    let c1 = sim.add_node(StationConfig::client(client_mac()), (4.0, 0.0));
    let c2_mac: MacAddr = "f2:6e:0b:44:55:66".parse().unwrap();
    let c2 = sim.add_node(StationConfig::client(c2_mac), (0.0, 4.0));

    sim.start_join(c1, ap_mac());
    sim.run_until(500_000);
    sim.start_join(c2, ap_mac());
    sim.run_until(1_500_000);

    let aid1 = sim.station(ap).aid_of(client_mac()).unwrap();
    let aid2 = sim.station(ap).aid_of(c2_mac).unwrap();
    assert_ne!(aid1, aid2);
    assert!(matches!(
        sim.station(c1).join_state(),
        JoinState::Joined { .. }
    ));
    assert!(matches!(
        sim.station(c2).join_state(),
        JoinState::Joined { .. }
    ));
}

/// The related-work contrast: a spoofed deauth kicks a non-PMF client off
/// its network (and, per Polite WiFi, even the kick is acknowledged);
/// 802.11w stops the kick but cannot stop the acknowledgement.
#[test]
fn deauth_attack_vs_pmf_over_the_air() {
    for pmf in [false, true] {
        let mut sim = Simulator::new(SimConfig::default(), 3);
        let _ap = sim.add_node(StationConfig::access_point(ap_mac(), "Net"), (0.0, 0.0));
        let mut cfg = StationConfig::client(client_mac());
        if pmf {
            cfg.behavior = Behavior::pmf_client();
        }
        let client = sim.add_node(cfg, (4.0, 0.0));
        sim.start_join(client, ap_mac());
        sim.run_until(1_000_000);
        assert!(matches!(
            sim.station(client).join_state(),
            JoinState::Joined { .. }
        ));

        // Attacker spoofs a deauth "from" the AP at the client.
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (6.0, 0.0));
        sim.set_retries(attacker, false);
        let spoof = builder::deauth(
            client_mac(),
            ap_mac(),
            ap_mac(),
            999,
            ReasonCode::StaLeaving,
        );
        let acks_before = sim.station(client).stats.acks_sent;
        sim.inject(1_100_000, attacker, spoof, BitRate::Mbps1);
        sim.run_until(2_000_000);

        let still_joined = matches!(sim.station(client).join_state(), JoinState::Joined { .. });
        assert_eq!(still_joined, pmf, "pmf={pmf}");
        // Either way the spoofed frame itself got an ACK: Polite WiFi.
        assert!(sim.station(client).stats.acks_sent > acks_before);
    }
}

/// Deauth from the *real* AP also tears down AP-side state.
#[test]
fn legitimate_deauth_cleans_up_both_sides() {
    let mut sim = Simulator::new(SimConfig::default(), 4);
    let ap = sim.add_node(StationConfig::access_point(ap_mac(), "Net"), (0.0, 0.0));
    let client = sim.add_node(StationConfig::client(client_mac()), (4.0, 0.0));
    sim.start_join(client, ap_mac());
    sim.run_until(1_000_000);

    let deauth = builder::deauth(client_mac(), ap_mac(), ap_mac(), 50, ReasonCode::StaLeaving);
    sim.inject(1_100_000, ap, deauth, BitRate::Mbps1);
    sim.run_until(2_000_000);

    assert_eq!(sim.station(client).join_state(), JoinState::Idle);
    assert!(!sim.station(client).is_associated_with(ap_mac()));
}
