//! E4 — §2.2: why Polite WiFi is not preventable.
//!
//! Part 1: the SIFS deadline (10/16 µs) versus measured WPA2 frame
//! processing (200–700 µs) — a validating MAC misses the deadline by one
//! to two orders of magnitude, so the transmitter retransmits long before
//! a "validated ACK" could exist.
//!
//! Part 2: even granting an infinitely fast decoder, a PMF-protected
//! victim still answers a forged RTS with a CTS, because control frames
//! cannot be encrypted.

use crate::spec::ScenarioSpec;
use crate::support::{bar, compare};
use polite_wifi_core::analysis;
use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_harness::{Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_mac::{Behavior, StationConfig};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_phy::timing::{WPA2_DECODE_MAX_US, WPA2_DECODE_MIN_US};
use serde::Serialize;

#[derive(Serialize)]
struct SifsResult {
    report: polite_wifi_core::analysis::SifsReport,
    worst_case_overrun: f64,
    pmf_victim_cts_count: u64,
    pmf_victim_ack_count: u64,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let report = analysis::sifs_report();
    println!("\n-- Part 1: validate-then-ACK misses the SIFS deadline --\n");
    for (band, sweep) in &report.sweeps {
        println!("{band}:");
        for f in sweep {
            let label = if f.ack_ready_us == f.deadline_us {
                "FCS-only ACK (real 802.11)".to_string()
            } else {
                format!("validate first ({} µs decode)", f.ack_ready_us)
            };
            println!(
                "  {:<34} ready at {:>4} µs vs {:>2} µs budget  {}  {}",
                label,
                f.ack_ready_us,
                f.deadline_us,
                bar(f.ack_ready_us as f64, 700.0, 28),
                if f.misses_deadline {
                    "MISSES — frame retransmitted"
                } else {
                    "on time"
                }
            );
        }
        println!();
    }
    compare(
        "WPA2 decode latency (cited prior work)",
        "200–700 µs",
        &format!("{WPA2_DECODE_MIN_US}–{WPA2_DECODE_MAX_US} µs (modelled)"),
    );
    compare(
        "overrun vs SIFS",
        "orders of magnitude",
        &format!("up to {:.0}x", analysis::worst_case_overrun()),
    );
    for (band, speedup) in &report.required_speedup {
        compare(
            &format!("decoder speedup needed on {band}"),
            ">10x",
            &format!("{speedup:.0}x"),
        );
    }

    println!("\n-- Part 2: the RTS/CTS fallback defeats even a fast decoder --\n");
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sb = ScenarioBuilder::new()
        .duration_us(1_000_000)
        .faults(exp.args().faults);
    let mut cfg = StationConfig::client(victim_mac);
    cfg.behavior = Behavior::pmf_client(); // 802.11w enabled
    let victim = sb.station(cfg, (0.0, 0.0));
    let attacker = sb.client(MacAddr::FAKE, (5.0, 0.0));
    let mut scenario = sb.build_with_seed(exp.seed());
    for i in 0..10u64 {
        scenario.sim.inject(
            i * 50_000,
            attacker,
            builder::fake_rts(victim_mac, MacAddr::FAKE, 248),
            BitRate::Mbps11,
        );
    }
    let sim = scenario.run();
    let cts = sim.station(victim).stats.cts_sent;
    compare(
        "PMF victim answers forged RTS with CTS",
        "10/10",
        &format!("{cts}/10"),
    );
    if exp.args().faults.is_clean() {
        assert_eq!(cts, 10);
    }
    exp.metrics.record("pmf_victim_cts", cts as f64);

    let ack_count = sim.station(victim).stats.acks_sent;
    let snapshot = scenario.sim.take_obs();
    exp.absorb_obs(snapshot);
    exp.finish_with_status(
        &spec.slug,
        &SifsResult {
            worst_case_overrun: analysis::worst_case_overrun(),
            pmf_victim_cts_count: cts,
            pmf_victim_ack_count: ack_count,
            report,
        },
    )
}
