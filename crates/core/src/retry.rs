//! Deterministic retry, backoff and quarantine for the attacker pipeline.
//!
//! The paper's rig simply hammered every discovered target once per
//! sniff loop; under a clean channel that is enough. Under an impaired
//! channel ([`polite_wifi_sim::FaultProfile`]) the pipeline needs the
//! usual distributed-systems survival kit: bounded exponential backoff
//! between re-injections, a per-target verify timeout, and quarantine
//! for targets that keep failing so they stop eating injection budget.
//!
//! Everything here is a pure function of the policy, the attempt number
//! and a caller-supplied key — no wall clock, no shared RNG — so retry
//! schedules are byte-identical across worker counts and replay runs.

use serde::{Deserialize, Serialize};

/// Retry/backoff policy for one attack pipeline.
///
/// The defaults are deliberately gentle: the first
/// [`free_retries`](RetryPolicy::free_retries) attempts carry no delay,
/// which keeps a clean-channel run's injection schedule identical to a
/// policy-free pipeline (paper-anchor numbers stay pinned), and backoff
/// only shapes the long tail that a clean channel never reaches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts re-issued immediately (no backoff). Covers one nominal
    /// dwell of 250 ms injection rounds, so clean runs are unchanged.
    pub free_retries: u32,
    /// First backoff delay, µs; doubles per subsequent attempt.
    pub base_delay_us: u64,
    /// Backoff ceiling, µs.
    pub max_delay_us: u64,
    /// Jitter span as a fraction of the delay, in permille. The draw is
    /// deterministic (keyed splitmix64), centred on the nominal delay.
    pub jitter_permille: u64,
    /// Quarantine a target after this many total failed attempts.
    pub quarantine_after: u32,
    /// Quarantine a target that has not verified within this long of
    /// its first injection attempt, µs.
    pub verify_timeout_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            free_retries: 10,
            base_delay_us: 250_000,
            max_delay_us: 1_000_000,
            jitter_permille: 200,
            quarantine_after: 20,
            verify_timeout_us: 20_000_000,
        }
    }
}

/// SplitMix64 — the standard 64-bit finalising mixer. One evaluation per
/// (key, attempt) pair is all the randomness a jittered backoff needs,
/// and it is trivially deterministic and scheduling-independent.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The delay to apply *after* failed attempt number `attempt`
    /// (1-based), jittered deterministically by `key` (callers use
    /// `seed ^ target_mac`). Zero within the free-retry budget, then
    /// exponential from [`base_delay_us`](RetryPolicy::base_delay_us)
    /// capped at [`max_delay_us`](RetryPolicy::max_delay_us) ± jitter.
    pub fn delay_us(&self, attempt: u32, key: u64) -> u64 {
        if attempt <= self.free_retries {
            return 0;
        }
        let exp = (attempt - self.free_retries - 1).min(20);
        let nominal = self
            .base_delay_us
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_us);
        let span = nominal.saturating_mul(self.jitter_permille) / 1000;
        if span == 0 {
            return nominal;
        }
        let draw = splitmix64(key ^ (u64::from(attempt) << 32)) % (span + 1);
        // Centre the jitter on the nominal delay: ± span/2.
        (nominal - span / 2).saturating_add(draw)
    }

    /// Whether a target with `attempts` failed attempts, first injected
    /// at `first_attempt_us`, should be quarantined at time `now_us`.
    pub fn should_quarantine(&self, attempts: u32, first_attempt_us: u64, now_us: u64) -> bool {
        attempts >= self.quarantine_after
            || (attempts > 0 && now_us.saturating_sub(first_attempt_us) >= self.verify_timeout_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_retries_carry_no_delay() {
        let p = RetryPolicy::default();
        for attempt in 1..=p.free_retries {
            assert_eq!(p.delay_us(attempt, 0xABCD), 0, "attempt {attempt}");
        }
        assert!(p.delay_us(p.free_retries + 1, 0xABCD) > 0);
    }

    #[test]
    fn backoff_grows_and_is_bounded() {
        let p = RetryPolicy {
            jitter_permille: 0,
            ..RetryPolicy::default()
        };
        let d1 = p.delay_us(p.free_retries + 1, 1);
        let d2 = p.delay_us(p.free_retries + 2, 1);
        let d3 = p.delay_us(p.free_retries + 3, 1);
        assert_eq!(d1, p.base_delay_us);
        assert_eq!(d2, 2 * p.base_delay_us);
        assert_eq!(d3, p.max_delay_us); // 4x base hits the 1 s cap
        for attempt in 1..200 {
            assert!(p.delay_us(attempt, 99) <= p.max_delay_us);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_centred() {
        let p = RetryPolicy::default();
        let attempt = p.free_retries + 2;
        let a = p.delay_us(attempt, 42);
        assert_eq!(a, p.delay_us(attempt, 42), "same key, same delay");
        // Different keys spread, but stay within nominal ± span/2.
        let nominal = 2 * p.base_delay_us;
        let span = nominal * p.jitter_permille / 1000;
        let mut distinct = std::collections::HashSet::new();
        for key in 0..64u64 {
            let d = p.delay_us(attempt, key);
            assert!(d >= nominal - span / 2 && d <= nominal + span - span / 2);
            distinct.insert(d);
        }
        assert!(distinct.len() > 8, "jitter collapsed: {distinct:?}");
    }

    #[test]
    fn quarantine_on_attempts_or_timeout() {
        let p = RetryPolicy::default();
        assert!(!p.should_quarantine(0, 0, u64::MAX)); // never injected
        assert!(!p.should_quarantine(3, 0, 1_000_000));
        assert!(p.should_quarantine(p.quarantine_after, 0, 1_000_000));
        assert!(p.should_quarantine(1, 1_000_000, 1_000_000 + p.verify_timeout_us));
    }
}
