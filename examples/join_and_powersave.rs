//! The substrate behind §4.2, end to end: a battery device joins a
//! network over the air, negotiates power save, has its downlink traffic
//! buffered and TIM-advertised while dozing — and then an attacker
//! demonstrates why none of that machinery survives fake frames.
//!
//! ```sh
//! cargo run --release --example join_and_powersave
//! ```

use polite_wifi::frame::{builder, MacAddr};
use polite_wifi::mac::{Behavior, JoinState, StationConfig};
use polite_wifi::phy::rate::BitRate;
use polite_wifi::power::{PowerProfile, StateDurations};
use polite_wifi::sim::{SimConfig, Simulator};

fn main() {
    let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
    let iot_mac: MacAddr = "24:0a:c4:00:00:07".parse().unwrap(); // Espressif OUI

    let mut sim = Simulator::new(SimConfig::default(), 2020);
    let ap = sim.add_node(StationConfig::access_point(ap_mac, "HomeNet"), (0.0, 0.0));
    let mut iot_cfg = StationConfig::client(iot_mac);
    iot_cfg.behavior = Behavior::iot_power_save();
    let iot = sim.add_node(iot_cfg, (4.0, 0.0));

    // 1. The real join sequence: authentication → association.
    sim.start_join(iot, ap_mac);
    sim.run_until(500_000);
    let JoinState::Joined { aid, .. } = sim.station(iot).join_state() else {
        panic!("join failed");
    };
    println!("IoT device joined HomeNet over the air (AID {aid}).");

    // 2. It idles out, announces power save (PM=1 null), and dozes.
    sim.run_until(2_000_000);
    assert!(!sim.station(iot).is_awake());
    assert!(sim.station(ap).in_ps_mode(iot_mac));
    println!("Device dozing; AP knows (PM bit) and will buffer its downlink.");

    // 3. Downlink arrives while it sleeps: buffered, TIM-advertised,
    //    fetched with PS-Poll on the next beacon — standard 802.11.
    let downlink = builder::protected_qos_data(iot_mac, ap_mac, ap_mac, 400, 120);
    let actions = sim
        .station_mut(ap)
        .submit_downlink(downlink, BitRate::Mbps11);
    assert!(actions.is_empty(), "buffered, not transmitted");
    println!(
        "AP buffered 1 frame for the sleeper ({} in its queue).",
        sim.station(ap).buffered_for(iot_mac)
    );
    let delivered_before = sim.station(iot).stats.delivered;
    sim.run_until(3_000_000);
    assert_eq!(sim.station(ap).buffered_for(iot_mac), 0);
    assert!(sim.station(iot).stats.delivered > delivered_before);
    println!("Next beacon's TIM woke it; PS-Poll fetched the frame. Textbook.");

    // 4. Measure the healthy duty cycle over three quiet seconds.
    let t0 = sim.now_us();
    let before = sim.node(iot).ledger.snapshot(t0);
    sim.run_until(t0 + 3_000_000);
    let after = sim.node(iot).ledger.snapshot(sim.now_us());
    let healthy = StateDurations {
        sleep_us: after.sleep_us - before.sleep_us,
        idle_us: after.idle_us - before.idle_us,
        rx_us: after.rx_us - before.rx_us,
        tx_us: after.tx_us - before.tx_us,
    };
    let profile = PowerProfile::esp8266();
    println!(
        "Healthy power save: {:.1} mW average ({:.1}% asleep).",
        profile.average_power_mw(&healthy),
        100.0 * healthy.sleep_us as f64 / healthy.total_us() as f64
    );

    // 5. Enter the attacker. All that machinery — PM bits, TIM, PS-Poll —
    //    is voided by fake frames the device must wake to ACK.
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (9.0, 0.0));
    sim.set_retries(attacker, false);
    let t1 = sim.now_us();
    for i in 0..300u64 {
        sim.inject(
            t1 + i * 20_000, // 50 fakes/s
            attacker,
            builder::fake_null_frame(iot_mac, MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    let before = sim.node(iot).ledger.snapshot(t1);
    sim.run_until(t1 + 6_000_000);
    let after = sim.node(iot).ledger.snapshot(sim.now_us());
    let attacked = StateDurations {
        sleep_us: after.sleep_us - before.sleep_us,
        idle_us: after.idle_us - before.idle_us,
        rx_us: after.rx_us - before.rx_us,
        tx_us: after.tx_us - before.tx_us,
    };
    println!(
        "Under 50 fake pps: {:.1} mW average ({:.1}% asleep) — power save defeated.",
        profile.average_power_mw(&attacked),
        100.0 * attacked.sleep_us as f64 / attacked.total_us() as f64
    );
    assert!(profile.average_power_mw(&attacked) > 15.0 * profile.average_power_mw(&healthy));

    let _ = ap;
}
