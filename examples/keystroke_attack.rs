//! The Figure 5 keystroke/activity attack, end to end.
//!
//! An ESP32-class attacker in another room streams 150 fake frames per
//! second at a tablet and reads the CSI of the ACKs. The amplitude of
//! subcarrier 17 separates idle / pickup / hold / typing — and individual
//! keystrokes show up as bursts.
//!
//! ```sh
//! cargo run --release --example keystroke_attack
//! ```

use polite_wifi::core::KeystrokeAttack;

fn sparkline(series: &[f64], buckets: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let chunk = (series.len() / buckets).max(1);
    let values: Vec<f64> = series
        .chunks(chunk)
        .map(|c| {
            // Per-bucket variability, which is what the eye reads off
            // Figure 5.
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            (c.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c.len() as f64).sqrt()
        })
        .collect();
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|v| GLYPHS[((v / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    println!("Running the Figure 5 scenario (45 s at 150 fake frames/s)...\n");
    let attack = KeystrokeAttack::figure5(2020);
    let result = attack.run();

    println!(
        "fakes sent: {}   ACKs measured: {}   CSI rate: {:.1} Hz\n",
        result.fakes_sent, result.acks_measured, result.sample_rate_hz
    );

    println!("CSI amplitude variability, subcarrier 17 (one glyph ≈ 0.5 s):");
    println!("  {}\n", sparkline(&result.amplitudes, 90));

    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10}",
        "phase", "start s", "end s", "mean amp", "std"
    );
    for p in &result.phase_stats {
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>10.4} {:>10.4}",
            p.label,
            p.start_us as f64 / 1e6,
            p.end_us as f64 / 1e6,
            p.mean,
            p.std_dev
        );
    }

    let (hits, misses, false_alarms) = result.keystroke_score;
    println!(
        "\nkeystroke bursts: {}/{} detected ({} false alarms)",
        hits, result.keystrokes_truth, false_alarms
    );
    println!(
        "\nThe attacker never joined the network, never had a key, and the \
         victim never connected to anything the attacker controls."
    );
    assert!(misses < result.keystrokes_truth / 2);
}
