//! The classic pcap container format (the `.pcap` files Wireshark opens).

use core::fmt;

/// Magic number for microsecond-resolution pcap, native byte order.
const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Magic number for nanosecond-resolution pcap.
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;

/// Data link types relevant to 802.11 capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// LINKTYPE_IEEE802_11 (105): bare 802.11 frames.
    Ieee80211,
    /// LINKTYPE_IEEE802_11_RADIOTAP (127): radiotap header + frame.
    Ieee80211Radiotap,
    /// Anything else, carried verbatim.
    Other(u32),
}

impl LinkType {
    /// The numeric link type.
    pub fn to_u32(self) -> u32 {
        match self {
            LinkType::Ieee80211 => 105,
            LinkType::Ieee80211Radiotap => 127,
            LinkType::Other(v) => v,
        }
    }

    /// Decodes the numeric link type.
    pub fn from_u32(v: u32) -> LinkType {
        match v {
            105 => LinkType::Ieee80211,
            127 => LinkType::Ieee80211Radiotap,
            other => LinkType::Other(other),
        }
    }
}

/// Errors produced while reading pcap bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// The global header is shorter than 24 bytes.
    TruncatedHeader,
    /// The magic number is not a known pcap magic.
    BadMagic(u32),
    /// A record header or body was cut short.
    TruncatedRecord {
        /// Index of the record that failed.
        index: usize,
    },
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::TruncatedHeader => write!(f, "pcap global header truncated"),
            PcapError::BadMagic(m) => write!(f, "unknown pcap magic {m:#010x}"),
            PcapError::TruncatedRecord { index } => {
                write!(f, "pcap record {index} truncated")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in microseconds since the epoch (simulation time
    /// zero for our captures).
    pub ts_us: u64,
    /// Packet bytes (possibly snap-truncated).
    pub data: Vec<u8>,
    /// Original on-air length.
    pub orig_len: u32,
}

/// A parsed pcap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapFile {
    /// Link type of every record.
    pub link_type: LinkType,
    /// Snap length declared in the global header.
    pub snaplen: u32,
    /// The captured packets, in file order.
    pub records: Vec<PcapRecord>,
}

/// An incremental pcap writer that appends records to an in-memory buffer.
/// Flush to disk with [`PcapWriter::into_bytes`] + `std::fs::write`.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: Vec<u8>,
    records: usize,
}

impl PcapWriter {
    /// Default snap length (full frames).
    pub const SNAPLEN: u32 = 65535;

    /// Starts a new capture file with the given link type.
    pub fn new(link_type: LinkType) -> PcapWriter {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&Self::SNAPLEN.to_le_bytes());
        buf.extend_from_slice(&link_type.to_u32().to_le_bytes());
        PcapWriter { buf, records: 0 }
    }

    /// Appends one packet with a microsecond timestamp.
    pub fn write_record(&mut self, ts_us: u64, data: &[u8]) {
        let sec = (ts_us / 1_000_000) as u32;
        let usec = (ts_us % 1_000_000) as u32;
        let cap_len = data.len().min(Self::SNAPLEN as usize);
        self.buf.extend_from_slice(&sec.to_le_bytes());
        self.buf.extend_from_slice(&usec.to_le_bytes());
        self.buf.extend_from_slice(&(cap_len as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&data[..cap_len]);
        self.records += 1;
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Finishes the capture and returns the file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads a pcap file from memory. Handles both byte orders and both
/// timestamp resolutions.
pub fn read_pcap(bytes: &[u8]) -> Result<PcapFile, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::TruncatedHeader);
    }
    let magic_le = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let magic_be = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
    let (big_endian, nanos) = match (magic_le, magic_be) {
        (MAGIC_USEC, _) => (false, false),
        (MAGIC_NSEC, _) => (false, true),
        (_, MAGIC_USEC) => (true, false),
        (_, MAGIC_NSEC) => (true, true),
        _ => return Err(PcapError::BadMagic(magic_le)),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr: [u8; 4] = b[..4].try_into().unwrap();
        if big_endian {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };

    let snaplen = read_u32(&bytes[16..20]);
    let link_type = LinkType::from_u32(read_u32(&bytes[20..24]));

    let mut records = Vec::new();
    let mut pos = 24;
    let mut index = 0;
    while pos < bytes.len() {
        if pos + 16 > bytes.len() {
            return Err(PcapError::TruncatedRecord { index });
        }
        let sec = read_u32(&bytes[pos..]) as u64;
        let frac = read_u32(&bytes[pos + 4..]) as u64;
        let incl = read_u32(&bytes[pos + 8..]) as usize;
        let orig_len = read_u32(&bytes[pos + 12..]);
        pos += 16;
        if pos + incl > bytes.len() {
            return Err(PcapError::TruncatedRecord { index });
        }
        let ts_us = if nanos {
            sec * 1_000_000 + frac / 1000
        } else {
            sec * 1_000_000 + frac
        };
        records.push(PcapRecord {
            ts_us,
            data: bytes[pos..pos + incl].to_vec(),
            orig_len,
        });
        pos += incl;
        index += 1;
    }

    Ok(PcapFile {
        link_type,
        snaplen,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_round_trips() {
        let w = PcapWriter::new(LinkType::Ieee80211);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 24);
        let f = read_pcap(&bytes).unwrap();
        assert_eq!(f.link_type, LinkType::Ieee80211);
        assert!(f.records.is_empty());
    }

    #[test]
    fn records_round_trip_with_timestamps() {
        let mut w = PcapWriter::new(LinkType::Ieee80211Radiotap);
        w.write_record(1_500_000, &[1, 2, 3]);
        w.write_record(1_500_044, &[4, 5]);
        assert_eq!(w.record_count(), 2);
        let f = read_pcap(&w.into_bytes()).unwrap();
        assert_eq!(f.link_type, LinkType::Ieee80211Radiotap);
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[0].ts_us, 1_500_000);
        assert_eq!(f.records[0].data, vec![1, 2, 3]);
        assert_eq!(f.records[1].ts_us, 1_500_044);
        assert_eq!(f.records[1].orig_len, 2);
    }

    #[test]
    fn big_endian_files_read() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&105u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes()); // sec
        bytes.extend_from_slice(&7u32.to_be_bytes()); // usec
        bytes.extend_from_slice(&2u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&2u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[0xd4, 0x00]);
        let f = read_pcap(&bytes).unwrap();
        assert_eq!(f.records[0].ts_us, 1_000_007);
        assert_eq!(f.link_type, LinkType::Ieee80211);
    }

    #[test]
    fn nanosecond_magic_scales_to_us() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_NSEC.to_le_bytes());
        bytes.extend_from_slice(&[2, 0, 4, 0]);
        bytes.extend_from_slice(&[0; 8]);
        bytes.extend_from_slice(&65535u32.to_le_bytes());
        bytes.extend_from_slice(&127u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&44_000u32.to_le_bytes()); // 44000 ns
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let f = read_pcap(&bytes).unwrap();
        assert_eq!(f.records[0].ts_us, 44);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0u8; 24];
        assert!(matches!(read_pcap(&bytes), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new(LinkType::Ieee80211);
        w.write_record(0, &[1, 2, 3, 4]);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(
            read_pcap(&bytes),
            Err(PcapError::TruncatedRecord { index: 0 })
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            read_pcap(&[0u8; 10]),
            Err(PcapError::TruncatedHeader)
        ));
    }

    #[test]
    fn link_type_codes() {
        assert_eq!(LinkType::Ieee80211.to_u32(), 105);
        assert_eq!(LinkType::Ieee80211Radiotap.to_u32(), 127);
        assert_eq!(LinkType::from_u32(1), LinkType::Other(1));
        assert_eq!(LinkType::from_u32(127), LinkType::Ieee80211Radiotap);
    }
}
