//! 802.11 PHY substrate.
//!
//! Everything below the MAC that the Polite-WiFi experiments depend on:
//!
//! * [`band`] — 2.4/5 GHz band parameters, most importantly the **SIFS**
//!   (10 µs / 16 µs): the deadline that makes ACK-before-validation the
//!   only implementable design (paper Section 2.2),
//! * [`rate`] — DSSS and legacy OFDM bit-rate tables (ACKs ride these
//!   legacy rates),
//! * [`airtime`] — on-air frame durations, ACK/CTS timeouts, NAV values,
//! * [`timing`] — the SIFS-vs-WPA2-decryption feasibility arithmetic,
//! * [`pathloss`] — free-space and log-distance propagation,
//! * [`fading`] — Rayleigh/Rician small-scale fading,
//! * [`link`] — SNR → BER → frame-error-rate for each modulation,
//! * [`csi`] — per-subcarrier channel state information with
//!   motion-driven dynamics (the signal behind Figures 5 and the sensing
//!   opportunity of Section 4.3), and
//! * [`complex`] — the small complex-number type the above share.
//!
//! ```
//! use polite_wifi_phy::band::Band;
//! use polite_wifi_phy::timing::{WPA2_DECODE_MIN_US, WPA2_DECODE_MAX_US};
//!
//! // The paper's core timing argument, as code:
//! assert!(WPA2_DECODE_MIN_US > 10 * Band::Ghz2.sifs_us() as u64);
//! assert!(WPA2_DECODE_MAX_US / Band::Ghz2.sifs_us() as u64 >= 70);
//! ```

pub mod airtime;
pub mod band;
pub mod complex;
pub mod csi;
pub mod fading;
pub mod link;
pub mod pathloss;
pub mod rate;
pub mod timing;

pub use band::Band;
pub use complex::Complex;
pub use csi::{CsiChannel, CsiSnapshot};
pub use rate::BitRate;
