//! Causal frame-lifecycle traces.
//!
//! A trace follows one injected frame through every hop of its life:
//! injection → CSMA transmission (per attempt) → its fate on the medium
//! at the addressed receiver (delivered / FER-dropped / collided /
//! fault-suppressed / stall-swallowed / …) → the SIFS-timed ACK the
//! receiver schedules → the ACK arriving back at the injector (the
//! attacker's "verify" step), including the retry chain in between.
//! Derived frames — the SIFS response itself, MAC-enqueued reactions
//! like deauth bursts — inherit the injected frame's trace ID, so the
//! whole causal tree shares one timeline.
//!
//! Determinism contract: trace IDs are the injection ordinal within one
//! simulator (0, 1, 2, …), and whether a frame is traced at all is
//! [`sampled`] — a pure function of `(trial seed, trace id)`. Per-trial
//! logs absorbed in trial-index order therefore render byte-identically
//! at any `--workers` count. Storage is bounded: at most `max_traces`
//! traces of `max_hops` hops each; overflow is counted, never stored.

use crate::json::JsonWriter;

/// Hop kinds — the taxonomy DESIGN.md §10 documents.
pub mod hop {
    /// Frame handed to the injector's transmit queue (trace begins).
    pub const INJECT: &str = "inject";
    /// A CSMA transmission attempt started (`arg` = retry count so far).
    pub const TX: &str = "tx";
    /// A SIFS-timed response transmission started at the responder.
    pub const RESPONSE_TX: &str = "response_tx";
    /// The receiver's MAC scheduled the SIFS response (`arg` = the
    /// scheduled turnaround in µs — equal to the band's SIFS under the
    /// paper's polite-ACK behavior).
    pub const SIFS_ACK: &str = "sifs_ack";
    /// The response arrived back at the injector and satisfied its wait
    /// (`arg` = exchange round-trip in µs). The attacker's verify step.
    pub const ACK_RX: &str = "ack_rx";
    /// ACK timeout at the sender; the frame stays queued for another
    /// attempt (`arg` = attempts so far).
    pub const RETRY: &str = "retry";
    /// ACK timeout at the sender; the retry budget is exhausted and the
    /// frame is dropped (`arg` = attempts made).
    pub const DROP: &str = "drop";

    /// Medium fate at the addressed receiver: decoded cleanly.
    pub const FATE_DELIVERED: &str = "fate.delivered";
    /// Medium fate: frame-error drop (`arg` 1 = injected burst-loss
    /// fault, 0 = the channel's intrinsic FER draw).
    pub const FATE_FER_DROPPED: &str = "fate.fer_dropped";
    /// Medium fate: corrupted by an overlapping transmission (`arg` 1 =
    /// the receiver's own half-duplex transmission).
    pub const FATE_COLLIDED: &str = "fate.collided";
    /// Medium fate: the receiver's firmware was stalled (deaf).
    pub const FATE_STALL_SWALLOWED: &str = "fate.stall_swallowed";
    /// The receiver's scheduled SIFS response was swallowed by a stall.
    pub const FATE_FAULT_SUPPRESSED: &str = "fate.fault_suppressed";
    /// Medium fate: below the receiver's detection threshold.
    pub const FATE_UNDETECTED: &str = "fate.undetected";
    /// Medium fate: the receiver's power-save radio was dozing.
    pub const FATE_DOZING: &str = "fate.dozing";
}

/// SplitMix64 — the same keyed mixer the retry layer uses; pure, so the
/// sampling decision never touches shared RNG state.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic sampling decision: trace `trace_id` in a trial
/// seeded `seed` iff this returns true. Pure function of its arguments —
/// the worker-invariance contract rests on exactly that.
pub fn sampled(seed: u64, trace_id: u64, permille: u32) -> bool {
    if permille >= 1000 {
        return true;
    }
    if permille == 0 {
        return false;
    }
    splitmix64(seed ^ trace_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1000 < permille as u64
}

/// One hop in a frame's causal timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRecord {
    /// Virtual time of the hop, in µs.
    pub ts_us: u64,
    /// Node index the hop happened at.
    pub node: u64,
    /// Hop kind (see [`hop`]).
    pub kind: String,
    /// Kind-specific argument (attempt count, turnaround µs, …).
    pub arg: u64,
}

/// The full sampled timeline of one injected frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTrace {
    /// Injection ordinal within the trial's simulator.
    pub trace_id: u64,
    /// Trial index, stamped by [`TraceLog::absorb`].
    pub group: u64,
    /// Hops in recording order (monotone in `ts_us`).
    pub hops: Vec<HopRecord>,
}

/// Bounded store of sampled frame timelines.
#[derive(Debug, Clone)]
pub struct TraceLog {
    traces: Vec<FrameTrace>,
    max_traces: usize,
    max_hops: usize,
    /// Traces that arrived after the store was full.
    pub dropped_traces: u64,
    /// Hops dropped because their trace was full (or never stored).
    pub dropped_hops: u64,
}

impl TraceLog {
    /// An empty log bounded to `max_traces` × `max_hops`.
    pub fn new(max_traces: usize, max_hops: usize) -> TraceLog {
        TraceLog {
            traces: Vec::new(),
            max_traces,
            max_hops,
            dropped_traces: 0,
            dropped_hops: 0,
        }
    }

    /// Opens a new trace. Past the bound it is counted, not stored.
    pub fn begin(&mut self, trace_id: u64) {
        if self.traces.len() >= self.max_traces {
            self.dropped_traces += 1;
            return;
        }
        self.traces.push(FrameTrace {
            trace_id,
            group: 0,
            hops: Vec::new(),
        });
    }

    /// Appends a hop to an open trace. Hops for unknown (capacity-
    /// dropped) traces or full timelines are counted, not stored.
    pub fn hop(&mut self, trace_id: u64, ts_us: u64, node: u64, kind: &str, arg: u64) {
        // Recent traces live at the end; in-flight frames are few.
        let Some(t) = self
            .traces
            .iter_mut()
            .rev()
            .find(|t| t.trace_id == trace_id)
        else {
            self.dropped_hops += 1;
            return;
        };
        if t.hops.len() >= self.max_hops {
            self.dropped_hops += 1;
            return;
        }
        t.hops.push(HopRecord {
            ts_us,
            node,
            kind: kind.to_string(),
            arg,
        });
    }

    /// The stored traces, in recording (then absorb) order.
    pub fn traces(&self) -> &[FrameTrace] {
        &self.traces
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when nothing is stored and nothing was dropped.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty() && self.dropped_traces == 0 && self.dropped_hops == 0
    }

    /// Folds another log in, stamping its traces with `group` (the
    /// absorbing side's trial index). Call in trial order.
    pub fn absorb(&mut self, other: &TraceLog, group: u64) {
        self.dropped_traces += other.dropped_traces;
        self.dropped_hops += other.dropped_hops;
        for t in &other.traces {
            if self.traces.len() >= self.max_traces {
                self.dropped_traces += 1;
                self.dropped_hops += t.hops.len() as u64;
                continue;
            }
            let mut t = t.clone();
            t.group = group;
            self.traces.push(t);
        }
    }

    /// Canonical JSON array of the stored timelines — byte-identical for
    /// equal contents, like every other obs export.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_array();
        for t in &self.traces {
            w.begin_object()
                .key("trace_id")
                .u64(t.trace_id)
                .key("group")
                .u64(t.group)
                .key("hops")
                .begin_array();
            for h in &t.hops {
                w.begin_object()
                    .key("ts_us")
                    .u64(h.ts_us)
                    .key("node")
                    .u64(h.node)
                    .key("kind")
                    .string(&h.kind)
                    .key("arg")
                    .u64(h.arg)
                    .end_object();
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_pure_and_respects_bounds() {
        assert!(sampled(7, 3, 1000));
        assert!(!sampled(7, 3, 0));
        for id in 0..100 {
            assert_eq!(sampled(42, id, 250), sampled(42, id, 250));
        }
        let kept = (0..10_000).filter(|&id| sampled(42, id, 250)).count();
        assert!((1_500..3_500).contains(&kept), "kept {kept} of 10k at 25%");
    }

    #[test]
    fn capacity_bounds_are_exact() {
        let mut log = TraceLog::new(2, 2);
        for id in 0..4 {
            log.begin(id);
            log.hop(id, 1, 0, hop::INJECT, 0);
            log.hop(id, 2, 0, hop::TX, 0);
            log.hop(id, 3, 1, hop::FATE_DELIVERED, 0);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped_traces, 2);
        // Traces 0/1 each dropped their 3rd hop; traces 2/3 dropped all.
        assert_eq!(log.dropped_hops, 2 + 6);
        assert!(log.traces().iter().all(|t| t.hops.len() <= 2));
    }

    #[test]
    fn absorb_retags_and_counts_overflow() {
        let mut a = TraceLog::new(8, 8);
        a.begin(0);
        a.hop(0, 1, 0, hop::INJECT, 0);
        let mut b = TraceLog::new(8, 8);
        b.begin(0);
        b.hop(0, 5, 0, hop::INJECT, 0);

        let mut root = TraceLog::new(8, 8);
        root.absorb(&a, 0);
        root.absorb(&b, 1);
        assert_eq!(root.len(), 2);
        assert_eq!(root.traces()[0].group, 0);
        assert_eq!(root.traces()[1].group, 1);

        let mut tiny = TraceLog::new(1, 8);
        tiny.absorb(&a, 0);
        tiny.absorb(&b, 1);
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny.dropped_traces, 1);
        assert_eq!(tiny.dropped_hops, 1);
    }

    #[test]
    fn json_export_is_canonical() {
        let mut log = TraceLog::new(4, 4);
        log.begin(7);
        log.hop(7, 10, 1, hop::INJECT, 0);
        log.hop(7, 20, 1, hop::TX, 2);
        let json = log.to_json();
        assert!(json.contains("\"trace_id\":7"));
        assert!(json.contains("\"kind\":\"tx\""));
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 1);
    }
}
