//! The live telemetry plane's harness-side contract.
//!
//! Three properties the `/watch` endpoint (and any other subscriber)
//! leans on:
//!
//! * events carry strictly increasing, gap-free sequence numbers no
//!   matter how many workers raced to emit them — subscribers resume
//!   from `Last-Event-ID` by arithmetic, not heuristics;
//! * a subscriber that never drains (or disconnected) costs shed
//!   journal entries, never job progress — the run finishes with full
//!   results regardless;
//! * degraded trials surface as structured `trial_failed` events, not
//!   just stderr diagnostics.
//!
//! All of this is operational-plane only: the canonical result
//! envelopes these runs write are exercised elsewhere
//! (`harness_parallelism.rs`) and contain none of these events.

use polite_wifi::harness::progress::set_thread_progress_sink;
use polite_wifi::harness::{ChannelProgress, Experiment, ProgressSink, RunArgs};
use std::sync::Arc;

fn run_with_channel_sink(args: RunArgs, capacity: usize) -> (Arc<ChannelProgress>, usize) {
    let sink = Arc::new(ChannelProgress::new(capacity));
    let prev = set_thread_progress_sink(Some(Arc::clone(&sink) as Arc<dyn ProgressSink>));
    let mut exp = Experiment::start_with("E0: telemetry", "none", args);
    let results = exp.run_trials(|ctx| ctx.index as u64);
    set_thread_progress_sink(prev);
    let completed = results.iter().filter(|r| r.is_some()).count();
    (sink, completed)
}

#[test]
fn events_are_strictly_sequence_ordered_across_worker_counts() {
    for workers in [1usize, 4, 8] {
        let args = RunArgs {
            trials: 24,
            workers,
            seed: 7,
            ..RunArgs::default()
        };
        let (sink, completed) = run_with_channel_sink(args, 4096);
        assert_eq!(completed, 24);

        let delivery = sink.hub().snapshot_since(0);
        assert_eq!(delivery.first_seq, 0, "nothing shed at this capacity");
        let seqs: Vec<u64> = delivery.events.iter().map(|e| e.seq).collect();
        let expected: Vec<u64> = (0..delivery.events.len() as u64).collect();
        assert_eq!(
            seqs, expected,
            "sequence numbers must be gap-free and strictly increasing at {workers} workers"
        );

        let count_of = |kind: &str| {
            delivery
                .events
                .iter()
                .filter(|e| e.kind == kind)
                .count()
        };
        assert_eq!(count_of("trial_started"), 24, "at {workers} workers");
        assert_eq!(count_of("trial_finished"), 24, "at {workers} workers");
        assert_eq!(sink.trials_done(), 24);
        assert_eq!(sink.trials_total(), 24);
        // The final completion report counts all trials, whatever the
        // interleaving.
        let last_done = delivery
            .events
            .iter()
            .rev()
            .find(|e| e.kind == "trial_finished")
            .and_then(|e| e.field("done"));
        assert_eq!(last_done, Some(24));
    }
}

#[test]
fn undrained_subscriber_sheds_events_but_never_blocks_the_run() {
    // A 4-event journal with nobody reading: 50 trials emit 100 trial
    // boundary events into it. The run must complete fully — shedding
    // is the journal's problem, not the job's.
    let args = RunArgs {
        trials: 50,
        workers: 4,
        seed: 11,
        ..RunArgs::default()
    };
    let (sink, completed) = run_with_channel_sink(args, 4);
    assert_eq!(completed, 50, "shedding must not cost trial results");
    assert_eq!(sink.hub().published(), 100);
    assert_eq!(sink.hub().shed(), 96);
    // What survives is the newest tail, still gap-free.
    let delivery = sink.hub().snapshot_since(0);
    let seqs: Vec<u64> = delivery.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![96, 97, 98, 99]);
}

#[test]
fn degraded_trials_surface_as_trial_failed_events() {
    let args = RunArgs {
        trials: 4,
        workers: 2,
        seed: 3,
        inject_trial_panic: Some(2),
        allow_partial: true,
        ..RunArgs::default()
    };
    let (sink, completed) = run_with_channel_sink(args, 256);
    assert_eq!(completed, 3);
    let delivery = sink.hub().snapshot_since(0);
    let failed: Vec<_> = delivery
        .events
        .iter()
        .filter(|e| e.kind == "trial_failed")
        .collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].field("trial"), Some(2));
    assert!(failed[0].detail.contains("injected trial panic"));
}
