//! A deliberately minimal HTTP/1.1 subset over `std::net::TcpStream`.
//!
//! The daemon serves a handful of fixed routes to trusted tooling (CI,
//! curl, the bench harness); it does not need — and must not grow — a
//! general web stack. One request per connection (`Connection: close`),
//! bounded header and body sizes, `Content-Length` bodies only. Keeping
//! this hand-rolled keeps the workspace's zero-external-dependency
//! stance intact.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers. Anything bigger than this
/// is not a polite-wifi client.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (scenario specs are a few KiB).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request: method, path, decoded query pairs, headers
/// (names lowercased) and raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// The query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// The header `name` (case-insensitive; pass it lowercased), if
    /// present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Splits `/submit?wait=1&x=y` into the path and its query pairs.
/// Values are taken literally (no percent-decoding): every legal value
/// in the daemon's API is `[A-Za-z0-9_-]`.
fn split_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    (path.to_string(), query)
}

/// Reads and parses one request from the stream. Errors on malformed
/// framing or on a request exceeding the size bounds.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut content_length = 0usize;
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head.push_str(&line);
        if head.len() + request_line.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| bad("bad Content-Length"))?;
            }
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = split_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// One response, written with `Connection: close` framing.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra `name: value` headers (e.g. `Retry-After`, `X-Cache`).
    pub headers: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A tiny blocking client for tests, CI and the bench harness: sends
/// one request, reads the response to EOF, returns (status, headers,
/// body).
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<(u16, BTreeMap<String, String>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head_text = String::from_utf8_lossy(&raw[..split]).into_owned();
    let resp_body = raw[split + 4..].to_vec();
    let mut lines = head_text.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, headers, resp_body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splits_into_path_and_query() {
        let (path, query) = split_target("/submit?wait=1&inject_trial_panic=2");
        assert_eq!(path, "/submit");
        assert_eq!(query.get("wait").map(String::as_str), Some("1"));
        assert_eq!(
            query.get("inject_trial_panic").map(String::as_str),
            Some("2")
        );
        let (path, query) = split_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(query.is_empty());
    }

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/submit");
            assert_eq!(req.param("wait"), Some("1"));
            assert_eq!(req.header("host"), Some(addr.to_string().as_str()));
            assert_eq!(req.body, b"{\"x\": 1}");
            Response::json(200, "{\"ok\": true}".to_string())
                .with_header("x-cache", "miss".to_string())
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, headers, body) =
            request(addr, "POST", "/submit?wait=1", b"{\"x\": 1}").unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("x-cache").map(String::as_str), Some("miss"));
        assert_eq!(body, b"{\"ok\": true}");
    }
}
