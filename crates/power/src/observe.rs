//! Observability taps for the energy model.
//!
//! Experiments that already pull [`StateDurations`] out of the simulator
//! can feed the same numbers into an [`Obs`] scope here, so power-state
//! dwell and average draw show up in the canonical metrics snapshot next
//! to the MAC counters.

use crate::profile::{PowerProfile, StateDurations};
use polite_wifi_obs::Obs;

/// Records per-state dwell histograms: `<prefix>.{sleep,idle,rx,tx}_us`.
///
/// Each call contributes one observation per state — a per-trial victim
/// summary, so across trials the histogram shows the dwell distribution.
pub fn record_state_durations(obs: &mut Obs, prefix: &str, d: &StateDurations) {
    obs.observe(&format!("{prefix}.sleep_us"), d.sleep_us);
    obs.observe(&format!("{prefix}.idle_us"), d.idle_us);
    obs.observe(&format!("{prefix}.rx_us"), d.rx_us);
    obs.observe(&format!("{prefix}.tx_us"), d.tx_us);
}

/// Records the energy verdict for one run: `<prefix>.avg_uw` (average
/// draw in **microwatts**, an integer so the histogram stays exact) and
/// `<prefix>.energy_uwh` (consumption in microwatt-hours).
pub fn record_power(obs: &mut Obs, prefix: &str, profile: &PowerProfile, d: &StateDurations) {
    let avg_uw = (profile.average_power_mw(d) * 1_000.0).round() as u64;
    let energy_uwh = (profile.energy_mwh(d) * 1_000.0).round() as u64;
    obs.observe(&format!("{prefix}.avg_uw"), avg_uw);
    obs.observe(&format!("{prefix}.energy_uwh"), energy_uwh);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_obs::ObsConfig;

    #[test]
    fn durations_and_power_recorded() {
        let mut obs = Obs::with_config(ObsConfig::default());
        let d = StateDurations {
            sleep_us: 900_000,
            idle_us: 80_000,
            rx_us: 15_000,
            tx_us: 5_000,
        };
        record_state_durations(&mut obs, "power.victim", &d);
        record_power(&mut obs, "power.victim", &PowerProfile::esp8266(), &d);
        assert_eq!(
            obs.histograms.get("power.victim.sleep_us").unwrap().max,
            900_000
        );
        let avg = obs.histograms.get("power.victim.avg_uw").unwrap();
        // 0.9 s at 3 mW + 0.08 s at 230 mW + ... ≈ 28 mW ≈ 28,000 µW.
        assert!(avg.max > 20_000 && avg.max < 40_000, "avg {} µW", avg.max);
    }
}
