//! Minimal JSON support: an escape-correct writer and a small reader.
//!
//! The crate is zero-dependency by design, so both exporters build their
//! documents through [`JsonWriter`] and tools that must *read* JSON back
//! (the bench-regression gate reading `BENCH_baseline.json`) use
//! [`parse`]. The reader is a strict recursive-descent parser over the
//! subset of JSON this workspace emits: objects, arrays, strings with
//! standard escapes, numbers, booleans and null.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` the way the vendored serde_json does: integral
/// values get a trailing `.0`, non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{}", v);
    }
}

/// A comma-tracking JSON writer for building documents by hand.
///
/// The caller supplies structure (`begin_object` / `end_array` pairs);
/// the writer handles separators and escaping. Output is compact (no
/// whitespace), so byte-identity of two documents reduces to value
/// identity plus field order.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A writer with an empty buffer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn separate(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens `{`. Pair with [`end_object`](Self::end_object).
    pub fn begin_object(&mut self) -> &mut Self {
        self.separate();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens `[`. Pair with [`end_array`](Self::end_array).
    pub fn begin_array(&mut self) -> &mut Self {
        self.separate();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Writes `"key":` — the next write supplies the value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.separate();
        write_escaped(&mut self.out, key);
        self.out.push(':');
        // The value that follows must not emit its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.separate();
        write_escaped(&mut self.out, v);
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.separate();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value (serde_json-compatible formatting).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.separate();
        write_f64(&mut self.out, v);
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes pre-rendered JSON verbatim (caller guarantees validity).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.separate();
        self.out.push_str(json);
        self
    }

    /// Consumes the writer and returns the document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value. Object fields keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; parsed as `f64` (exact for integers up to 2^53,
    /// far beyond any metric this workspace records).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset and description.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        raw.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{raw}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("name")
            .string("a\"b")
            .key("vals")
            .begin_array()
            .u64(1)
            .u64(2)
            .end_array()
            .key("ok")
            .bool(true)
            .key("mean")
            .f64(2.0)
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"a\"b","vals":[1,2],"ok":true,"mean":2.0}"#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("metrics")
            .begin_array()
            .begin_object()
            .key("name")
            .string("acks")
            .key("value")
            .f64(123.5)
            .end_object()
            .end_array()
            .key("note")
            .string("tab\there")
            .end_object();
        let doc = w.finish();
        let parsed = parse(&doc).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics[0].get("name").unwrap().as_str(), Some("acks"));
        assert_eq!(metrics[0].get("value").unwrap().as_f64(), Some(123.5));
        assert_eq!(parsed.get("note").unwrap().as_str(), Some("tab\there"));
    }

    #[test]
    fn parse_handles_ws_escapes_negatives_and_exponents() {
        let parsed = parse(" { \"a\" : [ -1.5e2 , null , false , \"\\u0041\\n\" ] } ").unwrap();
        let arr = parsed.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-150.0));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2], JsonValue::Bool(false));
        assert_eq!(arr[3].as_str(), Some("A\n"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
    }
}
