//! The experiment facade and unified result schema.
//!
//! Every experiment binary follows the same lifecycle:
//!
//! ```text
//! let mut exp = Experiment::start("E1: ...", "Figure 2 of ...");
//! // ... run trials via exp.args() / exp.runner(), record into
//! //     exp.metrics ...
//! exp.finish("fig2_trace", &payload)?;   // prints + writes results/fig2_trace.json
//! ```
//!
//! [`Experiment::finish`] writes one JSON document with a fixed
//! envelope — experiment name, paper reference, seed, trial/worker
//! counts, metric summaries — and the experiment-specific payload under
//! `payload`. Consumers (EXPERIMENTS.md tooling, plots) can rely on the
//! envelope without knowing any experiment's payload shape.

use crate::ledger::{MetricSummary, MetricsLedger};
use crate::runner::{RunArgs, Runner};
use serde::Serialize;
use serde_json::Value;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// Directory experiment JSON results are written to. Honours the
/// `POLITE_WIFI_RESULTS` override; created on demand by [`write_json`].
pub fn results_dir() -> PathBuf {
    std::env::var("POLITE_WIFI_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Serialises a value to `results/<name>.json`, creating the directory
/// if needed. Returns the path written.
pub fn write_json<T: Serialize + ?Sized>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The fixed envelope every experiment result is written in.
#[derive(Serialize)]
struct ReportEnvelope {
    experiment: String,
    paper_ref: String,
    seed: u64,
    trials: u64,
    workers: u64,
    quick: bool,
    metrics: Vec<MetricSummary>,
    payload: Value,
}

/// Lifecycle handle for one experiment run.
pub struct Experiment {
    name: String,
    paper_ref: String,
    args: RunArgs,
    /// Experiment-level metric accumulators, summarised into the JSON
    /// envelope on [`finish`](Self::finish).
    pub metrics: MetricsLedger,
    started: Instant,
}

impl Experiment {
    /// Starts an experiment: prints the standard header and parses the
    /// shared `--trials/--workers/--seed/--quick` flags from the
    /// process arguments (exiting with a usage message on bad input).
    pub fn start(name: &str, paper_ref: &str) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(RunArgs::default()))
    }

    /// Starts an experiment with experiment-specific default arguments
    /// (still overridable from the command line).
    pub fn start_defaults(name: &str, paper_ref: &str, defaults: RunArgs) -> Experiment {
        Self::start_with(name, paper_ref, RunArgs::from_env(defaults))
    }

    /// Starts an experiment with fully explicit arguments (for tests).
    pub fn start_with(name: &str, paper_ref: &str, args: RunArgs) -> Experiment {
        println!("{}", "=".repeat(72));
        println!("{name}");
        println!("reproduces: {paper_ref}");
        println!(
            "seed {}   trials {}   workers {}{}",
            args.seed,
            args.trials,
            args.workers,
            if args.quick { "   (quick)" } else { "" }
        );
        println!("{}", "=".repeat(72));
        Experiment {
            name: name.to_string(),
            paper_ref: paper_ref.to_string(),
            args,
            metrics: MetricsLedger::new(),
            started: Instant::now(),
        }
    }

    /// The parsed run arguments.
    pub fn args(&self) -> RunArgs {
        self.args
    }

    /// Base seed for this run.
    pub fn seed(&self) -> u64 {
        self.args.seed
    }

    /// A worker pool sized from `--workers`.
    pub fn runner(&self) -> Runner {
        self.args.runner()
    }

    /// Finishes the experiment: merges the payload into the unified
    /// envelope, writes `results/<slug>.json`, and prints where.
    pub fn finish<T: Serialize>(self, slug: &str, payload: &T) -> io::Result<()> {
        let envelope = ReportEnvelope {
            experiment: self.name,
            paper_ref: self.paper_ref,
            seed: self.args.seed,
            trials: self.args.trials as u64,
            workers: self.args.workers as u64,
            quick: self.args.quick,
            metrics: self.metrics.summaries(),
            payload: serde_json::to_value(payload).map_err(io::Error::other)?,
        };
        let path = write_json(slug, &envelope)?;
        println!(
            "\n[result JSON written to {} in {:.2}s]",
            path.display(),
            self.started.elapsed().as_secs_f64()
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ResultsDirGuard(Option<String>);

    impl ResultsDirGuard {
        fn set(dir: &std::path::Path) -> ResultsDirGuard {
            let old = std::env::var("POLITE_WIFI_RESULTS").ok();
            std::env::set_var("POLITE_WIFI_RESULTS", dir);
            ResultsDirGuard(old)
        }
    }

    impl Drop for ResultsDirGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(old) => std::env::set_var("POLITE_WIFI_RESULTS", old),
                None => std::env::remove_var("POLITE_WIFI_RESULTS"),
            }
        }
    }

    #[derive(Serialize)]
    struct Payload {
        acks: u64,
    }

    #[test]
    fn finish_writes_unified_envelope() {
        let dir = std::env::temp_dir().join("polite-wifi-harness-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ResultsDirGuard::set(&dir);

        let args = RunArgs {
            trials: 3,
            workers: 2,
            seed: 11,
            quick: true,
        };
        let mut exp = Experiment::start_with("E0: smoke", "none", args);
        exp.metrics.record("acks", 5.0);
        exp.finish("smoke", &Payload { acks: 5 }).unwrap();

        let written = std::fs::read_to_string(dir.join("smoke.json")).unwrap();
        for needle in [
            "\"experiment\": \"E0: smoke\"",
            "\"seed\": 11",
            "\"trials\": 3",
            "\"workers\": 2",
            "\"quick\": true",
            "\"name\": \"acks\"",
            "\"payload\": {",
            "\"acks\": 5",
        ] {
            assert!(written.contains(needle), "missing {needle} in:\n{written}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
