//! Management frames: beacons, deauthentication, probes, authentication and
//! (dis)association.

use crate::addr::MacAddr;
use crate::control::{mgmt_subtype, FrameControl, FrameType};
use crate::error::FrameError;
use crate::ie::InformationElement;
use crate::reason::ReasonCode;
use crate::seq::SequenceControl;
use serde::{Deserialize, Serialize};

/// The body of a management frame, by subtype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ManagementBody {
    /// Beacon: timestamp, beacon interval (TUs), capabilities, elements.
    Beacon {
        /// 64-bit TSF timestamp in microseconds.
        timestamp: u64,
        /// Beacon interval in time units (1 TU = 1024 µs).
        interval_tu: u16,
        /// Capability information bitfield.
        capabilities: u16,
        /// Tagged parameters.
        elements: Vec<InformationElement>,
    },
    /// Probe request: elements only (SSID + rates).
    ProbeRequest {
        /// Tagged parameters.
        elements: Vec<InformationElement>,
    },
    /// Probe response: same fixed fields as a beacon.
    ProbeResponse {
        /// 64-bit TSF timestamp in microseconds.
        timestamp: u64,
        /// Beacon interval in time units.
        interval_tu: u16,
        /// Capability information bitfield.
        capabilities: u16,
        /// Tagged parameters.
        elements: Vec<InformationElement>,
    },
    /// Open-system authentication exchange.
    Authentication {
        /// Algorithm number (0 = open system).
        algorithm: u16,
        /// Transaction sequence number (1 = request, 2 = response).
        transaction: u16,
        /// Status code (0 = success).
        status: u16,
    },
    /// Association request.
    AssociationRequest {
        /// Capability information bitfield.
        capabilities: u16,
        /// Listen interval in beacon intervals.
        listen_interval: u16,
        /// Tagged parameters.
        elements: Vec<InformationElement>,
    },
    /// Association response.
    AssociationResponse {
        /// Capability information bitfield.
        capabilities: u16,
        /// Status code (0 = success).
        status: u16,
        /// Association id (with the two high bits set on air).
        aid: u16,
        /// Tagged parameters.
        elements: Vec<InformationElement>,
    },
    /// Deauthentication — what the Figure 3 AP fires at the attacker.
    Deauthentication {
        /// Reason code.
        reason: ReasonCode,
    },
    /// Disassociation.
    Disassociation {
        /// Reason code.
        reason: ReasonCode,
    },
    /// Action frame, body carried opaquely.
    Action {
        /// Category + action + payload bytes.
        payload: Vec<u8>,
    },
}

impl ManagementBody {
    /// The subtype this body encodes as.
    pub fn subtype(&self) -> u8 {
        match self {
            ManagementBody::Beacon { .. } => mgmt_subtype::BEACON,
            ManagementBody::ProbeRequest { .. } => mgmt_subtype::PROBE_REQ,
            ManagementBody::ProbeResponse { .. } => mgmt_subtype::PROBE_RESP,
            ManagementBody::Authentication { .. } => mgmt_subtype::AUTH,
            ManagementBody::AssociationRequest { .. } => mgmt_subtype::ASSOC_REQ,
            ManagementBody::AssociationResponse { .. } => mgmt_subtype::ASSOC_RESP,
            ManagementBody::Deauthentication { .. } => mgmt_subtype::DEAUTH,
            ManagementBody::Disassociation { .. } => mgmt_subtype::DISASSOC,
            ManagementBody::Action { .. } => mgmt_subtype::ACTION,
        }
    }
}

/// A full management frame: the common 24-byte MAC header plus a typed body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagementFrame {
    /// Frame Control field.
    pub fc: FrameControl,
    /// Duration/ID field in microseconds.
    pub duration: u16,
    /// Address 1: receiver.
    pub ra: MacAddr,
    /// Address 2: transmitter.
    pub ta: MacAddr,
    /// Address 3: BSSID.
    pub bssid: MacAddr,
    /// Sequence Control field.
    pub seq: SequenceControl,
    /// Typed body.
    pub body: ManagementBody,
}

impl ManagementFrame {
    /// Builds a management frame with a fresh all-clear Frame Control whose
    /// subtype matches `body`.
    pub fn new(ra: MacAddr, ta: MacAddr, bssid: MacAddr, seq: u16, body: ManagementBody) -> Self {
        let fc = FrameControl::new(FrameType::Management, body.subtype());
        ManagementFrame {
            fc,
            duration: 0,
            ra,
            ta,
            bssid,
            seq: SequenceControl::new(seq, 0),
            body,
        }
    }

    /// Encodes header + body (no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.fc.encode());
        out.extend_from_slice(&self.duration.to_le_bytes());
        out.extend_from_slice(&self.ra.octets());
        out.extend_from_slice(&self.ta.octets());
        out.extend_from_slice(&self.bssid.octets());
        out.extend_from_slice(&self.seq.encode());
        match &self.body {
            ManagementBody::Beacon {
                timestamp,
                interval_tu,
                capabilities,
                elements,
            }
            | ManagementBody::ProbeResponse {
                timestamp,
                interval_tu,
                capabilities,
                elements,
            } => {
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&interval_tu.to_le_bytes());
                out.extend_from_slice(&capabilities.to_le_bytes());
                for ie in elements {
                    ie.encode_into(&mut out);
                }
            }
            ManagementBody::ProbeRequest { elements } => {
                for ie in elements {
                    ie.encode_into(&mut out);
                }
            }
            ManagementBody::Authentication {
                algorithm,
                transaction,
                status,
            } => {
                out.extend_from_slice(&algorithm.to_le_bytes());
                out.extend_from_slice(&transaction.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
            }
            ManagementBody::AssociationRequest {
                capabilities,
                listen_interval,
                elements,
            } => {
                out.extend_from_slice(&capabilities.to_le_bytes());
                out.extend_from_slice(&listen_interval.to_le_bytes());
                for ie in elements {
                    ie.encode_into(&mut out);
                }
            }
            ManagementBody::AssociationResponse {
                capabilities,
                status,
                aid,
                elements,
            } => {
                out.extend_from_slice(&capabilities.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
                out.extend_from_slice(&(aid | 0xc000).to_le_bytes());
                for ie in elements {
                    ie.encode_into(&mut out);
                }
            }
            ManagementBody::Deauthentication { reason }
            | ManagementBody::Disassociation { reason } => {
                out.extend_from_slice(&reason.to_u16().to_le_bytes());
            }
            ManagementBody::Action { payload } => {
                out.extend_from_slice(payload);
            }
        }
        out
    }

    /// Parses a management frame given its already-decoded Frame Control.
    pub fn parse(fc: FrameControl, buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 24 {
            return Err(FrameError::Truncated {
                context: "management frame header",
                needed: 24,
                available: buf.len(),
            });
        }
        let duration = u16::from_le_bytes([buf[2], buf[3]]);
        let ra = MacAddr::parse(&buf[4..])?;
        let ta = MacAddr::parse(&buf[10..])?;
        let bssid = MacAddr::parse(&buf[16..])?;
        let seq = SequenceControl::parse(&buf[22..])?;
        let body_bytes = &buf[24..];

        let body = match fc.subtype {
            mgmt_subtype::BEACON | mgmt_subtype::PROBE_RESP => {
                if body_bytes.len() < 12 {
                    return Err(FrameError::Truncated {
                        context: "beacon fixed parameters",
                        needed: 12,
                        available: body_bytes.len(),
                    });
                }
                let timestamp = u64::from_le_bytes(body_bytes[0..8].try_into().unwrap());
                let interval_tu = u16::from_le_bytes([body_bytes[8], body_bytes[9]]);
                let capabilities = u16::from_le_bytes([body_bytes[10], body_bytes[11]]);
                let elements = InformationElement::parse_all(&body_bytes[12..])?;
                if fc.subtype == mgmt_subtype::BEACON {
                    ManagementBody::Beacon {
                        timestamp,
                        interval_tu,
                        capabilities,
                        elements,
                    }
                } else {
                    ManagementBody::ProbeResponse {
                        timestamp,
                        interval_tu,
                        capabilities,
                        elements,
                    }
                }
            }
            mgmt_subtype::PROBE_REQ => ManagementBody::ProbeRequest {
                elements: InformationElement::parse_all(body_bytes)?,
            },
            mgmt_subtype::AUTH => {
                if body_bytes.len() < 6 {
                    return Err(FrameError::Truncated {
                        context: "authentication body",
                        needed: 6,
                        available: body_bytes.len(),
                    });
                }
                ManagementBody::Authentication {
                    algorithm: u16::from_le_bytes([body_bytes[0], body_bytes[1]]),
                    transaction: u16::from_le_bytes([body_bytes[2], body_bytes[3]]),
                    status: u16::from_le_bytes([body_bytes[4], body_bytes[5]]),
                }
            }
            mgmt_subtype::ASSOC_REQ => {
                if body_bytes.len() < 4 {
                    return Err(FrameError::Truncated {
                        context: "association request body",
                        needed: 4,
                        available: body_bytes.len(),
                    });
                }
                ManagementBody::AssociationRequest {
                    capabilities: u16::from_le_bytes([body_bytes[0], body_bytes[1]]),
                    listen_interval: u16::from_le_bytes([body_bytes[2], body_bytes[3]]),
                    elements: InformationElement::parse_all(&body_bytes[4..])?,
                }
            }
            mgmt_subtype::ASSOC_RESP => {
                if body_bytes.len() < 6 {
                    return Err(FrameError::Truncated {
                        context: "association response body",
                        needed: 6,
                        available: body_bytes.len(),
                    });
                }
                ManagementBody::AssociationResponse {
                    capabilities: u16::from_le_bytes([body_bytes[0], body_bytes[1]]),
                    status: u16::from_le_bytes([body_bytes[2], body_bytes[3]]),
                    aid: u16::from_le_bytes([body_bytes[4], body_bytes[5]]) & 0x3fff,
                    elements: InformationElement::parse_all(&body_bytes[6..])?,
                }
            }
            mgmt_subtype::DEAUTH | mgmt_subtype::DISASSOC => {
                if body_bytes.len() < 2 {
                    return Err(FrameError::Truncated {
                        context: "reason code",
                        needed: 2,
                        available: body_bytes.len(),
                    });
                }
                let reason =
                    ReasonCode::from_u16(u16::from_le_bytes([body_bytes[0], body_bytes[1]]));
                if fc.subtype == mgmt_subtype::DEAUTH {
                    ManagementBody::Deauthentication { reason }
                } else {
                    ManagementBody::Disassociation { reason }
                }
            }
            mgmt_subtype::ACTION => ManagementBody::Action {
                payload: body_bytes.to_vec(),
            },
            other => {
                return Err(FrameError::UnsupportedSubtype {
                    ftype: FrameType::Management.bits(),
                    subtype: other,
                })
            }
        };

        Ok(ManagementFrame {
            fc,
            duration,
            ra,
            ta,
            bssid,
            seq,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ie::InformationElement;

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0x00, 0x00, 0x00, 0x00, last])
    }

    fn round_trip(frame: &ManagementFrame) {
        let bytes = frame.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        let parsed = ManagementFrame::parse(fc, &bytes).unwrap();
        assert_eq!(&parsed, frame);
    }

    #[test]
    fn beacon_round_trip() {
        let frame = ManagementFrame::new(
            MacAddr::BROADCAST,
            addr(1),
            addr(1),
            42,
            ManagementBody::Beacon {
                timestamp: 123_456_789,
                interval_tu: 100,
                capabilities: 0x0411,
                elements: vec![
                    InformationElement::ssid("PrivateNet"),
                    InformationElement::supported_rates(&[0x82, 0x84, 0x8b, 0x96]),
                    InformationElement::ds_parameter(11),
                    InformationElement::rsn_wpa2_psk(),
                ],
            },
        );
        round_trip(&frame);
    }

    #[test]
    fn deauth_round_trip_with_figure3_sequence() {
        let frame = ManagementFrame::new(
            MacAddr::FAKE,
            addr(9),
            addr(9),
            3275,
            ManagementBody::Deauthentication {
                reason: ReasonCode::ClassThreeFrameFromNonassociatedSta,
            },
        );
        assert_eq!(frame.seq.sequence, 3275);
        round_trip(&frame);
    }

    #[test]
    fn auth_round_trip() {
        let frame = ManagementFrame::new(
            addr(1),
            addr(2),
            addr(1),
            7,
            ManagementBody::Authentication {
                algorithm: 0,
                transaction: 1,
                status: 0,
            },
        );
        round_trip(&frame);
    }

    #[test]
    fn assoc_req_and_resp_round_trip() {
        round_trip(&ManagementFrame::new(
            addr(1),
            addr(2),
            addr(1),
            8,
            ManagementBody::AssociationRequest {
                capabilities: 0x0431,
                listen_interval: 10,
                elements: vec![InformationElement::ssid("PrivateNet")],
            },
        ));
        round_trip(&ManagementFrame::new(
            addr(2),
            addr(1),
            addr(1),
            9,
            ManagementBody::AssociationResponse {
                capabilities: 0x0431,
                status: 0,
                aid: 5,
                elements: vec![],
            },
        ));
    }

    #[test]
    fn probe_request_round_trip() {
        round_trip(&ManagementFrame::new(
            MacAddr::BROADCAST,
            addr(3),
            MacAddr::BROADCAST,
            1,
            ManagementBody::ProbeRequest {
                elements: vec![InformationElement::ssid("")],
            },
        ));
    }

    #[test]
    fn action_round_trip() {
        round_trip(&ManagementFrame::new(
            addr(1),
            addr(2),
            addr(1),
            3,
            ManagementBody::Action {
                payload: vec![0x04, 0x01, 0xff],
            },
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let frame = ManagementFrame::new(
            addr(1),
            addr(2),
            addr(1),
            3,
            ManagementBody::Deauthentication {
                reason: ReasonCode::Unspecified,
            },
        );
        let bytes = frame.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert!(ManagementFrame::parse(fc, &bytes[..20]).is_err());
        assert!(ManagementFrame::parse(fc, &bytes[..25]).is_err());
    }

    #[test]
    fn aid_high_bits_masked_on_parse() {
        let frame = ManagementFrame::new(
            addr(2),
            addr(1),
            addr(1),
            9,
            ManagementBody::AssociationResponse {
                capabilities: 0,
                status: 0,
                aid: 1,
                elements: vec![],
            },
        );
        let bytes = frame.encode();
        // On-air AID has 0xc000 set.
        assert_eq!(u16::from_le_bytes([bytes[28], bytes[29]]) & 0xc000, 0xc000);
        round_trip(&frame);
    }
}
