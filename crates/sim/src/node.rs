//! A node: a station plus its radio, queue and bookkeeping.

use crate::ledger::ActivityLedger;
use polite_wifi_frame::Frame;
use polite_wifi_mac::csma::Csma;
use polite_wifi_mac::rate_control::Arf;
use polite_wifi_mac::Station;
use polite_wifi_pcap::capture::Capture;
use polite_wifi_phy::rate::BitRate;
use std::collections::VecDeque;

/// Index of a node within the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A frame awaiting contended transmission.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    /// The frame.
    pub frame: Frame,
    /// Rate to transmit at.
    pub rate: BitRate,
    /// How many times it has been (re)transmitted already.
    pub attempts: u8,
    /// Causal trace the frame belongs to, when sampled: injected frames
    /// open their own trace, MAC-enqueued reactions inherit the trace of
    /// the frame that provoked them.
    pub trace: Option<u64>,
}

/// A pending ACK wait at a transmitter.
#[derive(Debug, Clone)]
pub struct AckWait {
    /// Token matching the `AckTimeout` event.
    pub token: u64,
    /// Set when the ACK arrived before the timeout.
    pub satisfied: bool,
    /// When the soliciting frame's transmission began — the start of the
    /// `frame.exchange` span the response closes.
    pub started_us: u64,
}

/// One radio node in the simulation.
#[derive(Debug)]
pub struct Node {
    /// The MAC state machine.
    pub station: Station,
    /// Position at t = 0, in metres.
    pub position: (f64, f64),
    /// Velocity in metres/second (wardriving cars move; houses do not).
    pub velocity: (f64, f64),
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Frames awaiting CSMA transmission.
    pub tx_queue: VecDeque<QueuedFrame>,
    /// DCF backoff state.
    pub csma: Csma,
    /// Optional transmit rate adaptation; when set, queued frames ride
    /// the ARF rate instead of the rate they were injected with.
    pub rate_ctrl: Option<Arf>,
    /// Whether a TxAttempt event is already scheduled.
    pub tx_attempt_pending: bool,
    /// The radio is mid-transmission until this time.
    pub tx_busy_until: u64,
    /// Virtual carrier sense: the NAV set by overheard Duration fields.
    /// The node defers transmissions until this time.
    pub nav_until: u64,
    /// Outstanding ACK wait, if any.
    pub ack_wait: Option<AckWait>,
    /// Monitor mode: capture *all* detectable frames, not just own.
    pub monitor: bool,
    /// Whether transmitter-side retries are enabled (the paper's Scapy
    /// injector fires and forgets; normal stations retry).
    pub retries_enabled: bool,
    /// Per-node capture tap.
    pub capture: Capture,
    /// Radio-state accounting for the energy model.
    pub ledger: ActivityLedger,
    /// Count of frames this node failed to send after all retries.
    pub tx_failures: u64,
    /// Count of frames transmitted (including retries).
    pub tx_count: u64,
    /// Count of ACKs this node received for its own transmissions.
    pub acks_received: u64,
    /// Count of CTS responses received for its own RTS frames.
    pub cts_received: u64,
    /// When the radio last changed base state (doze/wake), for dwell
    /// histograms.
    pub last_base_change_us: u64,
    /// Fault injection: the device is frozen (deaf and mute) until this
    /// time. Zero means never stalled.
    pub stalled_until: u64,
}

impl Node {
    /// Builds a node around a station.
    pub fn new(station: Station, position: (f64, f64)) -> Node {
        let band = station.config().band;
        let awake = station.is_awake();
        Node {
            station,
            position,
            velocity: (0.0, 0.0),
            tx_power_dbm: 20.0,
            tx_queue: VecDeque::new(),
            csma: Csma::new(band),
            rate_ctrl: None,
            tx_attempt_pending: false,
            tx_busy_until: 0,
            nav_until: 0,
            ack_wait: None,
            monitor: false,
            retries_enabled: true,
            capture: Capture::new(),
            ledger: ActivityLedger::new(0, awake),
            tx_failures: 0,
            tx_count: 0,
            acks_received: 0,
            cts_received: 0,
            last_base_change_us: 0,
            stalled_until: 0,
        }
    }

    /// Position at time `now_us`, following the (constant) velocity.
    pub fn position_at(&self, now_us: u64) -> (f64, f64) {
        let t = now_us as f64 / 1e6;
        (
            self.position.0 + self.velocity.0 * t,
            self.position.1 + self.velocity.1 * t,
        )
    }

    /// Euclidean distance to another node at time zero, in metres.
    pub fn distance_to(&self, other: &Node) -> f64 {
        self.distance_to_at(other, 0)
    }

    /// Euclidean distance to another node at `now_us`, in metres.
    pub fn distance_to_at(&self, other: &Node, now_us: u64) -> f64 {
        let a = self.position_at(now_us);
        let b = other.position_at(now_us);
        (a.0 - b.0).hypot(a.1 - b.1).max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_mac::StationConfig;

    #[test]
    fn distance_is_symmetric_and_clamped() {
        let a = Node::new(
            Station::new(StationConfig::client("02:00:00:00:00:01".parse().unwrap())),
            (0.0, 0.0),
        );
        let b = Node::new(
            Station::new(StationConfig::client("02:00:00:00:00:02".parse().unwrap())),
            (3.0, 4.0),
        );
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance_to(&a) - 5.0).abs() < 1e-12);
        assert!(a.distance_to(&a) >= 0.1);
    }
}
