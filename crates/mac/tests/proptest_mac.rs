//! Property tests on the MAC: Polite WiFi invariants that must hold for
//! *every* frame, behaviour profile and timing.

use polite_wifi_frame::data::DataFrame;
use polite_wifi_frame::{builder, Frame, MacAddr, ManagementBody, ManagementFrame, ReasonCode};
use polite_wifi_mac::{Behavior, MacAction, Station, StationConfig};
use polite_wifi_phy::band::Band;
use polite_wifi_phy::rate::BitRate;
use proptest::prelude::*;

fn victim_mac() -> MacAddr {
    MacAddr::new([0xf2, 0x6e, 0x0b, 0x11, 0x22, 0x33])
}

fn arb_behavior() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::client()),
        Just(Behavior::quiet_ap()),
        Just(Behavior::deauthing_ap()),
        Just(Behavior::iot_power_save()),
        Just(Behavior::pmf_client()),
    ]
}

fn arb_rate() -> impl Strategy<Value = BitRate> {
    prop::sample::select(BitRate::ALL.to_vec())
}

fn arb_band() -> impl Strategy<Value = Band> {
    prop_oneof![Just(Band::Ghz2), Just(Band::Ghz5)]
}

/// Any ACK-soliciting frame addressed to the victim.
fn arb_frame_for_victim() -> impl Strategy<Value = Frame> {
    (any::<[u8; 6]>(), 0u16..4096, any::<bool>(), 0usize..200).prop_map(
        |(ta, seq, null, payload_len)| {
            let ta = MacAddr::new(ta);
            if null {
                Frame::Data(DataFrame::null(victim_mac(), ta, seq))
            } else {
                Frame::Data(DataFrame::new(
                    victim_mac(),
                    ta,
                    ta,
                    seq,
                    vec![0xab; payload_len],
                ))
            }
        },
    )
}

fn has_ack(actions: &[MacAction]) -> bool {
    actions.iter().any(|a| a.is_ack())
}

proptest! {
    /// THE invariant: any FCS-valid unicast frame addressed to a station
    /// is acknowledged at SIFS, no matter the sender, contents, profile
    /// or time of day.
    #[test]
    fn every_valid_unicast_frame_is_acked(
        frame in arb_frame_for_victim(),
        behavior in arb_behavior(),
        band in arb_band(),
        rate in arb_rate(),
        now in 0u64..1_000_000_000,
    ) {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = behavior;
        cfg.band = band;
        let mut sta = Station::new(cfg);
        let actions = sta.on_receive(now, &frame, true, rate);
        prop_assert!(has_ack(&actions), "no ACK from {behavior:?} for {frame:?}");
        // And the ACK is scheduled exactly at SIFS.
        let delay = actions.iter().find_map(|a| match a {
            MacAction::Respond { delay_us, .. } if a.is_ack() => Some(*delay_us),
            _ => None,
        }).unwrap();
        prop_assert_eq!(delay, band.sifs_us());
    }

    /// The dual invariant: frames failing FCS are never answered.
    #[test]
    fn corrupt_frames_never_answered(
        frame in arb_frame_for_victim(),
        behavior in arb_behavior(),
        rate in arb_rate(),
    ) {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = behavior;
        let mut sta = Station::new(cfg);
        let actions = sta.on_receive(0, &frame, false, rate);
        prop_assert!(!has_ack(&actions));
        prop_assert!(!actions.iter().any(|a| a.is_cts()));
        let any_response = actions
            .iter()
            .any(|a| matches!(a, MacAction::Respond { .. }));
        prop_assert!(!any_response);
    }

    /// FCS-failing frames stop at the low MAC: beyond never being ACKed,
    /// they must never touch the dedup cache or the fragment
    /// reassembler — corrupt garbage cannot pollute receive state that
    /// later decides which *valid* frames get dropped as duplicates or
    /// reassembled together.
    #[test]
    fn fcs_fail_frames_never_reach_dedup_or_reassembly(
        payload in proptest::collection::vec(any::<u8>(), 1..2000),
        threshold in 64usize..1500,
        seq in 0u16..4096,
        behavior in arb_behavior(),
        rate in arb_rate(),
        now in 0u64..1_000_000_000,
    ) {
        use polite_wifi_mac::fragment::fragment;
        let peer = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = behavior;
        let mut sta = Station::new(cfg);
        sta.associate(peer);

        let whole = DataFrame::new(victim_mac(), peer, peer, seq, payload.clone());
        let frags = fragment(&whole, threshold);
        for (i, f) in frags.iter().enumerate() {
            let actions = sta.on_receive(now + i as u64, &Frame::Data(f.clone()), false, rate);
            prop_assert!(!has_ack(&actions));
            prop_assert!(actions.iter().all(|a| !matches!(a, MacAction::Respond { .. })));
            prop_assert!(actions.iter().all(|a| !matches!(a, MacAction::Deliver(_))));
        }
        prop_assert_eq!(sta.dedup_entries(), 0, "corrupt frame entered dedup");
        prop_assert_eq!(sta.fragments_pending(), 0, "corrupt fragment buffered");

        // Contrast: the same frames with a valid FCS do populate the
        // receive path (so the accessors above measure the right thing).
        for (i, f) in frags.iter().enumerate() {
            sta.on_receive(now + 1_000 + i as u64, &Frame::Data(f.clone()), true, rate);
        }
        prop_assert!(sta.dedup_entries() > 0, "valid frame missed dedup");
    }

    /// Frames for other addresses are ignored regardless of contents.
    #[test]
    fn frames_for_others_never_answered(
        ra in any::<[u8; 6]>(),
        ta in any::<[u8; 6]>(),
        seq in 0u16..4096,
        rate in arb_rate(),
    ) {
        let ra = MacAddr::new(ra);
        prop_assume!(ra != victim_mac() && ra.is_unicast());
        let mut sta = Station::new(StationConfig::client(victim_mac()));
        let frame = Frame::Data(DataFrame::null(ra, MacAddr::new(ta), seq));
        let actions = sta.on_receive(0, &frame, true, rate);
        prop_assert!(!has_ack(&actions));
    }

    /// RTS from any stranger elicits CTS addressed back to that stranger,
    /// with a NAV that never exceeds what the RTS reserved.
    #[test]
    fn rts_elicits_cts_with_shrinking_nav(
        ta in any::<[u8; 6]>(),
        duration in 0u16..32768,
        rate in arb_rate(),
        behavior in arb_behavior(),
    ) {
        let ta = MacAddr::new(ta);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = behavior;
        let mut sta = Station::new(cfg);
        let rts = builder::fake_rts(victim_mac(), ta, duration);
        let actions = sta.on_receive(0, &rts, true, rate);
        let cts = actions.iter().find_map(|a| match a {
            MacAction::Respond { frame, .. } if a.is_cts() => Some(frame.clone()),
            _ => None,
        });
        let cts = cts.expect("CTS expected");
        prop_assert_eq!(cts.receiver(), Some(ta));
        if let Frame::Ctrl(polite_wifi_frame::ControlFrame::Cts { duration_us, .. }) = cts {
            prop_assert!(duration_us <= duration);
        }
    }

    /// ACK responses ride a basic (legacy) rate not faster than the
    /// eliciting frame.
    #[test]
    fn ack_rate_is_legal(rate in arb_rate()) {
        let mut sta = Station::new(StationConfig::client(victim_mac()));
        let frame = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
        let actions = sta.on_receive(0, &frame, true, rate);
        let ack_rate = actions.iter().find_map(|a| match a {
            MacAction::Respond { rate, .. } if a.is_ack() => Some(*rate),
            _ => None,
        }).unwrap();
        prop_assert_eq!(ack_rate, rate.response_rate());
        prop_assert!(ack_rate.bps() <= rate.bps());
    }

    /// Power-save: receiving N fake frames with gaps below the idle
    /// timeout keeps the station awake through the entire sequence.
    #[test]
    fn sub_timeout_gaps_prevent_sleep(gaps in proptest::collection::vec(1_000u64..99_000, 1..40)) {
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut sta = Station::new(cfg);
        let mut t = 0u64;
        for gap in gaps {
            t += gap;
            let frame = builder::fake_null_frame(victim_mac(), MacAddr::FAKE);
            sta.on_receive(t, &frame, true, BitRate::Mbps1);
            let actions = sta.poll(t + 1);
            prop_assert!(!actions.iter().any(|a| matches!(
                a,
                MacAction::Radio(polite_wifi_mac::RadioState::Sleep)
            )));
            prop_assert!(sta.is_awake());
        }
    }

    /// Spoofed deauth: a PMF station never tears down state, yet still
    /// ACKs; a non-PMF station tears down (the classic deauth attack).
    #[test]
    fn pmf_gates_deauth_handling(pmf in any::<bool>(), seq in 0u16..4096) {
        let peer = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = if pmf { Behavior::pmf_client() } else { Behavior::client() };
        let mut sta = Station::new(cfg);
        sta.associate(peer);
        let deauth = builder::deauth(victim_mac(), peer, peer, seq, ReasonCode::StaLeaving);
        let actions = sta.on_receive(0, &deauth, true, BitRate::Mbps1);
        prop_assert!(has_ack(&actions));
        let delivered = actions.iter().any(|a| matches!(a, MacAction::Deliver(_)));
        prop_assert_eq!(delivered, !pmf);
    }

    /// Fragmentation: any payload reassembles byte-identically through
    /// any fragment threshold, in any arrival order.
    #[test]
    fn fragment_reassemble_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..3000),
        threshold in 1usize..1500,
        seq in 0u16..4096,
        order in any::<prop::sample::Index>(),
    ) {
        use polite_wifi_mac::fragment::{fragment, Reassembler};
        use polite_wifi_frame::data::DataFrame;
        let frame = DataFrame::new(
            victim_mac(),
            MacAddr::new([2, 0, 0, 0, 0, 9]),
            MacAddr::new([2, 0, 0, 0, 0, 9]),
            seq,
            payload.clone(),
        );
        let mut frags = fragment(&frame, threshold);
        prop_assert!(frags.len() <= payload.len().div_ceil(threshold).min(16));
        // Rotate arrival order deterministically.
        let rot = order.index(frags.len());
        frags.rotate_left(rot);
        let mut r = Reassembler::new();
        let mut out = None;
        for (i, f) in frags.iter().enumerate() {
            let res = r.push(i as u64, f);
            if let Some(p) = res {
                prop_assert!(out.is_none(), "completed twice");
                out = Some(p);
            }
        }
        prop_assert_eq!(out.expect("reassembled"), payload);
        prop_assert_eq!(r.pending(), 0);
    }

    /// ARF's rate index stays within its ladder no matter the outcome
    /// sequence, and a long success tail always reaches the top.
    #[test]
    fn arf_bounded_and_convergent(outcomes in proptest::collection::vec(any::<bool>(), 0..300)) {
        use polite_wifi_mac::rate_control::Arf;
        let mut arf = Arf::ofdm();
        for ok in outcomes {
            if ok { arf.on_success() } else { arf.on_failure() }
            let r = arf.rate();
            prop_assert!(BitRate::ALL.contains(&r));
            prop_assert!(!r.is_dsss(), "OFDM ladder leaked a DSSS rate");
        }
        for _ in 0..100 {
            arf.on_success();
        }
        prop_assert_eq!(arf.rate(), BitRate::Mbps54);
    }

    /// Beacons never reset the doze timer: a station on a beaconing
    /// network still sleeps.
    #[test]
    fn beacons_do_not_starve_sleep(beacon_count in 1u64..20) {
        let ap = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let mut cfg = StationConfig::client(victim_mac());
        cfg.behavior = Behavior::iot_power_save();
        let mut sta = Station::new(cfg);
        let mut t = 0;
        for i in 0..beacon_count {
            t = i * 102_400 + 102_400;
            let beacon = Frame::Mgmt(ManagementFrame::new(
                MacAddr::BROADCAST,
                ap,
                ap,
                i as u16,
                ManagementBody::Beacon {
                    timestamp: t,
                    interval_tu: 100,
                    capabilities: 0x0411,
                    elements: vec![],
                },
            ));
            sta.on_receive(t, &beacon, true, BitRate::Mbps1);
            sta.poll(t + 5_000);
        }
        // Well past the last beacon window + idle timeout: must be asleep.
        sta.poll(t + 110_000);
        prop_assert!(!sta.is_awake());
    }
}
